//! Offline shim for the subset of the `parking_lot` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this path dependency
//! stands in for the real crate.  It wraps `std::sync` primitives and exposes
//! the `parking_lot` calling convention: `lock()` / `read()` / `write()`
//! return guards directly instead of `Result`s, and a poisoned lock is
//! recovered transparently (parking_lot has no poisoning at all, so
//! recovering is the faithful behaviour).

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
