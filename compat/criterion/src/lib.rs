//! Offline shim for the subset of the Criterion.rs API this workspace uses.
//!
//! The build environment has no access to crates.io, so this path dependency
//! stands in for the real crate.  It keeps the statistical machinery out and
//! the calling convention in: benches compile unchanged, run a handful of
//! timed iterations, and print a one-line mean per benchmark.  Swapping the
//! path dependency for the real `criterion` restores full measurements
//! without touching any bench source.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, Criterion's optimisation barrier.
pub use std::hint::black_box;

/// Upper bound on wall time spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Upper bound on measured iterations per benchmark.
const MAX_ITERS: u64 = 20;

/// Identifier of a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` parameterised by `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored by the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate the group with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&full, self.throughput, &mut wrapped);
        self
    }

    /// Finish the group (a no-op in the shim).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.iters >= MAX_ITERS || self.elapsed >= MEASURE_BUDGET {
                break;
            }
        }
    }

    /// Time repeated calls of `routine`, re-running `setup` (untimed) before
    /// each call.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.iters >= MAX_ITERS || self.elapsed >= MEASURE_BUDGET {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    match throughput {
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            let mbps = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            println!(
                "bench {name}: {mean:?}/iter ({b_iters} iters, {mbps:.1} MiB/s)",
                b_iters = b.iters
            );
        }
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            let eps = n as f64 / mean.as_secs_f64();
            println!(
                "bench {name}: {mean:?}/iter ({b_iters} iters, {eps:.0} elem/s)",
                b_iters = b.iters
            );
        }
        _ => println!("bench {name}: {mean:?}/iter ({} iters)", b.iters),
    }
}

/// Collect benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
