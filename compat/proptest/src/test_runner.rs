//! Config, RNG and error types for the shimmed property runner.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256 cases; the shim trades a little
        // coverage for test-suite latency.
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// Failure raised by `prop_assert*!` inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed property with an explanatory message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic pseudo-random generator (SplitMix64) used to drive
/// strategies.  Seeded from the property name, so every run of a given test
/// sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator from an arbitrary label (typically the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
