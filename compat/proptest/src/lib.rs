//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this path dependency
//! stands in for the real crate.  It keeps the `proptest!` calling convention
//! — strategies, `any::<T>()`, `proptest::collection::vec`, char-class string
//! patterns, `prop_assert*!` — and runs each property over a deterministic
//! pseudo-random case sequence (seeded from the test name, so failures
//! reproduce).  It does not shrink failing cases; swap the path dependency
//! for the real `proptest` to get shrinking back without touching any test.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Number-of-elements bounds for a collection strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_inclusive: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define property tests: an optional `#![proptest_config(..)]` header
/// followed by `fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}
