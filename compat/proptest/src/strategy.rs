//! Value-generation strategies for the shimmed property runner.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating pseudo-random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical full-range strategy, obtained via [`any`].
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full value range of `A` (`any::<u8>()` etc.).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<A> {
    _marker: PhantomData<A>,
}

/// The canonical full-range strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: PhantomData,
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String-pattern strategy: a `&str` literal is interpreted as a sequence of
/// char-class atoms, e.g. `"[a-z][a-z0-9-]{0,16}"`.  This covers the regex
/// subset the workspace's properties actually use: literal characters,
/// `[...]` classes with ranges, and `{n}` / `{m,n}` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max - atom.min) as u64;
            let reps = atom.min + rng.below(span + 1) as usize;
            for _ in 0..reps {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let set = expand_class(&chars[i + 1..close]);
                i = close + 1;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).expect("dangling escape in pattern");
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed { in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier order in pattern");
        assert!(!set.is_empty(), "empty char class in pattern");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn expand_class(body: &[char]) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in char class");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let v = (10usize..=10).generate(&mut rng);
            assert_eq!(v, 10);
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::deterministic("patterns");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,16}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 17);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let s = "[a-zA-Z0-9 ]{4,24}".generate(&mut rng);
            assert!(s.len() >= 4 && s.len() <= 24);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
        }
    }
}
