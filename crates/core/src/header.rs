//! The hidden-object header (Figure 2 of the paper).
//!
//! Each hidden file or directory is reached through a single *header block*
//! containing:
//!
//! * a **signature** that uniquely identifies the object (derived by one-way
//!   hashing from the physical name and access key, so the key cannot be
//!   recovered from it),
//! * a link to the **inode chain** that indexes all data blocks of the
//!   object,
//! * the **free-block pool**: a list of blocks held by the file but not yet
//!   carrying data, which defeats attackers who difference bitmap snapshots,
//!   and
//! * the object's durability [`Policy`]: whether the data blocks are the
//!   logical blocks themselves or k-of-n coded shares of them.  The policy
//!   tag reuses the byte older headers wrote as reserved-zero, so
//!   pre-policy volumes parse unchanged (as [`Policy::Plain`]).
//!
//! The header is always encrypted before it reaches the device, so none of
//! these fields are visible to an observer.
//!
//! The serialised header occupies the beginning of one block and is padded
//! with zeros to the block size before encryption.  It fits the smallest
//! block size the paper considers (512 bytes).

use crate::coding::Policy;
use crate::crypt::SIGNATURE_LEN;
use crate::error::{StegError, StegResult};

/// Maximum number of entries in the in-header free-block pool.
/// `FB_max` (Table 1) must not exceed this.
pub const FREE_POOL_CAPACITY: usize = 16;

/// Sentinel for "no block".
pub const NO_BLOCK: u64 = u64::MAX;

/// Maximum metadata replica count (header copies / chain-node copies) any
/// policy may request.  Bounds the fixed on-disk replica tables.
pub const MAX_META_COPIES: usize = 8;

/// Serialised length of the pre-survivability header fields.
pub const BASE_HEADER_LEN: usize =
    SIGNATURE_LEN + 1 + 1 + 8 + 8 + 8 + 2 + FREE_POOL_CAPACITY * 8 + 2;

/// Serialised header length in bytes (excluding padding to the block size).
/// After the base fields come the metadata-survivability extension: the
/// header-replica table (count + [`MAX_META_COPIES`] slots), the extra
/// chain-head replica table (count + `MAX_META_COPIES - 1` slots), and the
/// chain-head checksum.  Legacy headers serialised the whole extension
/// region as zero padding, which parses as "no replicas" ([`Policy::Plain`]
/// era semantics: a single copy of every metadata block).
pub const HEADER_LEN: usize =
    BASE_HEADER_LEN + 1 + MAX_META_COPIES * 8 + 1 + (MAX_META_COPIES - 1) * 8 + 8;

/// Whether a hidden object is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A regular hidden file.
    File,
    /// A hidden directory (its contents are a serialised
    /// [`crate::keys::UakDirectory`]-style listing of child objects).
    Directory,
}

impl ObjectKind {
    /// The single-character type code used by the paper's `steg_create`
    /// (`'f'` for files, `'d'` for directories).
    pub fn type_char(self) -> char {
        match self {
            ObjectKind::File => 'f',
            ObjectKind::Directory => 'd',
        }
    }

    /// Parse the paper's type code.
    pub fn from_type_char(c: char) -> StegResult<Self> {
        match c {
            'f' => Ok(ObjectKind::File),
            'd' => Ok(ObjectKind::Directory),
            other => Err(StegError::InvalidParameter(format!(
                "unknown object type '{other}' (expected 'f' or 'd')"
            ))),
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            ObjectKind::File => 1,
            ObjectKind::Directory => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(ObjectKind::File),
            2 => Some(ObjectKind::Directory),
            _ => None,
        }
    }
}

/// In-memory form of a hidden object's header block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiddenHeader {
    /// Signature identifying the object (compared against the value derived
    /// from the supplied name and key during lookup).
    pub signature: [u8; SIGNATURE_LEN],
    /// File or directory.
    pub kind: ObjectKind,
    /// Object size in bytes.
    pub size: u64,
    /// Number of data blocks currently assigned.
    pub data_block_count: u64,
    /// First block of the inode chain ([`NO_BLOCK`] when the object has no
    /// data blocks).
    pub inode_chain: u64,
    /// The internal pool of free blocks held by this object.
    pub free_pool: Vec<u64>,
    /// Durability policy: how [`data_block_count`](Self::data_block_count)
    /// physical blocks encode the object's logical bytes.
    pub policy: Policy,
    /// Every block carrying a copy of this header (the primary included),
    /// in locator candidate order.  Empty on legacy headers, which kept a
    /// single copy at whichever block the locator found.
    pub header_replicas: Vec<u64>,
    /// Extra replicas of the chain head beyond
    /// [`inode_chain`](Self::inode_chain).  Empty when the policy keeps a
    /// single metadata copy (or the object has no chain).
    pub chain_replicas: Vec<u64>,
    /// Checksum of the chain-head plaintext, used to validate a replica
    /// before trusting it.  Zero on legacy headers and chainless objects.
    pub chain_csum: u64,
}

impl HiddenHeader {
    /// A fresh header for an empty object.
    pub fn new(signature: [u8; SIGNATURE_LEN], kind: ObjectKind) -> Self {
        Self::with_policy(signature, kind, Policy::Plain)
    }

    /// A fresh header for an empty object with an explicit durability
    /// policy.
    pub fn with_policy(signature: [u8; SIGNATURE_LEN], kind: ObjectKind, policy: Policy) -> Self {
        HiddenHeader {
            signature,
            kind,
            size: 0,
            data_block_count: 0,
            inode_chain: NO_BLOCK,
            free_pool: Vec::new(),
            policy,
            header_replicas: Vec::new(),
            chain_replicas: Vec::new(),
            chain_csum: 0,
        }
    }

    /// Serialise into a buffer of exactly `block_size` bytes (zero padded).
    ///
    /// # Panics
    /// Panics if the free pool exceeds [`FREE_POOL_CAPACITY`] or the block
    /// size is too small for the header (both are internal invariants).
    pub fn serialize(&self, block_size: usize) -> Vec<u8> {
        assert!(
            self.free_pool.len() <= FREE_POOL_CAPACITY,
            "free pool overflows header capacity"
        );
        assert!(block_size >= HEADER_LEN, "block too small for header");
        let mut buf = vec![0u8; block_size];
        let mut off = 0;
        buf[off..off + SIGNATURE_LEN].copy_from_slice(&self.signature);
        off += SIGNATURE_LEN;
        let (policy_tag, policy_m, policy_n) = self.policy.to_header_bytes();
        buf[off] = self.kind.to_byte();
        off += 1;
        buf[off] = policy_tag; // 0 == Plain, the former reserved-flags byte
        off += 1;
        buf[off..off + 8].copy_from_slice(&self.size.to_be_bytes());
        off += 8;
        buf[off..off + 8].copy_from_slice(&self.data_block_count.to_be_bytes());
        off += 8;
        buf[off..off + 8].copy_from_slice(&self.inode_chain.to_be_bytes());
        off += 8;
        buf[off..off + 2].copy_from_slice(&(self.free_pool.len() as u16).to_be_bytes());
        off += 2;
        for i in 0..FREE_POOL_CAPACITY {
            let v = self.free_pool.get(i).copied().unwrap_or(NO_BLOCK);
            buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
            off += 8;
        }
        buf[off] = policy_m;
        buf[off + 1] = policy_n;
        off += 2;
        debug_assert_eq!(off, BASE_HEADER_LEN);
        // Metadata-survivability extension.  Unused slots serialise as zero
        // so a header with no replicas is byte-identical to the legacy
        // zero-padded layout.
        assert!(
            self.header_replicas.len() <= MAX_META_COPIES,
            "header replica table overflows capacity"
        );
        assert!(
            self.chain_replicas.len() < MAX_META_COPIES,
            "chain replica table overflows capacity"
        );
        buf[off] = self.header_replicas.len() as u8;
        off += 1;
        for i in 0..MAX_META_COPIES {
            let v = self.header_replicas.get(i).copied().unwrap_or(0);
            buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
            off += 8;
        }
        buf[off] = self.chain_replicas.len() as u8;
        off += 1;
        for i in 0..MAX_META_COPIES - 1 {
            let v = self.chain_replicas.get(i).copied().unwrap_or(0);
            buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
            off += 8;
        }
        buf[off..off + 8].copy_from_slice(&self.chain_csum.to_be_bytes());
        off += 8;
        debug_assert_eq!(off, HEADER_LEN);
        buf
    }

    /// Attempt to parse a decrypted block as a header whose signature equals
    /// `expected_signature`.  Returns `None` when the signature does not
    /// match or the structure is implausible — which is the common case while
    /// the locator walks candidate blocks that belong to other objects,
    /// abandoned blocks or random fill.
    pub fn parse_if_match(
        buf: &[u8],
        expected_signature: &[u8; SIGNATURE_LEN],
        total_blocks: u64,
    ) -> Option<Self> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        if !stegfs_crypto::ct::ct_eq(&buf[..SIGNATURE_LEN], expected_signature) {
            return None;
        }
        let mut off = SIGNATURE_LEN;
        let kind = ObjectKind::from_byte(buf[off])?;
        let policy_tag = buf[off + 1];
        off += 2;
        let get_u64 = |o: usize| u64::from_be_bytes(buf[o..o + 8].try_into().unwrap());
        let size = get_u64(off);
        off += 8;
        let data_block_count = get_u64(off);
        off += 8;
        let inode_chain = get_u64(off);
        off += 8;
        let pool_len = u16::from_be_bytes(buf[off..off + 2].try_into().unwrap()) as usize;
        off += 2;
        if pool_len > FREE_POOL_CAPACITY {
            return None;
        }
        let mut free_pool = Vec::with_capacity(pool_len);
        for i in 0..pool_len {
            let v = get_u64(off + i * 8);
            if v >= total_blocks {
                return None;
            }
            free_pool.push(v);
        }
        if inode_chain != NO_BLOCK && inode_chain >= total_blocks {
            return None;
        }
        let policy_mn_off = SIGNATURE_LEN + 2 + 8 + 8 + 8 + 2 + FREE_POOL_CAPACITY * 8;
        let policy =
            Policy::from_header_bytes(policy_tag, buf[policy_mn_off], buf[policy_mn_off + 1])?;
        // A coded object's physical block count must be a whole number of
        // n-share groups; anything else is as implausible as a bad pointer.
        if let Some((_, n)) = policy.coding() {
            if data_block_count % n as u64 != 0 {
                return None;
            }
        }
        // Metadata-survivability extension; all-zero on legacy headers.
        let ext = BASE_HEADER_LEN;
        let hr_len = buf[ext] as usize;
        if hr_len > MAX_META_COPIES {
            return None;
        }
        let mut header_replicas = Vec::with_capacity(hr_len);
        for i in 0..hr_len {
            let v = get_u64(ext + 1 + i * 8);
            if v >= total_blocks {
                return None;
            }
            header_replicas.push(v);
        }
        let cr_off = ext + 1 + MAX_META_COPIES * 8;
        let cr_len = buf[cr_off] as usize;
        if cr_len >= MAX_META_COPIES {
            return None;
        }
        let mut chain_replicas = Vec::with_capacity(cr_len);
        for i in 0..cr_len {
            let v = get_u64(cr_off + 1 + i * 8);
            if v >= total_blocks {
                return None;
            }
            chain_replicas.push(v);
        }
        let chain_csum = get_u64(cr_off + 1 + (MAX_META_COPIES - 1) * 8);
        Some(HiddenHeader {
            signature: *expected_signature,
            kind,
            size,
            data_block_count,
            inode_chain,
            free_pool,
            policy,
            header_replicas,
            chain_replicas,
            chain_csum,
        })
    }
}

/// One block of the inode chain of a hidden object.
///
/// ```text
/// plain:      [next: u64][count: u16][pointer...]
/// coded:      [next: u64][count: u16][(pointer, checksum)...]
/// replicated: [next: u64][next extra × (copies-1)][next csum: u64]
///             [count: u16][entries...]
/// ```
///
/// The chain stores the object's data-block numbers in logical order — for
/// coded objects, share-block numbers in group-major order, each paired
/// with the 8-byte checksum of its share plaintext so a damaged share is
/// detected before it poisons a reconstruction.  When the object's policy
/// keeps `copies > 1` metadata copies, every chain node is written to
/// `copies` blocks with identical plaintext, and the link to the next node
/// widens to all of its replicas plus a checksum so a damaged replica is
/// recognised and skipped.  A single-copy chain keeps the exact legacy byte
/// layout.  Like every other hidden block the chain is encrypted before
/// hitting the device, so the checksums (and the coded/plain distinction
/// itself) are invisible to an observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InodeChainBlock {
    /// Next block in the chain, or [`NO_BLOCK`].
    pub next: u64,
    /// Replicas of the next chain node beyond `next`.  Always exactly
    /// `copies - 1` long in the replicated layout ([`NO_BLOCK`]-filled at
    /// the tail), empty in the single-copy layouts.
    pub next_replicas: Vec<u64>,
    /// Checksum of the next node's plaintext in the replicated layout
    /// (0 at the tail and in the single-copy layouts).
    pub next_csum: u64,
    /// Data-block pointers stored in this chain block.
    pub pointers: Vec<u64>,
    /// Per-share checksums, parallel to `pointers`.  Empty for plain
    /// objects (their chain keeps the pre-policy byte layout).
    pub csums: Vec<u64>,
}

impl InodeChainBlock {
    /// A chain node with single-copy link fields, ready for the legacy
    /// layouts.
    pub fn with_link(next: u64, pointers: Vec<u64>, csums: Vec<u64>) -> Self {
        InodeChainBlock {
            next,
            next_replicas: Vec::new(),
            next_csum: 0,
            pointers,
            csums,
        }
    }

    /// Bytes consumed by the link fields preceding the entry count.
    fn link_len(copies: usize) -> usize {
        if copies > 1 {
            8 + (copies - 1) * 8 + 8
        } else {
            8
        }
    }

    /// Number of pointers that fit into one plain chain block.
    pub fn capacity(block_size: usize) -> usize {
        Self::capacity_for(block_size, false)
    }

    /// Number of pointers that fit into one chain block of `block_size`:
    /// 8 bytes per entry plain, 16 (pointer + checksum) coded.
    pub fn capacity_for(block_size: usize, coded: bool) -> usize {
        Self::capacity_meta(block_size, coded, 1)
    }

    /// Number of pointers that fit into one chain block of `block_size`
    /// when the policy keeps `copies` metadata copies: replication widens
    /// the link prefix, shrinking the entry region.
    pub fn capacity_meta(block_size: usize, coded: bool, copies: usize) -> usize {
        (block_size - Self::link_len(copies) - 2) / if coded { 16 } else { 8 }
    }

    /// Serialise a plain chain block into exactly `block_size` bytes.
    pub fn serialize(&self, block_size: usize) -> Vec<u8> {
        self.serialize_for(block_size, false)
    }

    /// Serialise into exactly `block_size` bytes, in the plain or coded
    /// single-copy layout.
    pub fn serialize_for(&self, block_size: usize, coded: bool) -> Vec<u8> {
        self.serialize_meta(block_size, coded, 1)
    }

    /// Serialise into exactly `block_size` bytes for a policy keeping
    /// `copies` metadata copies.  `copies == 1` produces the legacy layout.
    pub fn serialize_meta(&self, block_size: usize, coded: bool, copies: usize) -> Vec<u8> {
        assert!(self.pointers.len() <= Self::capacity_meta(block_size, coded, copies));
        if coded {
            assert_eq!(self.pointers.len(), self.csums.len());
        } else {
            assert!(self.csums.is_empty(), "plain chain carries no checksums");
        }
        assert_eq!(
            self.next_replicas.len(),
            copies.saturating_sub(1),
            "next-replica table must match the copy count"
        );
        let mut buf = vec![0u8; block_size];
        buf[0..8].copy_from_slice(&self.next.to_be_bytes());
        let mut off = 8;
        if copies > 1 {
            for &r in &self.next_replicas {
                buf[off..off + 8].copy_from_slice(&r.to_be_bytes());
                off += 8;
            }
            buf[off..off + 8].copy_from_slice(&self.next_csum.to_be_bytes());
            off += 8;
        }
        buf[off..off + 2].copy_from_slice(&(self.pointers.len() as u16).to_be_bytes());
        off += 2;
        let entry = if coded { 16 } else { 8 };
        for (i, &p) in self.pointers.iter().enumerate() {
            let e = off + i * entry;
            buf[e..e + 8].copy_from_slice(&p.to_be_bytes());
            if coded {
                buf[e + 8..e + 16].copy_from_slice(&self.csums[i].to_be_bytes());
            }
        }
        buf
    }

    /// Parse a decrypted plain chain block.
    pub fn deserialize(buf: &[u8], total_blocks: u64) -> StegResult<Self> {
        Self::deserialize_for(buf, total_blocks, false)
    }

    /// Parse a decrypted chain block in the plain or coded single-copy
    /// layout.
    pub fn deserialize_for(buf: &[u8], total_blocks: u64, coded: bool) -> StegResult<Self> {
        Self::deserialize_meta(buf, total_blocks, coded, 1)
    }

    /// Parse a decrypted chain block written for a policy keeping `copies`
    /// metadata copies.
    pub fn deserialize_meta(
        buf: &[u8],
        total_blocks: u64,
        coded: bool,
        copies: usize,
    ) -> StegResult<Self> {
        let link = Self::link_len(copies);
        if buf.len() < link + 2 {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain block too short".into(),
            )));
        }
        let get_u64 = |o: usize| u64::from_be_bytes(buf[o..o + 8].try_into().unwrap());
        let next = get_u64(0);
        let mut next_replicas = Vec::new();
        let mut next_csum = 0;
        if copies > 1 {
            for i in 0..copies - 1 {
                let r = get_u64(8 + i * 8);
                if r != NO_BLOCK && r >= total_blocks {
                    return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                        "inode chain next replica outside volume".into(),
                    )));
                }
                next_replicas.push(r);
            }
            next_csum = get_u64(link - 8);
        }
        let count = u16::from_be_bytes(buf[link..link + 2].try_into().unwrap()) as usize;
        if count > Self::capacity_meta(buf.len(), coded, copies) {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain count exceeds capacity".into(),
            )));
        }
        let entry = if coded { 16 } else { 8 };
        let mut pointers = Vec::with_capacity(count);
        let mut csums = Vec::with_capacity(if coded { count } else { 0 });
        for i in 0..count {
            let off = link + 2 + i * entry;
            let p = get_u64(off);
            if p >= total_blocks {
                return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(format!(
                    "inode chain pointer {p} outside volume"
                ))));
            }
            pointers.push(p);
            if coded {
                csums.push(get_u64(off + 8));
            }
        }
        if next != NO_BLOCK && next >= total_blocks {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain next pointer outside volume".into(),
            )));
        }
        Ok(InodeChainBlock {
            next,
            next_replicas,
            next_csum,
            pointers,
            csums,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(byte: u8) -> [u8; SIGNATURE_LEN] {
        [byte; SIGNATURE_LEN]
    }

    #[test]
    fn header_fits_smallest_block_size() {
        const { assert!(HEADER_LEN <= 512) }
    }

    #[test]
    fn header_roundtrip() {
        let mut h = HiddenHeader::new(sig(0xab), ObjectKind::File);
        h.size = 123_456;
        h.data_block_count = 121;
        h.inode_chain = 999;
        h.free_pool = vec![5, 6, 7];
        let buf = h.serialize(1024);
        assert_eq!(buf.len(), 1024);
        let parsed = HiddenHeader::parse_if_match(&buf, &sig(0xab), 100_000).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_empty_object_roundtrip() {
        let h = HiddenHeader::new(sig(1), ObjectKind::Directory);
        let buf = h.serialize(512);
        let parsed = HiddenHeader::parse_if_match(&buf, &sig(1), 1000).unwrap();
        assert_eq!(parsed.kind, ObjectKind::Directory);
        assert_eq!(parsed.inode_chain, NO_BLOCK);
        assert!(parsed.free_pool.is_empty());
    }

    #[test]
    fn wrong_signature_rejected() {
        let h = HiddenHeader::new(sig(2), ObjectKind::File);
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(3), 1000).is_none());
    }

    #[test]
    fn random_garbage_rejected() {
        // A block of pseudo-random bytes should never parse: the signature
        // check alone rejects it.
        let garbage: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert!(HiddenHeader::parse_if_match(&garbage, &sig(7), 1 << 20).is_none());
    }

    #[test]
    fn implausible_fields_rejected_even_with_matching_signature() {
        // Signature matches but pool pointers are outside the volume: reject.
        let mut h = HiddenHeader::new(sig(9), ObjectKind::File);
        h.free_pool = vec![5_000];
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(9), 1_000).is_none());

        let mut h = HiddenHeader::new(sig(9), ObjectKind::File);
        h.inode_chain = 10_000;
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(9), 1_000).is_none());
    }

    #[test]
    fn truncated_buffer_rejected() {
        let h = HiddenHeader::new(sig(4), ObjectKind::File);
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf[..50], &sig(4), 1000).is_none());
    }

    #[test]
    #[should_panic(expected = "free pool overflows")]
    fn oversized_pool_panics_on_serialize() {
        let mut h = HiddenHeader::new(sig(5), ObjectKind::File);
        h.free_pool = vec![1; FREE_POOL_CAPACITY + 1];
        h.serialize(1024);
    }

    #[test]
    fn object_kind_type_chars() {
        assert_eq!(ObjectKind::File.type_char(), 'f');
        assert_eq!(ObjectKind::Directory.type_char(), 'd');
        assert_eq!(ObjectKind::from_type_char('f').unwrap(), ObjectKind::File);
        assert_eq!(
            ObjectKind::from_type_char('d').unwrap(),
            ObjectKind::Directory
        );
        assert!(ObjectKind::from_type_char('x').is_err());
    }

    #[test]
    fn inode_chain_roundtrip() {
        let cap = InodeChainBlock::capacity(1024);
        assert_eq!(cap, (1024 - 10) / 8);
        let block = InodeChainBlock::with_link(77, (100..100 + cap as u64).collect(), vec![]);
        let buf = block.serialize(1024);
        assert_eq!(InodeChainBlock::deserialize(&buf, 10_000).unwrap(), block);
    }

    #[test]
    fn inode_chain_rejects_corruption() {
        let block = InodeChainBlock::with_link(NO_BLOCK, vec![5, 6], vec![]);
        let mut buf = block.serialize(512);
        // Corrupt the count to something impossible.
        buf[8] = 0xff;
        buf[9] = 0xff;
        assert!(InodeChainBlock::deserialize(&buf, 10_000).is_err());
        // Pointer outside the volume.
        let bad = InodeChainBlock::with_link(NO_BLOCK, vec![5_000], vec![]);
        let buf = bad.serialize(512);
        assert!(InodeChainBlock::deserialize(&buf, 1_000).is_err());
        // Next pointer outside the volume.
        let bad = InodeChainBlock::with_link(5_000, vec![], vec![]);
        let buf = bad.serialize(512);
        assert!(InodeChainBlock::deserialize(&buf, 1_000).is_err());
        assert!(InodeChainBlock::deserialize(&[0u8; 4], 1_000).is_err());
    }

    #[test]
    fn header_policy_roundtrip() {
        for policy in [
            Policy::Replicate(3),
            Policy::Disperse { m: 2, n: 4 },
            Policy::Disperse { m: 3, n: 5 },
        ] {
            let mut h = HiddenHeader::with_policy(sig(0x21), ObjectKind::File, policy);
            let (_, n) = policy.shares();
            h.size = 4096;
            h.data_block_count = 4 * n as u64;
            let buf = h.serialize(1024);
            let parsed = HiddenHeader::parse_if_match(&buf, &sig(0x21), 100_000).unwrap();
            assert_eq!(parsed.policy, policy);
            assert_eq!(parsed, h);
        }
    }

    #[test]
    fn legacy_zero_padded_header_parses_as_plain() {
        // A pre-policy header serialised the reserved byte and the (then
        // nonexistent) trailing bytes as zero; parsing must yield Plain.
        let mut h = HiddenHeader::new(sig(0x33), ObjectKind::File);
        h.size = 99;
        let buf = h.serialize(512);
        let parsed = HiddenHeader::parse_if_match(&buf, &sig(0x33), 1_000).unwrap();
        assert_eq!(parsed.policy, Policy::Plain);
    }

    #[test]
    fn implausible_policy_rejected() {
        // Matching signature but a coded block count that is not a whole
        // number of share groups: reject, like any other implausible field.
        let mut h =
            HiddenHeader::with_policy(sig(0x44), ObjectKind::File, Policy::Disperse { m: 2, n: 4 });
        h.data_block_count = 7; // not a multiple of n = 4
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(0x44), 1_000).is_none());
        // Unknown policy tag.
        let h = HiddenHeader::new(sig(0x45), ObjectKind::File);
        let mut buf = h.serialize(512);
        buf[SIGNATURE_LEN + 1] = 9;
        assert!(HiddenHeader::parse_if_match(&buf, &sig(0x45), 1_000).is_none());
    }

    #[test]
    fn coded_chain_roundtrip_and_capacity() {
        let cap = InodeChainBlock::capacity_for(1024, true);
        assert_eq!(cap, (1024 - 10) / 16);
        let block = InodeChainBlock::with_link(
            42,
            (200..200 + cap as u64).collect(),
            (900..900 + cap as u64).collect(),
        );
        let buf = block.serialize_for(1024, true);
        assert_eq!(
            InodeChainBlock::deserialize_for(&buf, 10_000, true).unwrap(),
            block
        );
        // Misreading the coded layout as plain interleaves checksums into
        // the pointer stream, which the pointer plausibility check catches.
        assert!(InodeChainBlock::deserialize(&buf, 250).is_err());
    }

    #[test]
    fn header_replica_tables_roundtrip() {
        let mut h =
            HiddenHeader::with_policy(sig(0x51), ObjectKind::File, Policy::Disperse { m: 2, n: 4 });
        h.size = 1000;
        h.data_block_count = 8;
        h.inode_chain = 77;
        h.header_replicas = vec![301, 302, 303];
        h.chain_replicas = vec![78, 79];
        h.chain_csum = 0xdead_beef_0bad_f00d;
        let buf = h.serialize(512);
        let parsed = HiddenHeader::parse_if_match(&buf, &sig(0x51), 100_000).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn replica_pointers_outside_volume_rejected() {
        let mut h = HiddenHeader::new(sig(0x52), ObjectKind::File);
        h.header_replicas = vec![5_000];
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(0x52), 1_000).is_none());

        let mut h = HiddenHeader::new(sig(0x52), ObjectKind::File);
        h.header_replicas = vec![10];
        h.chain_replicas = vec![5_000];
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(0x52), 1_000).is_none());
    }

    #[test]
    fn empty_replica_tables_serialize_as_legacy_zero_padding() {
        // An extension-free header must be byte-identical to the pre-
        // survivability serialisation: zeros from the policy (m, n) bytes to
        // the end of the block.
        let mut h = HiddenHeader::new(sig(0x53), ObjectKind::File);
        h.size = 42;
        let buf = h.serialize(512);
        assert!(buf[BASE_HEADER_LEN..].iter().all(|&b| b == 0));
    }

    #[test]
    fn replicated_chain_roundtrip_and_capacity() {
        let copies = 3;
        let cap = InodeChainBlock::capacity_meta(1024, true, copies);
        assert_eq!(cap, (1024 - 8 - 2 * 8 - 8 - 2) / 16);
        // The replicated layout must cost capacity, not share it.
        assert!(cap < InodeChainBlock::capacity_for(1024, true));
        let block = InodeChainBlock {
            next: 42,
            next_replicas: vec![43, 44],
            next_csum: 0x0123_4567_89ab_cdef,
            pointers: (200..200 + cap as u64).collect(),
            csums: (900..900 + cap as u64).collect(),
        };
        let buf = block.serialize_meta(1024, true, copies);
        assert_eq!(
            InodeChainBlock::deserialize_meta(&buf, 10_000, true, copies).unwrap(),
            block
        );
        // A tail node carries NO_BLOCK replicas and a zero checksum.
        let tail = InodeChainBlock {
            next: NO_BLOCK,
            next_replicas: vec![NO_BLOCK, NO_BLOCK],
            next_csum: 0,
            pointers: vec![9],
            csums: vec![1],
        };
        let buf = tail.serialize_meta(512, true, copies);
        assert_eq!(
            InodeChainBlock::deserialize_meta(&buf, 10_000, true, copies).unwrap(),
            tail
        );
        // Replica pointer outside the volume is corruption.
        let bad = InodeChainBlock {
            next: 5,
            next_replicas: vec![5_000, 6],
            next_csum: 1,
            pointers: vec![],
            csums: vec![],
        };
        let buf = bad.serialize_meta(512, true, copies);
        assert!(InodeChainBlock::deserialize_meta(&buf, 1_000, true, copies).is_err());
    }

    #[test]
    fn single_copy_meta_layout_is_exactly_legacy() {
        let block = InodeChainBlock::with_link(3, vec![10, 11, 12], vec![]);
        assert_eq!(
            block.serialize_meta(512, false, 1),
            block.serialize_for(512, false)
        );
        assert_eq!(
            InodeChainBlock::capacity_meta(512, true, 1),
            InodeChainBlock::capacity_for(512, true)
        );
    }

    #[test]
    fn chain_capacity_matches_paper_workloads() {
        // A 2 MB file at 512-byte blocks needs 4096 pointers; with 62 per
        // chain block that is 67 chain blocks — perfectly feasible.
        let cap = InodeChainBlock::capacity(512);
        assert!(cap >= 60);
        let chain_blocks_needed = 4096usize.div_ceil(cap);
        assert!(chain_blocks_needed < 100);
    }
}
