//! The hidden-object header (Figure 2 of the paper).
//!
//! Each hidden file or directory is reached through a single *header block*
//! containing:
//!
//! * a **signature** that uniquely identifies the object (derived by one-way
//!   hashing from the physical name and access key, so the key cannot be
//!   recovered from it),
//! * a link to the **inode chain** that indexes all data blocks of the
//!   object, and
//! * the **free-block pool**: a list of blocks held by the file but not yet
//!   carrying data, which defeats attackers who difference bitmap snapshots.
//!
//! The header is always encrypted before it reaches the device, so none of
//! these fields are visible to an observer.
//!
//! The serialised header occupies the beginning of one block and is padded
//! with zeros to the block size before encryption.  It fits the smallest
//! block size the paper considers (512 bytes).

use crate::crypt::SIGNATURE_LEN;
use crate::error::{StegError, StegResult};

/// Maximum number of entries in the in-header free-block pool.
/// `FB_max` (Table 1) must not exceed this.
pub const FREE_POOL_CAPACITY: usize = 16;

/// Sentinel for "no block".
pub const NO_BLOCK: u64 = u64::MAX;

/// Serialised header length in bytes (excluding padding to the block size).
pub const HEADER_LEN: usize = SIGNATURE_LEN + 1 + 1 + 8 + 8 + 8 + 2 + FREE_POOL_CAPACITY * 8;

/// Whether a hidden object is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A regular hidden file.
    File,
    /// A hidden directory (its contents are a serialised
    /// [`crate::keys::UakDirectory`]-style listing of child objects).
    Directory,
}

impl ObjectKind {
    /// The single-character type code used by the paper's `steg_create`
    /// (`'f'` for files, `'d'` for directories).
    pub fn type_char(self) -> char {
        match self {
            ObjectKind::File => 'f',
            ObjectKind::Directory => 'd',
        }
    }

    /// Parse the paper's type code.
    pub fn from_type_char(c: char) -> StegResult<Self> {
        match c {
            'f' => Ok(ObjectKind::File),
            'd' => Ok(ObjectKind::Directory),
            other => Err(StegError::InvalidParameter(format!(
                "unknown object type '{other}' (expected 'f' or 'd')"
            ))),
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            ObjectKind::File => 1,
            ObjectKind::Directory => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(ObjectKind::File),
            2 => Some(ObjectKind::Directory),
            _ => None,
        }
    }
}

/// In-memory form of a hidden object's header block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiddenHeader {
    /// Signature identifying the object (compared against the value derived
    /// from the supplied name and key during lookup).
    pub signature: [u8; SIGNATURE_LEN],
    /// File or directory.
    pub kind: ObjectKind,
    /// Object size in bytes.
    pub size: u64,
    /// Number of data blocks currently assigned.
    pub data_block_count: u64,
    /// First block of the inode chain ([`NO_BLOCK`] when the object has no
    /// data blocks).
    pub inode_chain: u64,
    /// The internal pool of free blocks held by this object.
    pub free_pool: Vec<u64>,
}

impl HiddenHeader {
    /// A fresh header for an empty object.
    pub fn new(signature: [u8; SIGNATURE_LEN], kind: ObjectKind) -> Self {
        HiddenHeader {
            signature,
            kind,
            size: 0,
            data_block_count: 0,
            inode_chain: NO_BLOCK,
            free_pool: Vec::new(),
        }
    }

    /// Serialise into a buffer of exactly `block_size` bytes (zero padded).
    ///
    /// # Panics
    /// Panics if the free pool exceeds [`FREE_POOL_CAPACITY`] or the block
    /// size is too small for the header (both are internal invariants).
    pub fn serialize(&self, block_size: usize) -> Vec<u8> {
        assert!(
            self.free_pool.len() <= FREE_POOL_CAPACITY,
            "free pool overflows header capacity"
        );
        assert!(block_size >= HEADER_LEN, "block too small for header");
        let mut buf = vec![0u8; block_size];
        let mut off = 0;
        buf[off..off + SIGNATURE_LEN].copy_from_slice(&self.signature);
        off += SIGNATURE_LEN;
        buf[off] = self.kind.to_byte();
        off += 1;
        buf[off] = 0; // reserved flags
        off += 1;
        buf[off..off + 8].copy_from_slice(&self.size.to_be_bytes());
        off += 8;
        buf[off..off + 8].copy_from_slice(&self.data_block_count.to_be_bytes());
        off += 8;
        buf[off..off + 8].copy_from_slice(&self.inode_chain.to_be_bytes());
        off += 8;
        buf[off..off + 2].copy_from_slice(&(self.free_pool.len() as u16).to_be_bytes());
        off += 2;
        for i in 0..FREE_POOL_CAPACITY {
            let v = self.free_pool.get(i).copied().unwrap_or(NO_BLOCK);
            buf[off..off + 8].copy_from_slice(&v.to_be_bytes());
            off += 8;
        }
        debug_assert_eq!(off, HEADER_LEN);
        buf
    }

    /// Attempt to parse a decrypted block as a header whose signature equals
    /// `expected_signature`.  Returns `None` when the signature does not
    /// match or the structure is implausible — which is the common case while
    /// the locator walks candidate blocks that belong to other objects,
    /// abandoned blocks or random fill.
    pub fn parse_if_match(
        buf: &[u8],
        expected_signature: &[u8; SIGNATURE_LEN],
        total_blocks: u64,
    ) -> Option<Self> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        if !stegfs_crypto::ct::ct_eq(&buf[..SIGNATURE_LEN], expected_signature) {
            return None;
        }
        let mut off = SIGNATURE_LEN;
        let kind = ObjectKind::from_byte(buf[off])?;
        off += 2;
        let get_u64 = |o: usize| u64::from_be_bytes(buf[o..o + 8].try_into().unwrap());
        let size = get_u64(off);
        off += 8;
        let data_block_count = get_u64(off);
        off += 8;
        let inode_chain = get_u64(off);
        off += 8;
        let pool_len = u16::from_be_bytes(buf[off..off + 2].try_into().unwrap()) as usize;
        off += 2;
        if pool_len > FREE_POOL_CAPACITY {
            return None;
        }
        let mut free_pool = Vec::with_capacity(pool_len);
        for i in 0..pool_len {
            let v = get_u64(off + i * 8);
            if v >= total_blocks {
                return None;
            }
            free_pool.push(v);
        }
        if inode_chain != NO_BLOCK && inode_chain >= total_blocks {
            return None;
        }
        Some(HiddenHeader {
            signature: *expected_signature,
            kind,
            size,
            data_block_count,
            inode_chain,
            free_pool,
        })
    }
}

/// One block of the inode chain of a hidden object.
///
/// ```text
/// [next: u64][count: u16][pointer...]
/// ```
///
/// The chain stores the object's data-block numbers in logical order.  Like
/// every other hidden block it is encrypted before hitting the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InodeChainBlock {
    /// Next block in the chain, or [`NO_BLOCK`].
    pub next: u64,
    /// Data-block pointers stored in this chain block.
    pub pointers: Vec<u64>,
}

impl InodeChainBlock {
    /// Number of pointers that fit into one chain block of `block_size`.
    pub fn capacity(block_size: usize) -> usize {
        (block_size - 10) / 8
    }

    /// Serialise into exactly `block_size` bytes.
    pub fn serialize(&self, block_size: usize) -> Vec<u8> {
        assert!(self.pointers.len() <= Self::capacity(block_size));
        let mut buf = vec![0u8; block_size];
        buf[0..8].copy_from_slice(&self.next.to_be_bytes());
        buf[8..10].copy_from_slice(&(self.pointers.len() as u16).to_be_bytes());
        for (i, &p) in self.pointers.iter().enumerate() {
            let off = 10 + i * 8;
            buf[off..off + 8].copy_from_slice(&p.to_be_bytes());
        }
        buf
    }

    /// Parse a decrypted chain block.
    pub fn deserialize(buf: &[u8], total_blocks: u64) -> StegResult<Self> {
        if buf.len() < 10 {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain block too short".into(),
            )));
        }
        let next = u64::from_be_bytes(buf[0..8].try_into().unwrap());
        let count = u16::from_be_bytes(buf[8..10].try_into().unwrap()) as usize;
        if count > Self::capacity(buf.len()) {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain count exceeds capacity".into(),
            )));
        }
        let mut pointers = Vec::with_capacity(count);
        for i in 0..count {
            let off = 10 + i * 8;
            let p = u64::from_be_bytes(buf[off..off + 8].try_into().unwrap());
            if p >= total_blocks {
                return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(format!(
                    "inode chain pointer {p} outside volume"
                ))));
            }
            pointers.push(p);
        }
        if next != NO_BLOCK && next >= total_blocks {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain next pointer outside volume".into(),
            )));
        }
        Ok(InodeChainBlock { next, pointers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(byte: u8) -> [u8; SIGNATURE_LEN] {
        [byte; SIGNATURE_LEN]
    }

    #[test]
    fn header_fits_smallest_block_size() {
        const { assert!(HEADER_LEN <= 512) }
    }

    #[test]
    fn header_roundtrip() {
        let mut h = HiddenHeader::new(sig(0xab), ObjectKind::File);
        h.size = 123_456;
        h.data_block_count = 121;
        h.inode_chain = 999;
        h.free_pool = vec![5, 6, 7];
        let buf = h.serialize(1024);
        assert_eq!(buf.len(), 1024);
        let parsed = HiddenHeader::parse_if_match(&buf, &sig(0xab), 100_000).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_empty_object_roundtrip() {
        let h = HiddenHeader::new(sig(1), ObjectKind::Directory);
        let buf = h.serialize(512);
        let parsed = HiddenHeader::parse_if_match(&buf, &sig(1), 1000).unwrap();
        assert_eq!(parsed.kind, ObjectKind::Directory);
        assert_eq!(parsed.inode_chain, NO_BLOCK);
        assert!(parsed.free_pool.is_empty());
    }

    #[test]
    fn wrong_signature_rejected() {
        let h = HiddenHeader::new(sig(2), ObjectKind::File);
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(3), 1000).is_none());
    }

    #[test]
    fn random_garbage_rejected() {
        // A block of pseudo-random bytes should never parse: the signature
        // check alone rejects it.
        let garbage: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert!(HiddenHeader::parse_if_match(&garbage, &sig(7), 1 << 20).is_none());
    }

    #[test]
    fn implausible_fields_rejected_even_with_matching_signature() {
        // Signature matches but pool pointers are outside the volume: reject.
        let mut h = HiddenHeader::new(sig(9), ObjectKind::File);
        h.free_pool = vec![5_000];
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(9), 1_000).is_none());

        let mut h = HiddenHeader::new(sig(9), ObjectKind::File);
        h.inode_chain = 10_000;
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf, &sig(9), 1_000).is_none());
    }

    #[test]
    fn truncated_buffer_rejected() {
        let h = HiddenHeader::new(sig(4), ObjectKind::File);
        let buf = h.serialize(512);
        assert!(HiddenHeader::parse_if_match(&buf[..50], &sig(4), 1000).is_none());
    }

    #[test]
    #[should_panic(expected = "free pool overflows")]
    fn oversized_pool_panics_on_serialize() {
        let mut h = HiddenHeader::new(sig(5), ObjectKind::File);
        h.free_pool = vec![1; FREE_POOL_CAPACITY + 1];
        h.serialize(1024);
    }

    #[test]
    fn object_kind_type_chars() {
        assert_eq!(ObjectKind::File.type_char(), 'f');
        assert_eq!(ObjectKind::Directory.type_char(), 'd');
        assert_eq!(ObjectKind::from_type_char('f').unwrap(), ObjectKind::File);
        assert_eq!(
            ObjectKind::from_type_char('d').unwrap(),
            ObjectKind::Directory
        );
        assert!(ObjectKind::from_type_char('x').is_err());
    }

    #[test]
    fn inode_chain_roundtrip() {
        let cap = InodeChainBlock::capacity(1024);
        assert_eq!(cap, (1024 - 10) / 8);
        let block = InodeChainBlock {
            next: 77,
            pointers: (100..100 + cap as u64).collect(),
        };
        let buf = block.serialize(1024);
        assert_eq!(InodeChainBlock::deserialize(&buf, 10_000).unwrap(), block);
    }

    #[test]
    fn inode_chain_rejects_corruption() {
        let block = InodeChainBlock {
            next: NO_BLOCK,
            pointers: vec![5, 6],
        };
        let mut buf = block.serialize(512);
        // Corrupt the count to something impossible.
        buf[8] = 0xff;
        buf[9] = 0xff;
        assert!(InodeChainBlock::deserialize(&buf, 10_000).is_err());
        // Pointer outside the volume.
        let bad = InodeChainBlock {
            next: NO_BLOCK,
            pointers: vec![5_000],
        };
        let buf = bad.serialize(512);
        assert!(InodeChainBlock::deserialize(&buf, 1_000).is_err());
        // Next pointer outside the volume.
        let bad = InodeChainBlock {
            next: 5_000,
            pointers: vec![],
        };
        let buf = bad.serialize(512);
        assert!(InodeChainBlock::deserialize(&buf, 1_000).is_err());
        assert!(InodeChainBlock::deserialize(&[0u8; 4], 1_000).is_err());
    }

    #[test]
    fn chain_capacity_matches_paper_workloads() {
        // A 2 MB file at 512-byte blocks needs 4096 pointers; with 62 per
        // chain block that is 67 chain blocks — perfectly feasible.
        let cap = InodeChainBlock::capacity(512);
        assert!(cap >= 60);
        let chain_blocks_needed = 4096usize.div_ceil(cap);
        assert!(chain_blocks_needed < 100);
    }
}
