//! Key derivation and block encryption for hidden objects.
//!
//! Every block of a hidden object — header, inode-chain blocks and data
//! blocks — is encrypted under keys derived from the object's File Access Key
//! (FAK), so that on disk it is indistinguishable from the pseudorandom fill
//! written at format time and from abandoned blocks.
//!
//! Key schedule (all derivations are HMAC-SHA256 based, see
//! [`stegfs_crypto::kdf`]):
//!
//! ```text
//! master     = KDF(FAK, context = "stegfs/object", salt = physical name)
//! enc_key    = HMAC(master, "block-encryption")
//! sig        = HMAC(master, "signature")            // stored in the header
//! locator    = SHA-256(physical name ‖ 0 ‖ master)  // seeds the block locator
//! block IV   = SHA-256(enc_key ‖ "stegfs-iv" ‖ physical block number)[..16]
//! ```
//!
//! Tying the IV to the physical block number lets any block be decrypted in
//! isolation (the paper decrypts blocks "on-the-fly during retrieval") without
//! storing per-block nonces anywhere they could betray the file.

use stegfs_crypto::kdf::{derive_key, derive_subkey};
use stegfs_crypto::modes::{derive_iv, CtrCipher};
use stegfs_crypto::sha256::DIGEST_LEN;

/// Length in bytes of a hidden-object signature.
pub const SIGNATURE_LEN: usize = 32;

/// The derived key material of one hidden object.
///
/// Besides the raw key bytes, `ObjectKeys` caches the **expanded CTR key
/// schedule**: AES key expansion runs once in [`ObjectKeys::derive`], and
/// [`encrypt_block`](Self::encrypt_block) / [`decrypt_block`](Self::decrypt_block)
/// reuse the cached [`CtrCipher`] for every block.  Before this, each block
/// operation rebuilt the schedule from `enc_key`, so warm hidden reads paid
/// one key expansion *per block*; now they pay one per object (asserted by
/// the `one_key_expansion_per_object_not_per_block` test below).
pub struct ObjectKeys {
    master: [u8; DIGEST_LEN],
    enc_key: [u8; DIGEST_LEN],
    signature: [u8; SIGNATURE_LEN],
    cipher: CtrCipher,
}

impl ObjectKeys {
    /// Derive the key set for the object with the given physical name and
    /// file access key.
    pub fn derive(physical_name: &str, fak: &[u8]) -> Self {
        let master = derive_key(fak, b"stegfs/object", physical_name.as_bytes());
        let enc_key = derive_subkey(&master, b"block-encryption");
        let signature = derive_subkey(&master, b"signature");
        let cipher = CtrCipher::new(&enc_key);
        ObjectKeys {
            master,
            enc_key,
            signature,
            cipher,
        }
    }

    /// The signature stored in (and compared against) the object's header.
    pub fn signature(&self) -> &[u8; SIGNATURE_LEN] {
        &self.signature
    }

    /// Seed material for the keyed block locator.
    pub fn locator_seed(&self) -> &[u8; DIGEST_LEN] {
        &self.master
    }

    /// Encrypt a block in place for storage at physical block `block_no`,
    /// reusing the key schedule expanded at derivation time.
    pub fn encrypt_block(&self, block_no: u64, data: &mut [u8]) {
        let iv = derive_iv(&self.enc_key, block_no);
        self.cipher.apply(&iv, data);
    }

    /// Decrypt a block in place that was read from physical block `block_no`.
    /// (CTR mode: same operation as encryption.)
    pub fn decrypt_block(&self, block_no: u64, data: &mut [u8]) {
        self.encrypt_block(block_no, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_name_and_key_sensitive() {
        let a = ObjectKeys::derive("u1:/budget", b"fak-1");
        let a2 = ObjectKeys::derive("u1:/budget", b"fak-1");
        let b = ObjectKeys::derive("u1:/budget", b"fak-2");
        let c = ObjectKeys::derive("u2:/budget", b"fak-1");
        assert_eq!(a.signature(), a2.signature());
        assert_eq!(a.locator_seed(), a2.locator_seed());
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        assert_ne!(a.locator_seed(), b.locator_seed());
    }

    #[test]
    fn signature_differs_from_locator_seed_and_enc_key() {
        let k = ObjectKeys::derive("obj", b"fak");
        assert_ne!(k.signature(), k.locator_seed());
        assert_ne!(&k.enc_key, k.signature());
    }

    #[test]
    fn block_encryption_roundtrip_and_position_binding() {
        let k = ObjectKeys::derive("obj", b"fak");
        let original = vec![7u8; 1024];

        let mut at_5 = original.clone();
        k.encrypt_block(5, &mut at_5);
        assert_ne!(at_5, original);

        let mut at_6 = original.clone();
        k.encrypt_block(6, &mut at_6);
        assert_ne!(at_6, at_5, "same plaintext at different blocks must differ");

        k.decrypt_block(5, &mut at_5);
        assert_eq!(at_5, original);
    }

    #[test]
    fn one_key_expansion_per_object_not_per_block() {
        // Micro-bench guard for the cached cipher schedule: deriving the key
        // set expands the AES key a bounded number of times (the CTR cipher,
        // plus whatever the KDF uses internally), and encrypting many blocks
        // afterwards expands it ZERO more times.  Other tests run in
        // parallel, so assert on deltas around operations that this thread
        // fully controls.
        let keys = ObjectKeys::derive("u1:/expansion-counter", b"fak");
        let mut block = vec![0xa5u8; 4096];
        // Warm up any lazily initialised state, then measure.
        keys.encrypt_block(0, &mut block);
        // The counter is process-global and other tests derive keys
        // concurrently, so any single window can pick up noise.  Noise only
        // ever *adds*, so take the minimum delta over several windows: with
        // per-block expansion every window would read >= 256; without it the
        // quietest window reads (near) zero.
        let min_delta = (0..5)
            .map(|round| {
                let before = stegfs_crypto::aes::Aes::key_expansions();
                for i in 1..=256u64 {
                    keys.encrypt_block(round * 1000 + i, &mut block);
                }
                stegfs_crypto::aes::Aes::key_expansions() - before
            })
            .min()
            .expect("five rounds");
        assert!(
            min_delta < 256,
            "block encryption re-expanded the key per block \
             ({min_delta} expansions for 256 blocks in the quietest window)"
        );
    }

    #[test]
    fn wrong_key_produces_garbage() {
        let k1 = ObjectKeys::derive("obj", b"fak-1");
        let k2 = ObjectKeys::derive("obj", b"fak-2");
        let mut data = b"top secret contents of the hidden file".to_vec();
        let original = data.clone();
        k1.encrypt_block(9, &mut data);
        k2.decrypt_block(9, &mut data);
        assert_ne!(data, original);
    }

    #[test]
    fn ciphertext_has_no_obvious_plaintext_bytes() {
        let k = ObjectKeys::derive("obj", b"fak");
        let mut data = vec![0u8; 4096];
        k.encrypt_block(0, &mut data);
        // An all-zero plaintext must not remain mostly zero.
        let zeros = data.iter().filter(|&&b| b == 0).count();
        assert!(zeros < 64, "only {zeros} zero bytes expected by chance");
    }
}
