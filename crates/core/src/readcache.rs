//! Deniability-safe read-path caching for hidden objects.
//!
//! The paper decrypts hidden blocks "on-the-fly during retrieval", and the
//! reproduction used to do so literally: every hidden read re-walked the
//! keyed locator, re-decrypted the header and inode-chain blocks and
//! re-decrypted every data block, so a warm read cost nearly as much as a
//! cold one.  [`ReadCache`] removes the redundant work while keeping the
//! on-disk image — the only thing the adversary ever sees — bit-identical.
//!
//! # The cache contract: what may be cached where, and when it must die
//!
//! Everything in this module is **RAM only**.  Nothing here is ever
//! serialised, journaled, or written to the device; a cached and an uncached
//! run of the same workload produce byte-identical disk images (asserted by
//! `tests/readpath_cache.rs`).
//!
//! Two things are cached, both keyed by material derived from the object's
//! access key (so a cache entry is exactly as secret as the key that created
//! it):
//!
//! * **Per-object header + extent maps** — the decrypted
//!   [`HiddenHeader`] and the data/chain block lists of the inode chain,
//!   keyed by the object's 256-bit signature.  A hit skips the
//!   `locate_header` probe walk *and* the chain decryption entirely.
//! * **Decrypted data blocks** — a sharded LRU of plaintext block images,
//!   keyed by `(entry generation, physical block)`.  A hit skips both the
//!   device read and the AES-CTR pass.
//!
//! When entries must die:
//!
//! * **Any mutation of the object** — write, resize/truncate, in-place range
//!   write, rename, unlink, re-key (sharing revocation), dummy-file rewrite —
//!   invalidates its entry ([`ReadCache::invalidate`]).  Invalidation bumps a
//!   global *generation*; a reader that started its disk walk before the
//!   bump cannot install a stale entry afterwards (the insert is rejected),
//!   and plaintext blocks cached under the dead entry generation become
//!   unreachable even if the same physical block is later recycled into
//!   another object.
//! * **Session sign-off** — the VFS purges the departing session's scope
//!   ([`ReadCache::purge_scope`]): every entry tagged with that session's
//!   keys, plus every entry whose owner was never established, is removed
//!   and zeroed, so no decrypted byte outlives the session that could
//!   legitimately read it.  Entries other live sessions resolved through
//!   their own keys stay warm.  `disconnect_all` and unmount still purge
//!   *everything* ([`ReadCache::purge`]).  Purged and evicted plaintext
//!   buffers are zeroed before they are freed ([`zeroize`]).
//! * **Remount** — the cache lives inside the mounted [`crate::StegFs`]
//!   value and is never persisted, so a crash-replay remount starts provably
//!   empty.
//!
//! The cache never makes a *negative* claim: a miss falls through to the
//! normal locator/decrypt path, so wrong-key lookups behave exactly as
//! before (deniable not-found), and nothing about timing distinguishes "no
//! such object" from "not cached".
//!
//! # Coherence model
//!
//! The cache is coherent for every mutation that goes through
//! [`crate::StegFs`] — which is every mutation the public API can express.
//! Writing to a hidden object by calling [`crate::hidden`] functions
//! directly on the underlying `PlainFs` of a *live, cached* `StegFs`
//! bypasses invalidation and is unsupported (the same pre-existing rule as
//! bypassing the object shards).

use crate::crypt::SIGNATURE_LEN;
use crate::header::HiddenHeader;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use stegfs_obs::{span, ReadCacheStats};

/// Number of independently locked shards for each of the two maps.
const SHARDS: usize = 16;

/// Entry generation that never matches a live entry: block lookups and
/// inserts under it are no-ops.  Used when an insert lost against a
/// concurrent invalidation.
pub const DEAD_GEN: u64 = u64::MAX;

/// Cache key: the object's signature (unique per `(physical name, FAK)`
/// pair, so two UAK directories sharing the reserved physical name can never
/// collide).
pub type ObjectSig = [u8; SIGNATURE_LEN];

/// The cached block map of one hidden object: its data blocks in logical
/// order plus the chain blocks that encode them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentList {
    /// Data blocks in logical order (for coded objects: share blocks in
    /// group-major order).
    pub data_blocks: Vec<u64>,
    /// Inode-chain blocks in walk order.
    pub chain_blocks: Vec<u64>,
    /// Per-share checksums parallel to `data_blocks`; empty for plain
    /// objects.
    pub share_csums: Vec<u64>,
    /// `(m, n)` of the object's durability policy, `None` for plain.
    /// Decides the key space of the plaintext-block cache (see
    /// [`Self::block_cache_keys`]).
    pub coding: Option<(usize, usize)>,
}

impl ExtentList {
    /// An extent list for a plain (uncoded) object.
    pub fn plain(data_blocks: Vec<u64>, chain_blocks: Vec<u64>) -> Self {
        ExtentList {
            data_blocks,
            chain_blocks,
            share_csums: Vec::new(),
            coding: None,
        }
    }

    /// Every key the object may occupy in the plaintext-block cache.  Plain
    /// objects cache decrypted blocks under their physical block numbers;
    /// coded objects cache *decoded logical* blocks under logical indices
    /// (the share blocks themselves are never cached), so invalidation must
    /// sweep logical keys `0 .. groups * m`.
    pub fn block_cache_keys(&self) -> Vec<u64> {
        match self.coding {
            None => self.data_blocks.clone(),
            Some((m, n)) => {
                let groups = self.data_blocks.len() / n.max(1);
                (0..(groups * m) as u64).collect()
            }
        }
    }
}

/// One cached object: decrypted header, its location, and (once a read has
/// walked the chain) the extent list.  `gen` tags the plaintext blocks this
/// object may have in the block cache.
struct CachedObject {
    gen: u64,
    /// Session scope this entry belongs to (0 = unscoped; see
    /// [`ReadCache::tag_scope`]).  Scoped purges remove matching *and*
    /// unscoped entries, so an untagged entry can never outlive a sign-off.
    scope: u64,
    header_block: u64,
    header: HiddenHeader,
    extents: Option<Arc<ExtentList>>,
}

/// Result of a successful header lookup.
pub struct CachedOpen {
    /// Entry generation (tags this object's plaintext blocks).
    pub gen: u64,
    /// Physical block holding the header.
    pub header_block: u64,
    /// Decrypted header.
    pub header: HiddenHeader,
}

struct BlockEntry {
    data: Vec<u8>,
    tick: u64,
}

#[derive(Default)]
struct BlockShard {
    map: HashMap<(u64, u64), BlockEntry>,
    tick: u64,
    bytes: u64,
}

/// Snapshot of the cache counters, printed by the benches next to the
/// device-level `IoStats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Header lookups served from the cache (locator walk skipped).
    pub header_hits: u64,
    /// Header lookups that fell through to the locator.
    pub header_misses: u64,
    /// Extent-map lookups served from the cache (chain walk skipped).
    pub extent_hits: u64,
    /// Extent-map lookups that fell through to the chain walk.
    pub extent_misses: u64,
    /// Plaintext data blocks served from the cache.
    pub block_hits: u64,
    /// Plaintext data blocks that had to be read and decrypted.
    pub block_misses: u64,
    /// Plaintext blocks evicted (zeroed) to stay within capacity.
    pub evictions: u64,
    /// Object invalidations (mutations observed).
    pub invalidations: u64,
    /// Inserts dropped because an invalidation raced the disk walk.
    pub rejected_inserts: u64,
    /// Full purges (sign-off / unmount).
    pub purges: u64,
    /// Scoped purges (one departing session's entries swept).
    pub scoped_purges: u64,
    /// Plaintext blocks currently resident.
    pub resident_blocks: u64,
    /// Plaintext bytes currently resident.
    pub resident_bytes: u64,
    /// Object header/extent entries currently resident.
    pub resident_objects: u64,
}

#[derive(Default)]
struct Counters {
    header_hits: AtomicU64,
    header_misses: AtomicU64,
    extent_hits: AtomicU64,
    extent_misses: AtomicU64,
    block_hits: AtomicU64,
    block_misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    rejected_inserts: AtomicU64,
    purges: AtomicU64,
    scoped_purges: AtomicU64,
}

/// Overwrite a buffer with zeros in a way the optimiser cannot elide, then
/// let it drop.  Used for every evicted, purged or pooled plaintext buffer.
pub fn zeroize(buf: &mut [u8]) {
    buf.fill(0);
    // The black_box makes the zeroed contents observable, so the fill above
    // cannot be removed as a dead store ahead of the deallocation.
    std::hint::black_box(&*buf);
}

/// The read-path cache of one mounted volume.  See the module docs for the
/// full contract; in one line: *decrypted state may be cached in RAM for as
/// long as the mutating API is told about every mutation and a sign-off
/// purges everything.*
pub struct ReadCache {
    /// Total plaintext-block capacity (0 disables all caching).
    capacity_blocks: usize,
    /// Global invalidation generation: bumped by every invalidate/purge.
    /// Readers snapshot it before a disk walk; inserts are rejected if it
    /// moved, so a stale walk can never overwrite a fresher invalidation.
    global_gen: AtomicU64,
    /// Source of per-entry generations for block-cache tagging.
    next_entry_gen: AtomicU64,
    objects: Vec<Mutex<HashMap<ObjectSig, CachedObject>>>,
    blocks: Vec<Mutex<BlockShard>>,
    counters: Counters,
    /// Session scope of each signature, fed by the lookup paths that *do*
    /// know which access key resolved the object ([`Self::tag_scope`]).
    /// Consulted on insert so cached entries carry their owning session.
    scopes: Mutex<HashMap<ObjectSig, u64>>,
    /// Latency histograms of the volume's observability registry (disabled
    /// handle until [`Self::set_obs`]).
    obs: Arc<ReadCacheStats>,
}

fn object_shard(sig: &ObjectSig) -> usize {
    // The signature is already uniform (HMAC output); its first byte shards.
    sig[0] as usize % SHARDS
}

fn block_shard(block: u64) -> usize {
    (block as usize) % SHARDS
}

impl ReadCache {
    /// A cache holding at most `capacity_blocks` decrypted blocks
    /// (0 disables caching entirely: every lookup misses, every insert is a
    /// no-op, and reads behave exactly as before this layer existed).
    pub fn new(capacity_blocks: usize) -> Self {
        ReadCache {
            capacity_blocks,
            global_gen: AtomicU64::new(0),
            // 0 is a valid entry gen; DEAD_GEN (u64::MAX) never is.
            next_entry_gen: AtomicU64::new(0),
            objects: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            blocks: (0..SHARDS)
                .map(|_| Mutex::new(BlockShard::default()))
                .collect(),
            counters: Counters::default(),
            scopes: Mutex::new(HashMap::new()),
            obs: Arc::new(ReadCacheStats::new(false)),
        }
    }

    /// Attach the volume's observability histograms (done once during
    /// assembly, before the cache is shared).
    pub fn set_obs(&mut self, stats: Arc<ReadCacheStats>) {
        self.obs = stats;
    }

    #[inline]
    fn clock(&self) -> Option<Instant> {
        if self.obs.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// True if the cache can hold anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity_blocks > 0
    }

    /// Snapshot the global generation *before* starting a disk walk whose
    /// result will be inserted; pass the snapshot to the `store_*` call.
    pub fn begin(&self) -> u64 {
        self.global_gen.load(Ordering::Acquire)
    }

    fn fresh_entry_gen(&self) -> u64 {
        self.next_entry_gen.fetch_add(1, Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Header / extent map
    // ------------------------------------------------------------------

    /// The cached header of `sig` without touching the hit/miss counters —
    /// the freshness probe `hidden::cached_chain` uses to decide whether a
    /// caller-supplied header may be (re)installed.
    pub fn peek_header(&self, sig: &ObjectSig) -> Option<(u64, HiddenHeader)> {
        if !self.enabled() {
            return None;
        }
        let shard = self.objects[object_shard(sig)].lock();
        shard
            .get(sig)
            .map(|obj| (obj.header_block, obj.header.clone()))
    }

    /// Look up the cached header of `sig` (skipping the locator walk on a
    /// hit).
    pub fn lookup_header(&self, sig: &ObjectSig) -> Option<CachedOpen> {
        if !self.enabled() {
            return None;
        }
        let shard = self.objects[object_shard(sig)].lock();
        match shard.get(sig) {
            Some(obj) => {
                self.counters.header_hits.fetch_add(1, Ordering::Relaxed);
                Some(CachedOpen {
                    gen: obj.gen,
                    header_block: obj.header_block,
                    header: obj.header.clone(),
                })
            }
            None => {
                self.counters.header_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up the cached extent list of `sig`, but only if it still indexes
    /// the chain the caller's header names (`chain_head`, `count`) — a
    /// cached map from a previous incarnation never resolves.
    pub fn lookup_extents(
        &self,
        sig: &ObjectSig,
        chain_head: u64,
        count: u64,
    ) -> Option<(u64, Arc<ExtentList>)> {
        if !self.enabled() {
            return None;
        }
        let shard = self.objects[object_shard(sig)].lock();
        let hit = shard.get(sig).and_then(|obj| {
            let ext = obj.extents.as_ref()?;
            let matches =
                obj.header.inode_chain == chain_head && ext.data_blocks.len() as u64 == count;
            matches.then(|| (obj.gen, Arc::clone(ext)))
        });
        match hit {
            Some(found) => {
                self.counters.extent_hits.fetch_add(1, Ordering::Relaxed);
                Some(found)
            }
            None => {
                self.counters.extent_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Install (or refresh) the header of `sig`, read during a walk that
    /// began at generation `started`.  Rejected (a no-op) if any
    /// invalidation or purge happened since `started`.
    pub fn store_header(
        &self,
        sig: &ObjectSig,
        started: u64,
        header_block: u64,
        header: HiddenHeader,
    ) {
        self.store(sig, started, header_block, header, None);
    }

    /// Install the extent list of `sig` alongside its header; returns the
    /// entry generation to tag plaintext-block inserts with, or [`DEAD_GEN`]
    /// when the insert was rejected.
    pub fn store_extents(
        &self,
        sig: &ObjectSig,
        started: u64,
        header_block: u64,
        header: HiddenHeader,
        extents: Arc<ExtentList>,
    ) -> u64 {
        self.store(sig, started, header_block, header, Some(extents))
    }

    fn store(
        &self,
        sig: &ObjectSig,
        started: u64,
        header_block: u64,
        header: HiddenHeader,
        extents: Option<Arc<ExtentList>>,
    ) -> u64 {
        if !self.enabled() {
            return DEAD_GEN;
        }
        // Read the scope tag before taking the shard lock (no path ever
        // holds both the scope table and a shard lock at once).
        let scope = self.scopes.lock().get(sig).copied().unwrap_or(0);
        let mut shard = self.objects[object_shard(sig)].lock();
        // The generation check runs under the shard lock, and invalidate()
        // bumps the generation *before* taking the shard lock — so either we
        // see the bump here and reject, or the invalidation runs after us
        // and removes the entry we are about to insert.  Either way no stale
        // entry survives an invalidation.
        if self.global_gen.load(Ordering::Acquire) != started {
            self.counters
                .rejected_inserts
                .fetch_add(1, Ordering::Relaxed);
            return DEAD_GEN;
        }
        match shard.get_mut(sig) {
            Some(obj) if obj.header_block == header_block && obj.header == header => {
                // Same incarnation: keep the gen (existing cached blocks stay
                // valid), optionally add the extents and a late scope tag.
                if let Some(ext) = extents {
                    obj.extents = Some(ext);
                }
                if scope != 0 {
                    obj.scope = scope;
                }
                obj.gen
            }
            other => {
                let gen = self.fresh_entry_gen();
                let obj = CachedObject {
                    gen,
                    scope,
                    header_block,
                    header,
                    extents,
                };
                match other {
                    Some(slot) => *slot = obj,
                    None => {
                        shard.insert(*sig, obj);
                    }
                }
                gen
            }
        }
    }

    /// Record that `sig` was resolved through the session identified by
    /// `scope` (any stable non-zero value derived from the session's user
    /// access key).  Entries installed for `sig` from now on carry the tag,
    /// and [`Self::purge_scope`] for that value sweeps them.  The table
    /// holds signatures and opaque scope ids only — no key material.
    pub fn tag_scope(&self, sig: &ObjectSig, scope: u64) {
        if !self.enabled() || scope == 0 {
            return;
        }
        self.scopes.lock().insert(*sig, scope);
        // An already-resident entry (cached before the tag existed) gets
        // tagged in place so it does not linger as "unscoped" forever.
        let mut shard = self.objects[object_shard(sig)].lock();
        if let Some(obj) = shard.get_mut(sig) {
            obj.scope = scope;
        }
    }

    // ------------------------------------------------------------------
    // Plaintext block cache
    // ------------------------------------------------------------------

    /// Copy the cached plaintext of `block` (under entry generation `gen`)
    /// straight into `out`; returns false on a miss.  Copying under the
    /// shard lock keeps the hot hit path allocation-free and never hands
    /// out an owned plaintext buffer that could be dropped un-zeroed.
    pub fn get_block_into(&self, gen: u64, block: u64, out: &mut [u8]) -> bool {
        if !self.enabled() || gen == DEAD_GEN {
            return false;
        }
        let start = self.clock();
        let mut shard = self.blocks[block_shard(block)].lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&(gen, block)) {
            Some(entry) => {
                entry.tick = tick;
                out.copy_from_slice(&entry.data);
                drop(shard);
                self.counters.block_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = start {
                    let ns = start.elapsed().as_nanos() as u64;
                    self.obs.hit_ns.record(ns);
                    span::note(span::Phase::CacheHit, ns);
                }
                true
            }
            None => {
                drop(shard);
                self.counters.block_misses.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = start {
                    let ns = start.elapsed().as_nanos() as u64;
                    self.obs.miss_ns.record(ns);
                    span::note(span::Phase::CacheMiss, ns);
                }
                false
            }
        }
    }

    /// True if `block` is resident under entry generation `gen`.  Unlike
    /// [`Self::get_block_into`] this records no hit/miss and does not touch
    /// the LRU order — it is the readahead filter's probe.
    pub fn contains_block(&self, gen: u64, block: u64) -> bool {
        if !self.enabled() || gen == DEAD_GEN {
            return false;
        }
        self.blocks[block_shard(block)]
            .lock()
            .map
            .contains_key(&(gen, block))
    }

    /// Insert the plaintext of `block` under entry generation `gen`,
    /// evicting (and zeroing) least-recently-used blocks to stay within the
    /// per-shard capacity.
    ///
    /// The insert is accepted only while `gen` is still the live generation
    /// of `sig`'s entry, verified — and held — under the object shard lock,
    /// so a reader that lost a race against [`Self::invalidate`] cannot
    /// park un-zeroed plaintext of the old incarnation under a dead key.
    /// Lock order: object shard < block shard (same as `invalidate`).
    pub fn put_block(&self, sig: &ObjectSig, gen: u64, block: u64, data: &[u8]) {
        if !self.enabled() || gen == DEAD_GEN {
            return;
        }
        let object_guard = self.objects[object_shard(sig)].lock();
        if object_guard.get(sig).map(|o| o.gen) != Some(gen) {
            // Invalidated (or replaced) since the reader picked up `gen`:
            // the plaintext belongs to a dead incarnation — drop it.
            self.counters
                .rejected_inserts
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let per_shard = (self.capacity_blocks / SHARDS).max(1);
        let mut shard = self.blocks[block_shard(block)].lock();
        shard.tick += 1;
        let tick = shard.tick;
        let entry = BlockEntry {
            data: data.to_vec(),
            tick,
        };
        shard.bytes += entry.data.len() as u64;
        if let Some(mut old) = shard.map.insert((gen, block), entry) {
            shard.bytes -= old.data.len() as u64;
            zeroize(&mut old.data);
        }
        while shard.map.len() > per_shard {
            let start = self.clock();
            // Per-shard maps are small (capacity / SHARDS), so a min-scan
            // eviction is noise next to the AES work a miss costs.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            if let Some(mut evicted) = shard.map.remove(&victim) {
                shard.bytes -= evicted.data.len() as u64;
                zeroize(&mut evicted.data);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(start) = start {
                    self.obs.evict_ns.record(start.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invalidation and purge
    // ------------------------------------------------------------------

    /// Drop everything cached for `sig` (call after any mutation of the
    /// object).  The object's plaintext blocks are removed and zeroed; the
    /// generation bump makes any insert racing this call land dead.
    pub fn invalidate(&self, sig: &ObjectSig) {
        if !self.enabled() {
            return;
        }
        // Bump first (see store() for the ordering argument).
        self.global_gen.fetch_add(1, Ordering::AcqRel);
        self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
        // The object shard stays held across the block sweep: `put_block`
        // verifies the entry's liveness under this same lock, so once the
        // entry is gone no further plaintext of its generation can be
        // inserted, and everything inserted before is swept here.
        let start = self.clock();
        let mut object_guard = self.objects[object_shard(sig)].lock();
        if let Some(obj) = object_guard.remove(sig) {
            if let Some(ext) = obj.extents {
                for block in ext.block_cache_keys() {
                    let mut shard = self.blocks[block_shard(block)].lock();
                    if let Some(mut e) = shard.map.remove(&(obj.gen, block)) {
                        shard.bytes -= e.data.len() as u64;
                        zeroize(&mut e.data);
                    }
                }
            }
        }
        drop(object_guard);
        if let Some(start) = start {
            self.obs
                .zeroize_ns
                .record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Drop and zero every entry belonging to the departing session `scope`
    /// — plus every *unscoped* entry, so nothing whose owner is unknown can
    /// outlive a sign-off.  Entries other live sessions resolved through
    /// their own keys stay warm; the volume-wide [`Self::purge`] remains the
    /// unmount/disconnect-all hammer.
    pub fn purge_scope(&self, scope: u64) {
        if !self.enabled() || scope == 0 {
            return;
        }
        let start = self.clock();
        // Bump first, same ordering argument as `invalidate`: in-flight
        // walks that started before the sign-off cannot install afterwards.
        self.global_gen.fetch_add(1, Ordering::AcqRel);
        self.counters.scoped_purges.fetch_add(1, Ordering::Relaxed);
        self.scopes.lock().retain(|_, s| *s != scope);
        // Sweep matching (and unscoped) object entries, collecting their
        // generations; then sweep the block shards by generation so no
        // plaintext survives even if an extent list was never installed.
        let mut dead_gens = HashSet::new();
        for shard in &self.objects {
            let mut shard = shard.lock();
            shard.retain(|_, obj| {
                let dies = obj.scope == scope || obj.scope == 0;
                if dies {
                    dead_gens.insert(obj.gen);
                }
                !dies
            });
        }
        if !dead_gens.is_empty() {
            for shard in &self.blocks {
                let mut shard = shard.lock();
                let victims: Vec<(u64, u64)> = shard
                    .map
                    .keys()
                    .filter(|(gen, _)| dead_gens.contains(gen))
                    .copied()
                    .collect();
                for key in victims {
                    if let Some(mut e) = shard.map.remove(&key) {
                        shard.bytes -= e.data.len() as u64;
                        zeroize(&mut e.data);
                    }
                }
            }
        }
        if let Some(start) = start {
            self.obs
                .zeroize_ns
                .record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Drop and zero **everything** — the sign-off/unmount hook.  After this
    /// returns, [`CacheStats::resident_blocks`] and
    /// [`CacheStats::resident_bytes`] are zero and no decrypted byte from
    /// before the purge is reachable through the cache.
    pub fn purge(&self) {
        if !self.enabled() {
            return;
        }
        let start = self.clock();
        self.global_gen.fetch_add(1, Ordering::AcqRel);
        self.counters.purges.fetch_add(1, Ordering::Relaxed);
        self.scopes.lock().clear();
        for shard in &self.objects {
            shard.lock().clear();
        }
        for shard in &self.blocks {
            let mut shard = shard.lock();
            for (_, entry) in shard.map.iter_mut() {
                zeroize(&mut entry.data);
            }
            shard.map.clear();
            shard.bytes = 0;
        }
        if let Some(start) = start {
            self.obs
                .zeroize_ns
                .record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Snapshot the counters (residency computed live from the shards).
    pub fn stats(&self) -> CacheStats {
        let mut resident_blocks = 0u64;
        let mut resident_bytes = 0u64;
        for shard in &self.blocks {
            let shard = shard.lock();
            resident_blocks += shard.map.len() as u64;
            resident_bytes += shard.bytes;
        }
        let resident_objects = self
            .objects
            .iter()
            .map(|s| s.lock().len() as u64)
            .sum::<u64>();
        let c = &self.counters;
        CacheStats {
            header_hits: c.header_hits.load(Ordering::Relaxed),
            header_misses: c.header_misses.load(Ordering::Relaxed),
            extent_hits: c.extent_hits.load(Ordering::Relaxed),
            extent_misses: c.extent_misses.load(Ordering::Relaxed),
            block_hits: c.block_hits.load(Ordering::Relaxed),
            block_misses: c.block_misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            invalidations: c.invalidations.load(Ordering::Relaxed),
            rejected_inserts: c.rejected_inserts.load(Ordering::Relaxed),
            purges: c.purges.load(Ordering::Relaxed),
            scoped_purges: c.scoped_purges.load(Ordering::Relaxed),
            resident_blocks,
            resident_bytes,
            resident_objects,
        }
    }

    /// A shared always-empty cache for callers of the pre-cache `hidden::*`
    /// API (capacity 0: every lookup misses, every insert is a no-op).
    pub fn disabled() -> &'static ReadCache {
        static DISABLED: std::sync::OnceLock<ReadCache> = std::sync::OnceLock::new();
        DISABLED.get_or_init(|| ReadCache::new(0))
    }
}

/// A tiny thread-local pool of scratch buffers for the hidden read/write
/// paths, so every batched operation stops allocating (and leaking traces of
/// plaintext into) a fresh `Vec`.  Buffers are zeroed *before* they enter
/// the pool, so the pool itself never holds plaintext.
pub(crate) mod scratch {
    use std::cell::RefCell;

    thread_local! {
        static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    }

    /// Buffers retained per thread; engine workers are a fixed pool, so this
    /// bounds the idle footprint.
    const MAX_POOLED: usize = 8;
    /// Never hoard buffers beyond this capacity.
    const MAX_POOLED_CAPACITY: usize = 4 << 20;

    /// Take a zero-filled buffer of exactly `len` bytes, reusing a pooled
    /// allocation when one is available.
    pub fn take(len: usize) -> Vec<u8> {
        let pooled = POOL.with(|p| p.borrow_mut().pop());
        match pooled {
            Some(mut v) => {
                // Pooled buffers are zeroed and emptied by `put`, so this
                // only fills fresh growth.
                v.resize(len, 0);
                v
            }
            None => vec![0u8; len],
        }
    }

    /// Zero `v` and return it to the pool (or drop it if the pool is full).
    pub fn put(mut v: Vec<u8>) {
        super::zeroize(&mut v);
        v.clear();
        if v.capacity() == 0 || v.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjectKind;

    fn header(size: u64) -> HiddenHeader {
        let mut h = HiddenHeader::new([7u8; SIGNATURE_LEN], ObjectKind::File);
        h.size = size;
        h
    }

    #[test]
    fn disabled_cache_never_stores() {
        let c = ReadCache::new(0);
        let sig = [1u8; SIGNATURE_LEN];
        let started = c.begin();
        c.store_header(&sig, started, 5, header(0));
        assert!(c.lookup_header(&sig).is_none());
        c.put_block(&sig, 0, 9, b"plaintext");
        let mut out = [0u8; 9];
        assert!(!c.get_block_into(0, 9, &mut out));
        assert_eq!(c.stats().resident_blocks, 0);
    }

    #[test]
    fn header_roundtrip_and_invalidation() {
        let c = ReadCache::new(64);
        let sig = [2u8; SIGNATURE_LEN];
        let started = c.begin();
        c.store_header(&sig, started, 42, header(100));
        let hit = c.lookup_header(&sig).expect("hit");
        assert_eq!(hit.header_block, 42);
        assert_eq!(hit.header.size, 100);
        c.invalidate(&sig);
        assert!(c.lookup_header(&sig).is_none());
        let s = c.stats();
        assert_eq!(s.header_hits, 1);
        assert_eq!(s.invalidations, 1);
    }

    #[test]
    fn racing_insert_after_invalidation_is_rejected() {
        let c = ReadCache::new(64);
        let sig = [3u8; SIGNATURE_LEN];
        let started = c.begin();
        // An invalidation lands while the "disk walk" is in flight.
        c.invalidate(&sig);
        c.store_header(&sig, started, 7, header(1));
        assert!(
            c.lookup_header(&sig).is_none(),
            "stale insert must not land"
        );
        let gen = c.store_extents(
            &sig,
            started,
            7,
            header(1),
            Arc::new(ExtentList::plain(vec![10], vec![])),
        );
        assert_eq!(gen, DEAD_GEN);
        c.put_block(&sig, gen, 10, b"should not stick");
        let mut out = [0u8; 16];
        assert!(!c.get_block_into(gen, 10, &mut out));
        assert!(c.stats().rejected_inserts >= 1);
    }

    #[test]
    fn extent_lookup_requires_matching_chain() {
        let c = ReadCache::new(64);
        let sig = [4u8; SIGNATURE_LEN];
        let mut h = header(2048);
        h.inode_chain = 99;
        h.data_block_count = 2;
        let ext = Arc::new(ExtentList::plain(vec![10, 11], vec![99]));
        let gen = c.store_extents(&sig, c.begin(), 5, h, ext);
        assert_ne!(gen, DEAD_GEN);
        assert!(c.lookup_extents(&sig, 99, 2).is_some());
        // A header naming a different chain (stale caller) never matches.
        assert!(c.lookup_extents(&sig, 98, 2).is_none());
        assert!(c.lookup_extents(&sig, 99, 3).is_none());
    }

    /// Install a live entry for `sig` whose extents cover `blocks`; returns
    /// the entry generation block inserts must carry.
    fn live_entry(c: &ReadCache, sig: &ObjectSig, blocks: &[u64]) -> u64 {
        let gen = c.store_extents(
            sig,
            c.begin(),
            1,
            header(blocks.len() as u64 * 64),
            Arc::new(ExtentList::plain(blocks.to_vec(), vec![])),
        );
        assert_ne!(gen, DEAD_GEN);
        gen
    }

    #[test]
    fn block_cache_lru_evicts_and_counts_bytes() {
        // Capacity below one per shard rounds up to 1 per shard.
        let c = ReadCache::new(SHARDS);
        let sig = [9u8; SIGNATURE_LEN];
        // Same shard: blocks congruent modulo SHARDS.
        let b0 = 0u64;
        let b1 = SHARDS as u64;
        let b2 = 2 * SHARDS as u64;
        let gen = live_entry(&c, &sig, &[b0, b1, b2]);
        let mut out = [0u8; 64];
        c.put_block(&sig, gen, b0, &[0xaa; 64]);
        c.put_block(&sig, gen, b1, &[0xbb; 64]);
        assert!(c.get_block_into(gen, b1, &mut out), "b1 most recently used");
        assert_eq!(out, [0xbb; 64]);
        c.put_block(&sig, gen, b2, &[0xcc; 64]);
        // Shard holds one entry: only the newest survives.
        assert!(c.get_block_into(gen, b2, &mut out));
        assert_eq!(out, [0xcc; 64]);
        assert!(!c.get_block_into(gen, b0, &mut out));
        let s = c.stats();
        assert!(s.evictions >= 2);
        assert_eq!(s.resident_blocks, 1);
        assert_eq!(s.resident_bytes, 64);
    }

    #[test]
    fn put_under_dead_generation_is_rejected() {
        // The race finding: a reader holds (gen, extents), the object is
        // invalidated mid-read, and the reader's late insert must land
        // nowhere (no un-zeroed plaintext parked under a dead key).
        let c = ReadCache::new(256);
        let sig = [10u8; SIGNATURE_LEN];
        let gen = live_entry(&c, &sig, &[5]);
        c.invalidate(&sig);
        c.put_block(&sig, gen, 5, b"plaintext of the dead incarnation");
        assert_eq!(c.stats().resident_blocks, 0, "dead insert stuck");
        assert!(c.stats().rejected_inserts >= 1);
    }

    #[test]
    fn purge_leaves_zero_resident() {
        let c = ReadCache::new(256);
        let sig = [5u8; SIGNATURE_LEN];
        let blocks: Vec<u64> = (0..32).collect();
        let gen = live_entry(&c, &sig, &blocks);
        for &b in &blocks {
            c.put_block(&sig, gen, b, &[1u8; 128]);
        }
        assert!(c.stats().resident_blocks > 0);
        c.purge();
        let s = c.stats();
        assert_eq!(s.resident_blocks, 0);
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.resident_objects, 0);
        assert_eq!(s.purges, 1);
        let mut out = [0u8; 128];
        assert!(!c.get_block_into(gen, 0, &mut out));
    }

    #[test]
    fn generation_tagging_isolates_incarnations() {
        let c = ReadCache::new(256);
        let sig = [6u8; SIGNATURE_LEN];
        // Old incarnation caches block 50, is invalidated (rewrite), and
        // block 50 is recycled into the new incarnation under a new gen.
        let old_gen = live_entry(&c, &sig, &[50]);
        c.put_block(&sig, old_gen, 50, b"old plaintext");
        c.invalidate(&sig);
        let new_gen = live_entry(&c, &sig, &[50]);
        // The new incarnation reads under its own gen: no alias either way.
        let mut out = [0u8; 13];
        assert!(!c.get_block_into(new_gen, 50, &mut out));
        assert!(!c.get_block_into(old_gen, 50, &mut out));
    }

    #[test]
    fn coded_invalidation_sweeps_logical_keys() {
        // A coded object's plaintext cache holds *decoded logical* blocks
        // under logical indices; invalidate must sweep those, not the
        // physical share block numbers it never caches under.
        let c = ReadCache::new(256);
        let sig = [13u8; SIGNATURE_LEN];
        let mut h = header(4 * 64);
        h.policy = crate::coding::Policy::Disperse { m: 2, n: 4 };
        h.data_block_count = 8;
        let ext = Arc::new(ExtentList {
            data_blocks: vec![500, 501, 502, 503, 600, 601, 602, 603],
            chain_blocks: vec![],
            share_csums: vec![0; 8],
            coding: Some((2, 4)),
        });
        assert_eq!(ext.block_cache_keys(), vec![0, 1, 2, 3]);
        let gen = c.store_extents(&sig, c.begin(), 1, h, ext);
        assert_ne!(gen, DEAD_GEN);
        for logical in 0..4u64 {
            c.put_block(&sig, gen, logical, &[logical as u8; 64]);
        }
        assert_eq!(c.stats().resident_blocks, 4);
        c.invalidate(&sig);
        assert_eq!(
            c.stats().resident_blocks,
            0,
            "decoded logical blocks survived invalidation"
        );
    }

    #[test]
    fn scoped_purge_sweeps_own_and_unscoped_entries_only() {
        let c = ReadCache::new(256);
        let (alice, bob) = (11u64, 22u64);
        let sig_a = [1u8; SIGNATURE_LEN];
        let sig_b = [2u8; SIGNATURE_LEN];
        let sig_u = [3u8; SIGNATURE_LEN];
        c.tag_scope(&sig_a, alice);
        c.tag_scope(&sig_b, bob);
        let gen_a = live_entry(&c, &sig_a, &[100]);
        let gen_b = live_entry(&c, &sig_b, &[101]);
        let gen_u = live_entry(&c, &sig_u, &[102]); // never tagged
        c.put_block(&sig_a, gen_a, 100, &[0xaa; 32]);
        c.put_block(&sig_b, gen_b, 101, &[0xbb; 32]);
        c.put_block(&sig_u, gen_u, 102, &[0xcc; 32]);

        c.purge_scope(alice);

        // Alice's entry and the unscoped one are gone; Bob's stays warm.
        assert!(c.lookup_header(&sig_a).is_none());
        assert!(c.lookup_header(&sig_u).is_none());
        assert!(c.lookup_header(&sig_b).is_some());
        let mut out = [0u8; 32];
        assert!(!c.get_block_into(gen_a, 100, &mut out));
        assert!(!c.get_block_into(gen_u, 102, &mut out));
        assert!(c.get_block_into(gen_b, 101, &mut out));
        assert_eq!(out, [0xbb; 32]);
        assert_eq!(c.stats().scoped_purges, 1);
        assert_eq!(c.stats().resident_blocks, 1);
    }

    #[test]
    fn scoped_purge_blocks_late_inserts_from_departed_walks() {
        // A walk in flight when the session signs off must not re-install.
        let c = ReadCache::new(64);
        let sig = [7u8; SIGNATURE_LEN];
        c.tag_scope(&sig, 42);
        let started = c.begin();
        c.purge_scope(42);
        c.store_header(&sig, started, 9, header(3));
        assert!(c.lookup_header(&sig).is_none(), "stale walk re-installed");
    }

    #[test]
    fn tag_scope_tags_resident_entries_in_place() {
        let c = ReadCache::new(64);
        let sig = [8u8; SIGNATURE_LEN];
        let gen = live_entry(&c, &sig, &[60]);
        c.put_block(&sig, gen, 60, &[1u8; 16]);
        // Entry cached before any tag existed; tagging it now scopes it.
        c.tag_scope(&sig, 5);
        c.purge_scope(99); // some other session leaves...
        assert!(c.lookup_header(&sig).is_some(), "tagged entry swept early");
        c.purge_scope(5); // ...then its owner does
        assert!(c.lookup_header(&sig).is_none());
        let mut out = [0u8; 16];
        assert!(!c.get_block_into(gen, 60, &mut out));
    }

    #[test]
    fn obs_histograms_record_cache_traffic() {
        let obs = stegfs_obs::Obs::new(true);
        let mut c = ReadCache::new(SHARDS);
        c.set_obs(obs.readcache.clone());
        let sig = [12u8; SIGNATURE_LEN];
        let b0 = 0u64;
        let b1 = SHARDS as u64; // same shard as b0: forces an eviction
        let gen = live_entry(&c, &sig, &[b0, b1]);
        let mut out = [0u8; 16];
        c.put_block(&sig, gen, b0, &[9u8; 16]);
        assert!(c.get_block_into(gen, b0, &mut out));
        assert!(!c.get_block_into(gen, b1, &mut out));
        c.put_block(&sig, gen, b1, &[8u8; 16]);
        c.purge();
        let s = obs.readcache.summary();
        assert_eq!(s.hit_ns.count, 1);
        assert_eq!(s.miss_ns.count, 1);
        assert_eq!(s.evict_ns.count, 1);
        assert_eq!(s.zeroize_ns.count, 1);
    }

    #[test]
    fn scratch_pool_reuses_and_zeroes() {
        let mut v = scratch::take(128);
        assert_eq!(v, vec![0u8; 128]);
        v.fill(0x5a);
        let cap = v.capacity();
        scratch::put(v);
        let v2 = scratch::take(64);
        assert_eq!(v2, vec![0u8; 64], "pooled buffer must come back zeroed");
        assert!(v2.capacity() >= 64);
        // Usually the very same allocation comes back.
        let _ = cap;
    }
}
