//! Connected-object sessions (`steg_connect` / `steg_disconnect`).
//!
//! The paper's kernel driver makes a connected hidden object appear in the
//! user's current working directory; data blocks stay encrypted on disk and
//! are decrypted on the fly when read.  In this user-space reproduction a
//! *session* is simply an in-memory table of connected objects: once
//! connected, an object can be read and written by name without re-supplying
//! the UAK, and disconnecting (or dropping the session) makes it invisible
//! again.  Nothing about a session ever touches the disk.
//!
//! Sessions also scope the read-path cache ([`crate::readcache`]): decrypted
//! headers, extent maps and plaintext blocks may live in RAM only while a
//! session that could read them is signed on.  [`crate::StegFs::disconnect_all`]
//! (the paper's logoff) and the VFS sign-off purge and zero all of it.

use crate::header::ObjectKind;
use crate::keys::{DirectoryEntry, FAK_LEN};
use std::collections::BTreeMap;

/// One connected hidden object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectedObject {
    /// User-visible name.
    pub name: String,
    /// Physical (locator) name.
    pub physical_name: String,
    /// File access key.
    pub fak: [u8; FAK_LEN],
    /// File or directory.
    pub kind: ObjectKind,
}

impl From<&DirectoryEntry> for ConnectedObject {
    fn from(e: &DirectoryEntry) -> Self {
        ConnectedObject {
            name: e.name.clone(),
            physical_name: e.physical_name.clone(),
            fak: e.fak,
            kind: e.kind,
        }
    }
}

/// The set of hidden objects currently connected to a user session.
#[derive(Debug, Default, Clone)]
pub struct Session {
    connected: BTreeMap<String, ConnectedObject>,
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Connect an object (idempotent: reconnecting replaces the entry).
    pub fn connect(&mut self, obj: ConnectedObject) {
        self.connected.insert(obj.name.clone(), obj);
    }

    /// Disconnect an object; returns true if it was connected.
    pub fn disconnect(&mut self, name: &str) -> bool {
        self.connected.remove(name).is_some()
    }

    /// Disconnect everything (the paper does this automatically at logoff).
    pub fn disconnect_all(&mut self) {
        self.connected.clear();
    }

    /// Look up a connected object.
    pub fn get(&self, name: &str) -> Option<&ConnectedObject> {
        self.connected.get(name)
    }

    /// Names of all connected objects, sorted.
    pub fn connected_names(&self) -> Vec<String> {
        self.connected.keys().cloned().collect()
    }

    /// Number of connected objects.
    pub fn len(&self) -> usize {
        self.connected.len()
    }

    /// True if nothing is connected.
    pub fn is_empty(&self) -> bool {
        self.connected.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(name: &str) -> ConnectedObject {
        ConnectedObject {
            name: name.to_string(),
            physical_name: format!("u:{name}"),
            fak: [9u8; FAK_LEN],
            kind: ObjectKind::File,
        }
    }

    #[test]
    fn connect_get_disconnect() {
        let mut s = Session::new();
        assert!(s.is_empty());
        s.connect(obj("a"));
        s.connect(obj("b"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("a").unwrap().physical_name, "u:a");
        assert!(s.get("c").is_none());
        assert!(s.disconnect("a"));
        assert!(!s.disconnect("a"));
        assert_eq!(s.connected_names(), vec!["b".to_string()]);
    }

    #[test]
    fn reconnect_replaces() {
        let mut s = Session::new();
        s.connect(obj("a"));
        let mut updated = obj("a");
        updated.fak = [1u8; FAK_LEN];
        s.connect(updated);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("a").unwrap().fak, [1u8; FAK_LEN]);
    }

    #[test]
    fn disconnect_all_clears() {
        let mut s = Session::new();
        s.connect(obj("a"));
        s.connect(obj("b"));
        s.disconnect_all();
        assert!(s.is_empty());
        assert!(s.connected_names().is_empty());
    }

    #[test]
    fn from_directory_entry() {
        let e = DirectoryEntry {
            name: "n".into(),
            physical_name: "p".into(),
            fak: [3u8; FAK_LEN],
            kind: ObjectKind::Directory,
        };
        let c = ConnectedObject::from(&e);
        assert_eq!(c.name, "n");
        assert_eq!(c.physical_name, "p");
        assert_eq!(c.fak, [3u8; FAK_LEN]);
        assert_eq!(c.kind, ObjectKind::Directory);
    }
}
