//! Hidden-file sharing (`steg_getentry` / `steg_addentry`, Figure 4).
//!
//! To share a hidden file, the owner produces a *share envelope* containing
//! the object's directory entry (name, physical name, FAK), encrypted so that
//! only the intended recipient can open it.  The envelope travels out of band
//! (the paper suggests e-mail); the recipient opens it with their private key
//! and folds the entry into their own UAK directory, after which the
//! ciphertext should be destroyed.
//!
//! Because an RSA block is far too small for a directory entry, the envelope
//! uses hybrid encryption: a fresh symmetric key is RSA-encrypted for the
//! recipient and the entry itself is AES-CBC encrypted under that key.  The
//! paper only requires "encrypted with the recipient's public key"; hybrid
//! encryption is the standard way to realise that.

use crate::error::{StegError, StegResult};
use crate::keys::DirectoryEntry;
use stegfs_crypto::modes::CbcCipher;
use stegfs_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use stegfs_crypto::sha256::sha256_concat;

/// An encrypted `(name, physical name, FAK)` entry ready to hand to a
/// recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareEnvelope {
    bytes: Vec<u8>,
}

impl ShareEnvelope {
    /// Seal `entry` for the holder of `recipient`'s private key.
    ///
    /// `entropy` seeds the ephemeral symmetric key and padding; callers pass
    /// unpredictable material (the [`crate::StegFs`] facade mixes the volume
    /// seed, the object name and a counter).
    pub fn seal(
        entry: &DirectoryEntry,
        recipient: &RsaPublicKey,
        entropy: &[u8],
    ) -> StegResult<Self> {
        // Ephemeral content-encryption key and IV.
        let cek = sha256_concat(&[b"stegfs-share-cek", entropy]);
        let iv_full = sha256_concat(&[b"stegfs-share-iv", entropy]);
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&iv_full[..16]);

        let wrapped_key = recipient
            .encrypt(&cek, &sha256_concat(&[b"stegfs-share-pad", entropy]))
            .map_err(|_| StegError::InvalidShareEnvelope)?;
        let body = CbcCipher::new(&cek).encrypt(&iv, &entry.serialize());

        let mut bytes = Vec::with_capacity(2 + wrapped_key.len() + 16 + body.len());
        bytes.extend_from_slice(&(wrapped_key.len() as u16).to_be_bytes());
        bytes.extend_from_slice(&wrapped_key);
        bytes.extend_from_slice(&iv);
        bytes.extend_from_slice(&body);
        Ok(ShareEnvelope { bytes })
    }

    /// Open the envelope with the recipient's private key.
    pub fn open(&self, recipient_private: &RsaPrivateKey) -> StegResult<DirectoryEntry> {
        let data = &self.bytes;
        if data.len() < 2 {
            return Err(StegError::InvalidShareEnvelope);
        }
        let key_len = u16::from_be_bytes(data[..2].try_into().unwrap()) as usize;
        if data.len() < 2 + key_len + 16 {
            return Err(StegError::InvalidShareEnvelope);
        }
        let wrapped_key = &data[2..2 + key_len];
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&data[2 + key_len..2 + key_len + 16]);
        let body = &data[2 + key_len + 16..];

        let cek = recipient_private
            .decrypt(wrapped_key)
            .map_err(|_| StegError::InvalidShareEnvelope)?;
        if cek.len() != 32 {
            return Err(StegError::InvalidShareEnvelope);
        }
        let plain = CbcCipher::new(&cek)
            .decrypt(&iv, body)
            .map_err(|_| StegError::InvalidShareEnvelope)?;
        let mut off = 0usize;
        let entry = DirectoryEntry::deserialize(&plain, &mut off)
            .map_err(|_| StegError::InvalidShareEnvelope)?;
        if off != plain.len() {
            return Err(StegError::InvalidShareEnvelope);
        }
        Ok(entry)
    }

    /// Raw bytes for transport (e.g. writing to an "entryfile" as in the
    /// paper's API).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuild an envelope from transported bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        ShareEnvelope { bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjectKind;
    use crate::keys::FAK_LEN;
    use stegfs_crypto::rsa::RsaKeyPair;

    fn entry() -> DirectoryEntry {
        DirectoryEntry {
            name: "budget-2026".into(),
            physical_name: "owner-9:budget-2026".into(),
            fak: [0x5a; FAK_LEN],
            kind: ObjectKind::File,
        }
    }

    fn recipient() -> RsaKeyPair {
        RsaKeyPair::generate(512, b"share-recipient")
    }

    #[test]
    fn seal_open_roundtrip() {
        let kp = recipient();
        let env = ShareEnvelope::seal(&entry(), &kp.public, b"entropy-1").unwrap();
        let opened = env.open(&kp.private).unwrap();
        assert_eq!(opened, entry());
    }

    #[test]
    fn envelope_bytes_roundtrip() {
        let kp = recipient();
        let env = ShareEnvelope::seal(&entry(), &kp.public, b"entropy-2").unwrap();
        let transported = ShareEnvelope::from_bytes(env.as_bytes().to_vec());
        assert_eq!(transported.open(&kp.private).unwrap(), entry());
    }

    #[test]
    fn wrong_private_key_rejected() {
        let kp = recipient();
        let other = RsaKeyPair::generate(512, b"someone else");
        let env = ShareEnvelope::seal(&entry(), &kp.public, b"entropy-3").unwrap();
        assert!(matches!(
            env.open(&other.private),
            Err(StegError::InvalidShareEnvelope)
        ));
    }

    #[test]
    fn tampered_envelope_rejected() {
        let kp = recipient();
        let env = ShareEnvelope::seal(&entry(), &kp.public, b"entropy-4").unwrap();
        let mut bytes = env.as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let tampered = ShareEnvelope::from_bytes(bytes);
        assert!(matches!(
            tampered.open(&kp.private),
            Err(StegError::InvalidShareEnvelope)
        ));
    }

    #[test]
    fn truncated_envelope_rejected() {
        let kp = recipient();
        let env = ShareEnvelope::seal(&entry(), &kp.public, b"entropy-5").unwrap();
        for cut in [0usize, 1, 10, env.as_bytes().len() / 2] {
            let partial = ShareEnvelope::from_bytes(env.as_bytes()[..cut].to_vec());
            assert!(partial.open(&kp.private).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn envelope_does_not_leak_plaintext() {
        let kp = recipient();
        let e = entry();
        let env = ShareEnvelope::seal(&e, &kp.public, b"entropy-6").unwrap();
        let raw = env.as_bytes();
        // Neither the object name nor the FAK bytes appear in the clear.
        assert!(!raw.windows(e.name.len()).any(|w| w == e.name.as_bytes()));
        assert!(!raw.windows(FAK_LEN).any(|w| w == e.fak));
    }

    #[test]
    fn different_entropy_different_ciphertexts() {
        let kp = recipient();
        let a = ShareEnvelope::seal(&entry(), &kp.public, b"entropy-a").unwrap();
        let b = ShareEnvelope::seal(&entry(), &kp.public, b"entropy-b").unwrap();
        assert_ne!(a.as_bytes(), b.as_bytes());
    }
}
