//! Error type for StegFS operations.
//!
//! A deliberate design point: looking up a hidden object with a wrong key and
//! looking up an object that never existed return the **same** error variant,
//! [`StegError::NotFound`].  Distinguishing the two would hand an adversary
//! exactly the oracle the system is built to deny.

use stegfs_blockdev::BlockError;
use stegfs_fs::FsError;

/// Result alias for StegFS operations.
pub type StegResult<T> = Result<T, StegError>;

/// Errors reported by [`crate::StegFs`].
#[derive(Debug)]
pub enum StegError {
    /// The hidden object was not found.  Returned both when no such object
    /// exists and when the supplied access key is wrong — the two cases are
    /// intentionally indistinguishable.
    NotFound(String),
    /// An object with this name already exists in the target UAK directory.
    AlreadyExists(String),
    /// The object is not connected to the current session.
    NotConnected(String),
    /// The volume has no free space for the requested operation.
    NoSpace,
    /// A parameter is outside its allowed range (see [`crate::StegParams`]).
    InvalidParameter(String),
    /// The object name is syntactically invalid.
    InvalidName(String),
    /// The sharing envelope could not be decrypted or parsed.
    InvalidShareEnvelope,
    /// A backup image failed authentication or parsing.
    InvalidBackup(String),
    /// The operation requires a regular hidden file but found a directory, or
    /// vice versa.
    WrongObjectKind {
        /// Name of the offending object.
        name: String,
        /// Kind that was expected.
        expected: crate::header::ObjectKind,
    },
    /// Error from the plain file-system layer.
    Fs(FsError),
}

impl std::fmt::Display for StegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StegError::NotFound(name) => {
                write!(f, "hidden object not found (or wrong access key): {name}")
            }
            StegError::AlreadyExists(name) => write!(f, "hidden object already exists: {name}"),
            StegError::NotConnected(name) => {
                write!(f, "hidden object is not connected to this session: {name}")
            }
            StegError::NoSpace => write!(f, "no space left on volume"),
            StegError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            StegError::InvalidName(name) => write!(f, "invalid object name: {name}"),
            StegError::InvalidShareEnvelope => write!(f, "invalid or corrupted share envelope"),
            StegError::InvalidBackup(msg) => write!(f, "invalid backup image: {msg}"),
            StegError::WrongObjectKind { name, expected } => {
                write!(f, "{name} is not a hidden {expected:?}")
            }
            StegError::Fs(e) => write!(f, "file system error: {e}"),
        }
    }
}

impl std::error::Error for StegError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StegError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for StegError {
    fn from(e: FsError) -> Self {
        match e {
            FsError::NoSpace => StegError::NoSpace,
            other => StegError::Fs(other),
        }
    }
}

impl From<BlockError> for StegError {
    fn from(e: BlockError) -> Self {
        StegError::Fs(FsError::Block(e))
    }
}

impl StegError {
    /// True if the error is the deniable "not found / wrong key" case.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StegError::NotFound(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjectKind;

    #[test]
    fn display_messages() {
        assert!(StegError::NotFound("x".into())
            .to_string()
            .contains("wrong access key"));
        assert!(StegError::AlreadyExists("x".into())
            .to_string()
            .contains("already exists"));
        assert!(StegError::NotConnected("x".into())
            .to_string()
            .contains("not connected"));
        assert!(StegError::NoSpace.to_string().contains("no space"));
        assert!(StegError::InvalidParameter("p".into())
            .to_string()
            .contains("invalid parameter"));
        assert!(StegError::InvalidName("n".into())
            .to_string()
            .contains("invalid object name"));
        assert!(StegError::InvalidShareEnvelope
            .to_string()
            .contains("share envelope"));
        assert!(StegError::InvalidBackup("b".into())
            .to_string()
            .contains("backup"));
        assert!(StegError::WrongObjectKind {
            name: "d".into(),
            expected: ObjectKind::File
        }
        .to_string()
        .contains("not a hidden"));
    }

    #[test]
    fn fs_no_space_maps_to_steg_no_space() {
        let e: StegError = FsError::NoSpace.into();
        assert!(matches!(e, StegError::NoSpace));
        let e: StegError = FsError::NotFound("/x".into()).into();
        assert!(matches!(e, StegError::Fs(_)));
    }

    #[test]
    fn not_found_helper() {
        assert!(StegError::NotFound("a".into()).is_not_found());
        assert!(!StegError::NoSpace.is_not_found());
    }
}
