//! The [`StegFs`] facade: the user-facing steganographic file system.
//!
//! `StegFs` combines the plain file system (central directory, bitmap), the
//! hidden-object engine, the UAK/FAK key hierarchy, sessions, sharing and
//! backup into the API of Section 4 of the paper.  Plain files behave exactly
//! as on the underlying [`PlainFs`]; hidden objects are reachable only with
//! the right keys.
//!
//! # Concurrency
//!
//! Every hot-path operation takes `&self`; the volume can sit behind a plain
//! `Arc` and serve any number of threads.  Internally the state is split into
//! independently locked shards:
//!
//! * the [`PlainFs`] underneath brings its own sharding (allocator lock,
//!   namespace lock, per-inode stripes, device lock);
//! * **UAK shards** serialise read-modify-write cycles on one User Access
//!   Key's hidden directory, so two users (or two threads of one user)
//!   cannot lose each other's `steg_create` / `delete` / `rename`.  A
//!   create builds the new object *before* taking the shard and holds it
//!   only for the directory rewrite (the publish window), unwinding the
//!   unpublished object if it lost the name race;
//! * **object shards** serialise operations on one hidden object (keyed by
//!   its physical name), so a rewrite that relocates blocks through the free
//!   pool cannot interleave with another rewrite of the same object;
//! * the session table, the FAK generator and the RNG have their own tiny
//!   locks and are never held across I/O.
//!
//! Lock order (outer to inner): `UAK shard < object shard <` the `PlainFs`
//! locks (`namespace < inode-stripe < inode-table-stripe < allocator-meta <
//! bitmap-segment < journal < device` — see `stegfs-fs` for the sharded
//! allocator's segment discipline).  No operation acquires two UAK shards at
//! once.  The hidden-directory child operations
//! ([`StegFs::remove_dir_child`]) are the one case that needs *two object
//! shards* (the parent's listing and the child object); they acquire the
//! pair in ascending shard-index order, so no cycle can form.
//!
//! The handle-based operations ([`StegFs::read_range_at`],
//! [`StegFs::write_range_at`], [`StegFs::write_at_handle`],
//! [`StegFs::truncate_handle`]) deliberately take no object shard: a
//! [`HiddenHandle`] caches the object's block map, so the *caller* owns
//! serialisation per handle target.  The `stegfs-vfs` front-end does exactly
//! that with one lock per open object; single-threaded users need nothing.

use crate::backup::{BackupImage, PlainEntry};
use crate::coding::Policy;
use crate::crypt::ObjectKeys;
use crate::error::{StegError, StegResult};
use crate::header::ObjectKind;
use crate::hidden::{self, HiddenObject};
use crate::keys::{DirectoryEntry, UakDirectory, FAK_LEN, UAK_DIRECTORY_NAME};
use crate::params::StegParams;
use crate::readcache::{CacheStats, ReadCache};
use crate::session::{ConnectedObject, Session};
use crate::sharing::ShareEnvelope;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::prng::DeterministicRng;
use stegfs_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use stegfs_crypto::sha256::sha256_concat;
use stegfs_fs::{AllocPolicy, FileKind, FormatOptions, PlainFs};
use stegfs_obs::{span, Obs, TimedMutex, TimedMutexGuard};

/// Path of the plain configuration file holding the (non-secret) volume
/// statistics: abandoned-block count, dummy-file parameters and the dummy
/// seed.  Dummy files are maintained by the file system itself, so — as the
/// paper notes — they are visible to an administrator-level attacker; the
/// untraceable abandoned blocks exist precisely to cover that case.
pub const CONFIG_PATH: &str = "/.stegfs";

const CONFIG_MAGIC: &[u8; 8] = b"STEGCFG1";

/// Number of UAK-directory shard locks.
const UAK_SHARDS: usize = 16;

/// Number of hidden-object shard locks.
const OBJECT_SHARDS: usize = 64;

/// Aggregate block accounting of a mounted volume, used by the
/// space-utilization experiments (§5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceReport {
    /// Block size in bytes.
    pub block_size: usize,
    /// Total number of blocks in the volume.
    pub total_blocks: u64,
    /// Blocks holding the superblock, bitmap and inode table.
    pub metadata_blocks: u64,
    /// Blocks referenced by the central directory (plain files, directories
    /// and their indirect blocks).
    pub plain_blocks: u64,
    /// Blocks abandoned at format time (count recorded then; the blocks
    /// themselves are untraceable by design).
    pub abandoned_blocks: u64,
    /// Allocated blocks not accounted for by any of the above: hidden
    /// objects, dummy files and their internal free pools.
    pub hidden_blocks: u64,
    /// Free blocks.
    pub free_blocks: u64,
}

impl SpaceReport {
    /// Fraction of the volume still available for new data.
    pub fn free_fraction(&self) -> f64 {
        self.free_blocks as f64 / self.total_blocks as f64
    }
}

struct VolumeConfig {
    abandoned_count: u64,
    dummy_seed: u64,
    dummy_count: u32,
    dummy_size: u64,
}

impl VolumeConfig {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(36);
        out.extend_from_slice(CONFIG_MAGIC);
        out.extend_from_slice(&self.abandoned_count.to_be_bytes());
        out.extend_from_slice(&self.dummy_seed.to_be_bytes());
        out.extend_from_slice(&self.dummy_count.to_be_bytes());
        out.extend_from_slice(&self.dummy_size.to_be_bytes());
        out
    }

    fn deserialize(data: &[u8]) -> Option<Self> {
        if data.len() < 36 || &data[..8] != CONFIG_MAGIC {
            return None;
        }
        Some(VolumeConfig {
            abandoned_count: u64::from_be_bytes(data[8..16].try_into().ok()?),
            dummy_seed: u64::from_be_bytes(data[16..24].try_into().ok()?),
            dummy_count: u32::from_be_bytes(data[24..28].try_into().ok()?),
            dummy_size: u64::from_be_bytes(data[28..36].try_into().ok()?),
        })
    }
}

/// An open hidden file: the result of [`StegFs::open_hidden`], giving
/// repeated positional access without re-running the locator.
pub struct HiddenHandle {
    /// User-visible object name the handle was opened under.
    pub name: String,
    /// Locator-facing physical name (owner-qualified), kept so a degraded
    /// read through the handle can queue a repair ticket.
    physical_name: String,
    fak: [u8; FAK_LEN],
    keys: ObjectKeys,
    object: HiddenObject,
}

impl HiddenHandle {
    /// Current size in bytes of the object behind this handle.
    pub fn size(&self) -> u64 {
        self.object.size()
    }

    /// File or directory.
    pub fn kind(&self) -> ObjectKind {
        self.object.kind()
    }
}

/// One queued self-healing ticket: enough to re-derive the object's keys
/// and re-open it *fresh* at repair time — repair always converges the
/// object's **current** incarnation, so a ticket queued against a since-
/// rewritten object can never resurrect superseded shares.
struct RepairTicket {
    physical_name: String,
    fak: [u8; FAK_LEN],
}

/// RAM-only queue of repair tickets, deduplicated by object signature (a
/// storm of degraded reads against one object queues one ticket).
#[derive(Default)]
struct RepairQueue {
    tickets: std::collections::VecDeque<RepairTicket>,
    enqueued: std::collections::HashSet<[u8; crate::crypt::SIGNATURE_LEN]>,
}

/// What one [`StegFs::process_repairs`] drain accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairDrain {
    /// Tickets taken off the queue this call.
    pub processed: usize,
    /// Tickets that converged: shares/metadata rewritten, or the object was
    /// found intact / already rewritten / since deleted.
    pub completed: usize,
    /// Tickets whose object is damaged beyond tolerance or whose rewrite
    /// failed with an I/O error.
    pub failed: usize,
}

/// What one [`StegFs::rebuild_dir_from_shadow`] rebuild accomplished.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirRebuild {
    /// Children from the shadow listing whose objects still probe and were
    /// re-linked into the rebuilt directory.
    pub children_relinked: usize,
    /// Names of children whose own objects no longer open; they are dropped
    /// from the rebuilt listing rather than left as dangling entries.
    pub children_dropped: Vec<String>,
}

fn shard_index(key: &str, len: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % len
}

/// A mounted StegFS volume.
pub struct StegFs<D: BlockDevice> {
    fs: PlainFs<D>,
    params: StegParams,
    session: Mutex<Session>,
    rng: Mutex<DeterministicRng>,
    fak_counter: AtomicU64,
    config: VolumeConfig,
    uak_locks: Vec<TimedMutex<()>>,
    object_locks: Vec<TimedMutex<()>>,
    /// RAM-only read-path cache (headers, extent maps, decrypted blocks).
    /// Every mutating method invalidates the object it touched; sign-off
    /// purges the departing session's scope, unmount purges everything.
    /// See [`crate::readcache`] for the contract.
    read_cache: ReadCache,
    /// Volume-wide observability registry (RAM only, deniability-safe —
    /// see `stegfs-obs`).  Shared with every layer underneath and handed
    /// to the VFS/engine above.
    obs: Arc<Obs>,
    /// RAM-only self-healing queue (see [`Self::process_repairs`]): degraded
    /// reads enqueue, an explicit drain repairs.  RAM-only for the same
    /// deniability reason as the read cache — a persisted repair backlog
    /// would betray which blocks hold live hidden data.
    repair_queue: Mutex<RepairQueue>,
}

impl<D: BlockDevice> StegFs<D> {
    // ------------------------------------------------------------------
    // Format / mount / unmount
    // ------------------------------------------------------------------

    fn assemble(mut fs: PlainFs<D>, params: StegParams, config: VolumeConfig) -> Self {
        let obs = Obs::with_trace_capacity(params.obs_enabled, params.trace_capacity);
        fs.attach_obs(&obs);
        let mut read_cache = ReadCache::new(params.readpath_cache_blocks);
        read_cache.set_obs(obs.readcache.clone());
        StegFs {
            fs,
            rng: Mutex::new(DeterministicRng::new(&params.volume_seed.to_be_bytes())),
            session: Mutex::new(Session::new()),
            fak_counter: AtomicU64::new(0),
            config,
            read_cache,
            params,
            uak_locks: (0..UAK_SHARDS)
                .map(|_| TimedMutex::with_stats((), obs.uak_shards.clone()))
                .collect(),
            object_locks: (0..OBJECT_SHARDS)
                .map(|_| TimedMutex::with_stats((), obs.object_shards.clone()))
                .collect(),
            obs,
            repair_queue: Mutex::new(RepairQueue::default()),
        }
    }

    /// Format `dev` as a StegFS volume: random fill (if enabled), abandoned
    /// blocks, dummy hidden files and the configuration file.  With
    /// [`StegParams::journal_blocks`] set, the volume reserves a write-ahead
    /// journal and every subsequent multi-block update is crash-atomic.
    pub fn format(dev: D, params: StegParams) -> StegResult<Self> {
        params.validate()?;
        if params.journal_blocks > 0 {
            // The journal ring must hold the largest single update this
            // configuration will produce — a dummy-file rewrite — plus its
            // intent/commit overhead, using the journal crate's own slot
            // arithmetic, with headroom for the anchors and a few
            // concurrent committers.
            let bs = dev.block_size();
            let dummy_blocks = params.dummy_file_size.div_ceil(bs.max(1) as u64) as usize;
            let chain_cap = crate::header::InodeChainBlock::capacity(bs).max(1);
            // Targets: data blocks + chain blocks + header + a margin of
            // bitmap blocks.
            let targets = dummy_blocks + dummy_blocks.div_ceil(chain_cap) + 1 + 4;
            let needed =
                stegfs_journal::record::slots_for(targets, bs) + stegfs_journal::ANCHOR_SLOTS + 8;
            if params.journal_blocks < needed {
                return Err(StegError::InvalidParameter(format!(
                    "journal of {} blocks cannot hold a {}-byte dummy-file rewrite \
                     (needs at least {} blocks at block size {})",
                    params.journal_blocks, params.dummy_file_size, needed, bs
                )));
            }
        }
        let fs = PlainFs::format(
            dev,
            FormatOptions {
                fill_random: params.random_fill,
                seed: params.volume_seed,
                policy: AllocPolicy::FirstFit,
                inode_count: None,
                journal_blocks: params.journal_blocks,
            },
        )?;

        let config = VolumeConfig {
            abandoned_count: 0,
            dummy_seed: params.volume_seed ^ 0x0064_756d_6d79_u64,
            dummy_count: params.dummy_file_count as u32,
            dummy_size: params.dummy_file_size,
        };
        let mut stegfs = Self::assemble(fs, params, config);

        stegfs.config.abandoned_count = stegfs.create_abandoned_blocks()?;
        stegfs.create_dummy_files()?;
        stegfs.store_config()?;
        stegfs.fs.sync()?;
        Ok(stegfs)
    }

    /// Mount an existing StegFS volume.  `params.volume_seed` only influences
    /// the generation of *new* FAKs during this mount; existing objects are
    /// found through their keys alone.
    pub fn mount(dev: D, params: StegParams) -> StegResult<Self> {
        params.validate()?;
        let fs = PlainFs::mount(dev, AllocPolicy::FirstFit, params.volume_seed)?;
        let config = match fs.read_file(CONFIG_PATH) {
            Ok(data) => VolumeConfig::deserialize(&data).ok_or_else(|| {
                StegError::Fs(stegfs_fs::FsError::Corrupt(
                    "unreadable StegFS configuration file".into(),
                ))
            })?,
            Err(e) if e.is_not_found() => VolumeConfig {
                abandoned_count: 0,
                dummy_seed: 0,
                dummy_count: 0,
                dummy_size: 0,
            },
            Err(e) => return Err(e.into()),
        };
        Ok(Self::assemble(fs, params, config))
    }

    /// Flush all state and return the underlying device.
    pub fn unmount(self) -> StegResult<D> {
        self.session.lock().disconnect_all();
        self.read_cache.purge();
        Ok(self.fs.unmount()?)
    }

    /// Counters of the RAM-only read-path cache, surfaced next to the
    /// device-level `IoStats` by the benches.
    pub fn cache_stats(&self) -> CacheStats {
        self.read_cache.stats()
    }

    /// Drop and zero every cached decrypted byte (headers, extent maps and
    /// plaintext blocks), volume-wide.  Part of [`Self::disconnect_all`] and
    /// [`Self::unmount`]; per-session sign-off uses the narrower
    /// [`Self::purge_session_caches`].
    pub fn purge_read_caches(&self) {
        self.read_cache.purge();
    }

    /// Drop and zero the cached decrypted state a departing session could
    /// reach through `uak`: every cache entry resolved through this key —
    /// plus any entry whose owning session was never established — is
    /// swept, while entries other live sessions loaded through their own
    /// keys stay warm.  The VFS calls this on every sign-off.
    pub fn purge_session_caches(&self, uak: &str) {
        self.read_cache.purge_scope(Self::session_scope(uak));
    }

    /// The volume's observability registry: RAM-only histograms, counters
    /// and the bounded trace ring.  See `stegfs-obs` for the deniability
    /// contract (static shapes, no key-derived values, nothing persisted).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Flush metadata to the device without unmounting.
    pub fn sync(&self) -> StegResult<()> {
        Ok(self.fs.sync()?)
    }

    /// Durability barrier for `fsync`-grade callers: on a journaled volume
    /// this flushes only the staged journal slots needed to cover every
    /// commit so far (no checkpoint, no reclaim), so one busy object's
    /// `fsync` does not pay for checkpointing the whole ring.  On an
    /// unjournaled volume it degrades to a full [`Self::sync`].
    pub fn fsync_barrier(&self) -> StegResult<()> {
        Ok(self.fs.flush_barrier()?)
    }

    /// Start the background checkpoint daemon: on a journaled volume, a
    /// thread that advances the journal tail and checksummed anchors off
    /// the commit path (see `PlainFs::start_checkpoint_daemon`).  The
    /// front-ends call this at mount time when
    /// [`StegParams::checkpoint_daemon`] is set; [`Self::unmount`] drains
    /// and stops it.  No-op without a journal or when already running.
    pub fn start_checkpoint_daemon(&mut self)
    where
        D: Send + Sync + 'static,
    {
        self.fs.start_checkpoint_daemon();
    }

    /// True when the background checkpoint daemon is running.
    pub fn checkpoint_daemon_running(&self) -> bool {
        self.fs.checkpoint_daemon_running()
    }

    /// Stop the checkpoint daemon; with `drain` it checkpoints once more
    /// before exiting.  `drain = false` models a killed process (crash
    /// tests).
    pub fn stop_checkpoint_daemon(&self, drain: bool) {
        self.fs.stop_checkpoint_daemon(drain);
    }

    /// The volume parameters.
    pub fn params(&self) -> &StegParams {
        &self.params
    }

    /// Direct access to the plain file-system layer (used by the experiment
    /// harness, the VFS front-end and tests).  The plain layer's own API is
    /// fully shared-reference, so no `&mut` variant is needed any more.
    pub fn plain_fs(&self) -> &PlainFs<D> {
        &self.fs
    }

    /// Fork an independent byte generator off the volume RNG.  The fork
    /// happens under the RNG lock; the returned generator is then used
    /// without any lock, so long-running writes do not serialise on shared
    /// randomness.
    fn fork_rng(&self) -> DeterministicRng {
        let mut rng = self.rng.lock();
        DeterministicRng::new(&rng.bytes(32))
    }

    fn uak_guard(&self, uak: &str) -> TimedMutexGuard<'_, ()> {
        // The span covers only the acquisition: `uak_shard` attribution is
        // time *blocked* on the shard, not time holding it (the held work
        // shows up as its own phases).
        let _s = span::span(span::Phase::UakShard);
        self.uak_locks[shard_index(uak, self.uak_locks.len())].lock()
    }

    fn object_guard(&self, physical: &str) -> TimedMutexGuard<'_, ()> {
        self.object_guard_at(shard_index(physical, self.object_locks.len()))
    }

    fn object_guard_at(&self, idx: usize) -> TimedMutexGuard<'_, ()> {
        let _s = span::span(span::Phase::ObjectShard);
        self.object_locks[idx].lock()
    }

    /// Opaque cache-scope id of a session: a keyed digest of the UAK, so the
    /// scope table never holds key material, ORed with 1 so 0 stays the
    /// "unscoped" sentinel.
    fn session_scope(uak: &str) -> u64 {
        let digest = sha256_concat(&[b"stegfs-cache-scope", uak.as_bytes()]);
        u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")) | 1
    }

    fn store_config(&self) -> StegResult<()> {
        let bytes = self.config.serialize();
        self.fs.write_file(CONFIG_PATH, &bytes)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Format-time camouflage: abandoned blocks and dummy files
    // ------------------------------------------------------------------

    fn create_abandoned_blocks(&self) -> StegResult<u64> {
        let data_blocks = self.fs.data_blocks();
        let target = (data_blocks as f64 * self.params.abandoned_pct / 100.0).round() as u64;
        let mut created = 0;
        while created < target {
            match self.fs.allocate_random_block() {
                Ok(_) => created += 1,
                Err(stegfs_fs::FsError::NoSpace) => break,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(created)
    }

    fn dummy_identity(&self, index: u32) -> (String, [u8; FAK_LEN]) {
        let name = format!("stegfs:dummy-{index}");
        let fak = sha256_concat(&[
            b"stegfs-dummy-fak",
            &self.config.dummy_seed.to_be_bytes(),
            &index.to_be_bytes(),
        ]);
        (name, fak)
    }

    fn create_dummy_files(&self) -> StegResult<()> {
        for i in 0..self.config.dummy_count {
            let (name, fak) = self.dummy_identity(i);
            let keys = ObjectKeys::derive(&name, &fak);
            let mut obj = hidden::create(&self.fs, &name, &keys, ObjectKind::File, &self.params)?;
            let mut rng = self.fork_rng();
            let content = rng.bytes(self.config.dummy_size.min(usize::MAX as u64) as usize);
            hidden::write(&self.fs, &keys, &mut obj, &content, &self.params, &mut rng)?;
        }
        Ok(())
    }

    /// Rewrite every dummy hidden file with fresh content.  The paper's
    /// driver does this periodically so that bitmap changes between snapshots
    /// cannot be attributed to real hidden files.
    pub fn touch_dummy_files(&self) -> StegResult<usize> {
        let mut touched = 0;
        for i in 0..self.config.dummy_count {
            let (name, fak) = self.dummy_identity(i);
            let keys = ObjectKeys::derive(&name, &fak);
            let _obj_lock = self.object_guard(&name);
            let mut obj = match hidden::open(&self.fs, &name, &keys, &self.params) {
                Ok(o) => o,
                Err(StegError::NotFound(_)) => continue,
                Err(e) => return Err(e),
            };
            let mut rng = self.fork_rng();
            let content = rng.bytes(self.config.dummy_size as usize);
            hidden::write_cached(
                &self.fs,
                &keys,
                &mut obj,
                &content,
                &self.params,
                &mut rng,
                &self.read_cache,
            )?;
            touched += 1;
        }
        Ok(touched)
    }

    // ------------------------------------------------------------------
    // Plain-file operations (pass-through to the central directory)
    // ------------------------------------------------------------------

    /// Write a plain (visible) file.
    pub fn write_plain(&self, path: &str, data: &[u8]) -> StegResult<()> {
        Ok(self.fs.write_file(path, data)?)
    }

    /// Read a plain file.
    pub fn read_plain(&self, path: &str) -> StegResult<Vec<u8>> {
        Ok(self.fs.read_file(path)?)
    }

    /// Create a plain directory.
    pub fn create_plain_dir(&self, path: &str) -> StegResult<()> {
        self.fs.create_dir(path)?;
        Ok(())
    }

    /// Delete a plain file or empty directory.
    pub fn delete_plain(&self, path: &str) -> StegResult<()> {
        Ok(self.fs.delete(path)?)
    }

    /// List a plain directory (hidden objects never appear here).
    pub fn list_plain_dir(&self, path: &str) -> StegResult<Vec<String>> {
        Ok(self
            .fs
            .list_dir(path)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    /// True if a plain object exists at `path`.
    pub fn plain_exists(&self, path: &str) -> StegResult<bool> {
        Ok(self.fs.exists(path)?)
    }

    // ------------------------------------------------------------------
    // UAK directories
    // ------------------------------------------------------------------

    fn uak_keys(uak: &str) -> ObjectKeys {
        ObjectKeys::derive(UAK_DIRECTORY_NAME, uak.as_bytes())
    }

    /// Load the UAK directory.  Caller holds the UAK shard lock.
    ///
    /// UAK directories are themselves hidden objects and the hottest read
    /// path of all (every name lookup walks one), so they go through the
    /// read cache like any other object; [`Self::save_uak_directory`]
    /// invalidates.
    fn load_uak_directory(&self, uak: &str) -> StegResult<(UakDirectory, Option<HiddenObject>)> {
        let keys = Self::uak_keys(uak);
        // Tag before the walk so entries installed by it carry the session
        // scope (sign-off sweeps exactly this session's entries).
        self.read_cache
            .tag_scope(keys.signature(), Self::session_scope(uak));
        match hidden::open_cached(
            &self.fs,
            UAK_DIRECTORY_NAME,
            &keys,
            &self.params,
            &self.read_cache,
        ) {
            Ok(obj) => {
                let raw = hidden::read_cached(&self.fs, &keys, &obj, &self.read_cache)?;
                let dir = if raw.is_empty() {
                    UakDirectory::new()
                } else {
                    UakDirectory::deserialize(&raw)?
                };
                Ok((dir, Some(obj)))
            }
            Err(StegError::NotFound(_)) => Ok((UakDirectory::new(), None)),
            Err(e) => Err(e),
        }
    }

    /// Persist the UAK directory.  Caller holds the UAK shard lock.
    fn save_uak_directory(
        &self,
        uak: &str,
        dir: &UakDirectory,
        existing: Option<HiddenObject>,
    ) -> StegResult<()> {
        let keys = Self::uak_keys(uak);
        let mut obj = match existing {
            Some(obj) => obj,
            None => hidden::create(
                &self.fs,
                UAK_DIRECTORY_NAME,
                &keys,
                ObjectKind::Directory,
                &self.params,
            )?,
        };
        let mut rng = self.fork_rng();
        // The cache-aware write serves the rewrite's chain walk from the
        // cached extent map (the directory was just read through it, so the
        // map is warm), invalidates before touching anything and republishes
        // the new map on success — a failed attempt leaves a safe miss.
        hidden::write_cached(
            &self.fs,
            &keys,
            &mut obj,
            &dir.serialize(),
            &self.params,
            &mut rng,
            &self.read_cache,
        )
    }

    /// The names (and kinds) of all hidden objects registered under `uak`.
    pub fn list_hidden(&self, uak: &str) -> StegResult<Vec<(String, ObjectKind)>> {
        let _uak_lock = self.uak_guard(uak);
        let (dir, _) = self.load_uak_directory(uak)?;
        Ok(dir
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.kind))
            .collect())
    }

    // ------------------------------------------------------------------
    // Hidden-object API (paper §4)
    // ------------------------------------------------------------------

    fn owner_tag(uak: &str) -> String {
        let digest = sha256_concat(&[b"stegfs-owner-tag", uak.as_bytes()]);
        digest[..8].iter().map(|b| format!("{b:02x}")).collect()
    }

    fn generate_fak(&self, objname: &str) -> [u8; FAK_LEN] {
        let counter = self.fak_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let noise = self.rng.lock().bytes(32);
        sha256_concat(&[
            b"stegfs-fak",
            &noise,
            &counter.to_be_bytes(),
            objname.as_bytes(),
        ])
    }

    fn entry_for(&self, objname: &str, uak: &str) -> StegResult<DirectoryEntry> {
        let _uak_lock = self.uak_guard(uak);
        let (dir, _) = self.load_uak_directory(uak)?;
        let entry = dir
            .find(objname)
            .cloned()
            .ok_or_else(|| StegError::NotFound(objname.to_string()))?;
        // The object is about to be opened through this session's keys:
        // scope whatever the read paths cache for it to this session.
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        self.read_cache
            .tag_scope(keys.signature(), Self::session_scope(uak));
        Ok(entry)
    }

    /// `steg_create`: create an empty hidden file or directory named
    /// `objname`, registered under `uak`.  The object gets the volume's
    /// default durability policy
    /// ([`StegParams::hidden_policy`](crate::StegParams)).
    pub fn steg_create(&self, objname: &str, uak: &str, kind: ObjectKind) -> StegResult<()> {
        self.steg_create_with_policy(objname, uak, kind, self.params.hidden_policy)
    }

    /// [`Self::steg_create`] with an explicit per-object durability policy.
    /// Shares are ordinary encrypted hidden blocks placed by independent
    /// locator probes, so a coded object's creation is indistinguishable
    /// from a plain one's on the raw device.
    pub fn steg_create_with_policy(
        &self,
        objname: &str,
        uak: &str,
        kind: ObjectKind,
        policy: Policy,
    ) -> StegResult<()> {
        if objname.is_empty() || objname.contains('\0') || objname.contains('\u{1}') {
            return Err(StegError::InvalidName(objname.to_string()));
        }
        // Build the object *outside* the UAK shard: allocating and writing
        // its blocks is the expensive part of a create, and it touches only
        // freshly generated keys no other thread can observe.  The shard is
        // held just for the directory read-modify-write — the publish
        // window — so concurrent creates under one UAK serialise on a
        // directory rewrite, not on whole-object I/O.
        let fak = self.generate_fak(objname);
        let physical_name = format!("{}:{}", Self::owner_tag(uak), objname);
        let keys = ObjectKeys::derive(&physical_name, &fak);
        let mut obj = hidden::create_with_policy(
            &self.fs,
            &physical_name,
            &keys,
            kind,
            policy,
            &self.params,
        )?;
        if kind == ObjectKind::Directory {
            // A hidden directory starts out as an empty child listing.
            let mut rng = self.fork_rng();
            hidden::write(
                &self.fs,
                &keys,
                &mut obj,
                &UakDirectory::new().serialize(),
                &self.params,
                &mut rng,
            )?;
        }
        let _uak_lock = self.uak_guard(uak);
        let (mut dir, existing) = self.load_uak_directory(uak)?;
        if dir.find(objname).is_some() {
            // Lost the publish race (or the name predates us): unwind the
            // never-published object.  Its keys never left this call, so
            // deleting it returns the blocks with no visible trace.
            let mut rng = self.fork_rng();
            let _ = hidden::delete(&self.fs, &keys, &obj, &mut rng);
            return Err(StegError::AlreadyExists(objname.to_string()));
        }
        dir.insert(DirectoryEntry {
            name: objname.to_string(),
            physical_name,
            fak,
            kind,
        })?;
        self.save_uak_directory(uak, &dir, existing)
    }

    /// Verify and, where possible, repair one hidden object in place from
    /// its surviving shares (the scavenger's per-object step; see
    /// [`hidden::repair`] for the byte-identical-rewrite argument).  Plain
    /// objects report [`RepairOutcome::Intact`](hidden::RepairOutcome)
    /// untouched; an unrecoverable object writes nothing.
    pub fn scavenge_entry(&self, entry: &DirectoryEntry) -> StegResult<hidden::RepairOutcome> {
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let _obj_lock = self.object_guard(&entry.physical_name);
        let obj = hidden::open(&self.fs, &entry.physical_name, &keys, &self.params)?;
        let outcome = hidden::repair(&self.fs, &keys, &obj)?;
        if matches!(outcome, hidden::RepairOutcome::Repaired { .. }) {
            // Any cached plaintext decoded from the damaged shares is stale.
            self.read_cache.invalidate(keys.signature());
        }
        Ok(outcome)
    }

    /// Queue a self-healing ticket for the object when `health` reports the
    /// preceding read was served degraded (fallback shares or metadata
    /// replicas).  Deduplicated per object; cheap no-op on healthy reads.
    fn note_degraded(&self, physical_name: &str, fak: &[u8; FAK_LEN], health: &hidden::ReadHealth) {
        if !health.is_degraded() {
            return;
        }
        let keys = ObjectKeys::derive(physical_name, fak);
        let mut queue = self.repair_queue.lock();
        if queue.enqueued.insert(*keys.signature()) {
            queue.tickets.push_back(RepairTicket {
                physical_name: physical_name.to_string(),
                fak: *fak,
            });
            self.obs.repair.queued.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of repair tickets waiting to be drained.
    pub fn pending_repairs(&self) -> usize {
        self.repair_queue.lock().tickets.len()
    }

    /// Drain up to `limit` queued read-repair tickets: each object is
    /// re-opened **fresh** and run through [`hidden::repair`], rewriting
    /// damaged shares and metadata replicas byte-identically in place, so
    /// the volume converges back to full redundancy under live traffic.
    ///
    /// Re-opening at drain time (rather than repairing the incarnation the
    /// degraded read saw) is what makes the queue safe against concurrent
    /// writers: a ticket queued before a full rewrite finds the *new*
    /// incarnation intact and never resurrects superseded shares.  An object
    /// deleted since its ticket was queued counts as completed.
    pub fn process_repairs(&self, limit: usize) -> RepairDrain {
        let mut drain = RepairDrain::default();
        for _ in 0..limit {
            let Some(ticket) = ({
                let mut queue = self.repair_queue.lock();
                queue.tickets.pop_front().inspect(|t| {
                    let keys = ObjectKeys::derive(&t.physical_name, &t.fak);
                    queue.enqueued.remove(keys.signature());
                })
            }) else {
                break;
            };
            drain.processed += 1;
            let _span = span::span(span::Phase::Repair);
            let keys = ObjectKeys::derive(&ticket.physical_name, &ticket.fak);
            let _obj_lock = self.object_guard(&ticket.physical_name);
            let outcome = hidden::open(&self.fs, &ticket.physical_name, &keys, &self.params)
                .and_then(|obj| hidden::repair(&self.fs, &keys, &obj));
            match outcome {
                Ok(hidden::RepairOutcome::Repaired { .. }) => {
                    // Cached plaintext may have been decoded from the damaged
                    // shares; drop it with the rewrite.
                    self.read_cache.invalidate(keys.signature());
                    drain.completed += 1;
                    self.obs.repair.completed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(hidden::RepairOutcome::Intact) => {
                    drain.completed += 1;
                    self.obs.repair.completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.is_not_found() => {
                    drain.completed += 1;
                    self.obs.repair.completed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(hidden::RepairOutcome::Lost { .. }) | Err(_) => {
                    drain.failed += 1;
                    self.obs.repair.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drain
    }

    /// The data blocks of `objname` chunked per coding group (`n` share
    /// blocks per group; plain objects report singleton groups).  The
    /// corruption experiments use this map to destroy a chosen number of
    /// shares per group.
    pub fn hidden_share_extents(&self, objname: &str, uak: &str) -> StegResult<Vec<Vec<u64>>> {
        let entry = self.entry_for(objname, uak)?;
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let _obj_lock = self.object_guard(&entry.physical_name);
        let obj = hidden::open(&self.fs, &entry.physical_name, &keys, &self.params)?;
        hidden::share_extents(&self.fs, &keys, &obj)
    }

    /// Write the full contents of the hidden file `objname` (registered under
    /// `uak`).
    pub fn write_hidden_with_key(&self, objname: &str, uak: &str, data: &[u8]) -> StegResult<()> {
        let entry = self.entry_for(objname, uak)?;
        self.write_hidden_entry(&entry, data)
    }

    fn write_hidden_entry(&self, entry: &DirectoryEntry, data: &[u8]) -> StegResult<()> {
        if entry.kind != ObjectKind::File {
            return Err(StegError::WrongObjectKind {
                name: entry.name.clone(),
                expected: ObjectKind::File,
            });
        }
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let _obj_lock = self.object_guard(&entry.physical_name);
        let mut obj = hidden::open_cached(
            &self.fs,
            &entry.physical_name,
            &keys,
            &self.params,
            &self.read_cache,
        )?;
        let mut rng = self.fork_rng();
        hidden::write_cached(
            &self.fs,
            &keys,
            &mut obj,
            data,
            &self.params,
            &mut rng,
            &self.read_cache,
        )
    }

    /// Read the full contents of the hidden file `objname` (registered under
    /// `uak`).
    pub fn read_hidden_with_key(&self, objname: &str, uak: &str) -> StegResult<Vec<u8>> {
        let entry = self.entry_for(objname, uak)?;
        self.read_hidden_entry(&entry)
    }

    /// Read `len` bytes of the hidden file `objname` starting at `offset`.
    pub fn read_hidden_range_with_key(
        &self,
        objname: &str,
        uak: &str,
        offset: u64,
        len: usize,
    ) -> StegResult<Vec<u8>> {
        let entry = self.entry_for(objname, uak)?;
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let _obj_lock = self.object_guard(&entry.physical_name);
        let health = hidden::ReadHealth::new();
        let out = hidden::open_cached_observed(
            &self.fs,
            &entry.physical_name,
            &keys,
            &self.params,
            &self.read_cache,
            Some(&health),
        )
        .and_then(|object| {
            hidden::read_range_cached_observed(
                &self.fs,
                &keys,
                &object,
                offset,
                len,
                0,
                &self.read_cache,
                Some(&health),
            )
        });
        self.note_degraded(&entry.physical_name, &entry.fak, &health);
        out
    }

    /// Overwrite part of the hidden file `objname` in place (the range must
    /// already exist).
    pub fn write_hidden_range_with_key(
        &self,
        objname: &str,
        uak: &str,
        offset: u64,
        data: &[u8],
    ) -> StegResult<()> {
        let entry = self.entry_for(objname, uak)?;
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let _obj_lock = self.object_guard(&entry.physical_name);
        let mut object = hidden::open_cached(
            &self.fs,
            &entry.physical_name,
            &keys,
            &self.params,
            &self.read_cache,
        )?;
        hidden::write_range_cached(&self.fs, &keys, &mut object, offset, data, &self.read_cache)
    }

    /// Open a hidden file once and keep a handle for repeated positional
    /// access — the analogue of holding an open file descriptor after
    /// `steg_connect` in the kernel driver, so that every `read()` does not
    /// pay the locator walk again.
    pub fn open_hidden(&self, objname: &str, uak: &str) -> StegResult<HiddenHandle> {
        let entry = self.entry_for(objname, uak)?;
        self.open_hidden_entry(&entry)
    }

    /// Size in bytes of the object behind `handle`.
    pub fn handle_size(&self, handle: &HiddenHandle) -> u64 {
        handle.object.size()
    }

    /// Read `len` bytes at `offset` through an open handle.
    ///
    /// Handle operations rely on caller-side serialisation per object; see
    /// the module-level concurrency notes.
    pub fn read_range_at(
        &self,
        handle: &HiddenHandle,
        offset: u64,
        len: usize,
    ) -> StegResult<Vec<u8>> {
        self.read_range_at_with_readahead(handle, offset, len, 0)
    }

    /// [`Self::read_range_at`] with streaming readahead: up to
    /// `readahead_blocks` blocks past the requested range ride along in the
    /// same batched device submission and land in the plaintext cache.  The
    /// VFS passes a non-zero hint when a handle is reading sequentially.
    pub fn read_range_at_with_readahead(
        &self,
        handle: &HiddenHandle,
        offset: u64,
        len: usize,
        readahead_blocks: usize,
    ) -> StegResult<Vec<u8>> {
        let health = hidden::ReadHealth::new();
        let out = hidden::read_range_cached_observed(
            &self.fs,
            &handle.keys,
            &handle.object,
            offset,
            len,
            readahead_blocks,
            &self.read_cache,
            Some(&health),
        );
        self.note_degraded(&handle.physical_name, &handle.fak, &health);
        out
    }

    /// Overwrite bytes at `offset` through an open handle (in place; the
    /// range must lie within the current size).  Takes `&mut` because a
    /// coded patch under replicated metadata refreshes the handle's cached
    /// header (its chain checksum changes with the patched nodes).
    pub fn write_range_at(
        &self,
        handle: &mut HiddenHandle,
        offset: u64,
        data: &[u8],
    ) -> StegResult<()> {
        hidden::write_range_cached(
            &self.fs,
            &handle.keys,
            &mut handle.object,
            offset,
            data,
            &self.read_cache,
        )
    }

    /// Public form of the UAK-directory lookup: resolve `objname` under
    /// `uak` to its directory entry.  Layers above (the VFS front-end) cache
    /// the entry per user session so repeated opens skip the directory walk.
    pub fn lookup_entry(&self, objname: &str, uak: &str) -> StegResult<DirectoryEntry> {
        self.entry_for(objname, uak)
    }

    /// Open a hidden object directly from a (possibly cached) directory
    /// entry, skipping the UAK-directory walk that [`Self::open_hidden`]
    /// performs.
    pub fn open_hidden_entry(&self, entry: &DirectoryEntry) -> StegResult<HiddenHandle> {
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let _obj_lock = self.object_guard(&entry.physical_name);
        let object = hidden::open_cached(
            &self.fs,
            &entry.physical_name,
            &keys,
            &self.params,
            &self.read_cache,
        )?;
        Ok(HiddenHandle {
            name: entry.name.clone(),
            physical_name: entry.physical_name.clone(),
            fak: entry.fak,
            keys,
            object,
        })
    }

    /// Write `data` at `offset` through an open handle, extending the object
    /// (and zero-filling any gap) when the range passes the current end.
    ///
    /// In-bounds updates patch blocks in place; extending rewrites the object
    /// through the free-pool recycling path, so the handle's cached header is
    /// refreshed — which is why this takes `&mut HiddenHandle` where the
    /// in-place [`Self::write_range_at`] does not.
    pub fn write_at_handle(
        &self,
        handle: &mut HiddenHandle,
        offset: u64,
        data: &[u8],
    ) -> StegResult<()> {
        if handle.object.kind() != ObjectKind::File {
            return Err(StegError::WrongObjectKind {
                name: handle.name.clone(),
                expected: ObjectKind::File,
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        let end = offset
            .checked_add(data.len() as u64)
            .ok_or(StegError::NoSpace)?;
        if end <= handle.object.size() {
            return hidden::write_range_cached(
                &self.fs,
                &handle.keys,
                &mut handle.object,
                offset,
                data,
                &self.read_cache,
            );
        }
        // Grow to `end` at block granularity (zero-filling any gap), then
        // patch the written range in place — O(append), not O(file).
        let mut rng = self.fork_rng();
        hidden::resize_cached(
            &self.fs,
            &handle.keys,
            &mut handle.object,
            end,
            &self.params,
            &mut rng,
            &self.read_cache,
        )?;
        hidden::write_range_cached(
            &self.fs,
            &handle.keys,
            &mut handle.object,
            offset,
            data,
            &self.read_cache,
        )
    }

    /// Set the size of the object behind `handle` to `new_len`, truncating or
    /// zero-extending as needed.
    pub fn truncate_handle(&self, handle: &mut HiddenHandle, new_len: u64) -> StegResult<()> {
        if handle.object.kind() != ObjectKind::File {
            return Err(StegError::WrongObjectKind {
                name: handle.name.clone(),
                expected: ObjectKind::File,
            });
        }
        if new_len == handle.object.size() {
            return Ok(());
        }
        let mut rng = self.fork_rng();
        hidden::resize_cached(
            &self.fs,
            &handle.keys,
            &mut handle.object,
            new_len,
            &self.params,
            &mut rng,
            &self.read_cache,
        )
    }

    /// Rename the hidden object `objname` to `newname` within `uak`'s
    /// directory.  Only the directory entry changes; the physical name, FAK
    /// and every block of the object stay put, so outstanding shares of the
    /// `(physical name, FAK)` pair keep working.
    pub fn rename_hidden(&self, objname: &str, newname: &str, uak: &str) -> StegResult<()> {
        if newname.is_empty() || newname.contains('\0') {
            return Err(StegError::InvalidName(newname.to_string()));
        }
        let _uak_lock = self.uak_guard(uak);
        let (mut dir, existing) = self.load_uak_directory(uak)?;
        if dir.find(newname).is_some() {
            return Err(StegError::AlreadyExists(newname.to_string()));
        }
        let mut entry = dir
            .remove(objname)
            .ok_or_else(|| StegError::NotFound(objname.to_string()))?;
        entry.name = newname.to_string();
        // The object itself is untouched by a rename, but the conservative
        // contract is that *every* namespace mutation invalidates.
        self.read_cache
            .invalidate(ObjectKeys::derive(&entry.physical_name, &entry.fak).signature());
        dir.insert(entry)?;
        self.session.lock().disconnect(objname);
        self.save_uak_directory(uak, &dir, existing)
    }

    fn read_hidden_entry(&self, entry: &DirectoryEntry) -> StegResult<Vec<u8>> {
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let _obj_lock = self.object_guard(&entry.physical_name);
        let health = hidden::ReadHealth::new();
        let out = hidden::open_cached_observed(
            &self.fs,
            &entry.physical_name,
            &keys,
            &self.params,
            &self.read_cache,
            Some(&health),
        )
        .and_then(|obj| {
            hidden::read_cached_observed(&self.fs, &keys, &obj, &self.read_cache, Some(&health))
        });
        self.note_degraded(&entry.physical_name, &entry.fak, &health);
        out
    }

    /// Delete the hidden object `objname` and remove it from the UAK
    /// directory.  A hidden directory must be empty (deleting a populated
    /// listing would orphan its children's blocks forever).  Returns the
    /// removed entry so callers that track objects by physical name (the
    /// VFS object cache) need not re-walk the directory just to learn it.
    pub fn delete_hidden(&self, objname: &str, uak: &str) -> StegResult<DirectoryEntry> {
        let _uak_lock = self.uak_guard(uak);
        let (mut dir, existing) = self.load_uak_directory(uak)?;
        let entry = dir
            .remove(objname)
            .ok_or_else(|| StegError::NotFound(objname.to_string()))?;
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        {
            let _obj_lock = self.object_guard(&entry.physical_name);
            let obj = hidden::open(&self.fs, &entry.physical_name, &keys, &self.params)?;
            if entry.kind == ObjectKind::Directory {
                // The on-disk UAK directory is only rewritten below, so
                // refusing here leaves the object fully intact.
                self.ensure_hidden_dir_empty(&keys, &obj, objname)?;
            }
            let mut rng = self.fork_rng();
            let result = hidden::delete(&self.fs, &keys, &obj, &mut rng);
            self.read_cache.invalidate(keys.signature());
            result?;
            if entry.kind == ObjectKind::Directory {
                self.delete_shadow_listing(&entry.physical_name, &entry.fak);
            }
        }
        self.session.lock().disconnect(objname);
        self.save_uak_directory(uak, &dir, existing)?;
        Ok(entry)
    }

    /// `steg_hide`: convert the plain file at `pathname` into the hidden
    /// object `objname`; the plain source is deleted on success.
    pub fn steg_hide(&self, pathname: &str, objname: &str, uak: &str) -> StegResult<()> {
        let data = self.fs.read_file(pathname)?;
        self.steg_create(objname, uak, ObjectKind::File)?;
        self.write_hidden_with_key(objname, uak, &data)?;
        self.fs.delete(pathname)?;
        Ok(())
    }

    /// `steg_unhide`: convert the hidden object `objname` back into a plain
    /// file at `pathname`; the hidden source is deleted on success.
    pub fn steg_unhide(&self, pathname: &str, objname: &str, uak: &str) -> StegResult<()> {
        let data = self.read_hidden_with_key(objname, uak)?;
        self.fs.write_file(pathname, &data)?;
        self.delete_hidden(objname, uak)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sessions (steg_connect / steg_disconnect)
    // ------------------------------------------------------------------

    /// `steg_connect`: make `objname` (and, for directories, its offspring)
    /// visible in the current session, so subsequent reads and writes do not
    /// need the UAK again.
    pub fn steg_connect(&self, objname: &str, uak: &str) -> StegResult<()> {
        let entry = self.entry_for(objname, uak)?;
        self.connect_entry(&entry)
    }

    fn connect_entry(&self, entry: &DirectoryEntry) -> StegResult<()> {
        self.session.lock().connect(ConnectedObject::from(entry));
        if entry.kind == ObjectKind::Directory {
            let children = self.read_directory_listing(entry)?;
            for child in &children.entries {
                self.connect_entry(child)?;
            }
        }
        Ok(())
    }

    /// `steg_disconnect`: remove `objname` from the session.  Returns true if
    /// it was connected.
    pub fn steg_disconnect(&self, objname: &str) -> bool {
        self.session.lock().disconnect(objname)
    }

    /// Disconnect every object (the paper does this automatically at
    /// logoff).  Logoff also means no one is left who may read cached
    /// plaintext, so the read caches are purged and zeroed.
    pub fn disconnect_all(&self) {
        self.session.lock().disconnect_all();
        self.read_cache.purge();
    }

    /// Names of all currently connected hidden objects.
    pub fn connected_objects(&self) -> Vec<String> {
        self.session.lock().connected_names()
    }

    /// Read a connected hidden file by name.
    pub fn read_hidden(&self, objname: &str) -> StegResult<Vec<u8>> {
        let entry = self.connected_entry(objname)?;
        self.read_hidden_entry(&entry)
    }

    /// Write a connected hidden file by name.
    pub fn write_hidden(&self, objname: &str, data: &[u8]) -> StegResult<()> {
        let entry = self.connected_entry(objname)?;
        self.write_hidden_entry(&entry, data)
    }

    fn connected_entry(&self, objname: &str) -> StegResult<DirectoryEntry> {
        let session = self.session.lock();
        let c = session
            .get(objname)
            .ok_or_else(|| StegError::NotConnected(objname.to_string()))?;
        Ok(DirectoryEntry {
            name: c.name.clone(),
            physical_name: c.physical_name.clone(),
            fak: c.fak,
            kind: c.kind,
        })
    }

    // ------------------------------------------------------------------
    // Hidden directories
    // ------------------------------------------------------------------

    /// Read the child listing of a hidden directory object.  Takes the
    /// object's shard, so a concurrent listing rewrite cannot tear the read.
    fn read_directory_listing(&self, entry: &DirectoryEntry) -> StegResult<UakDirectory> {
        let _obj_lock = self.object_guard(&entry.physical_name);
        self.read_listing_locked(entry)
    }

    /// As [`Self::read_directory_listing`] but with the object shard already
    /// held by the caller.
    fn read_listing_locked(&self, entry: &DirectoryEntry) -> StegResult<UakDirectory> {
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let health = hidden::ReadHealth::new();
        let raw = hidden::open_cached_observed(
            &self.fs,
            &entry.physical_name,
            &keys,
            &self.params,
            &self.read_cache,
            Some(&health),
        )
        .and_then(|obj| {
            hidden::read_cached_observed(&self.fs, &keys, &obj, &self.read_cache, Some(&health))
        });
        self.note_degraded(&entry.physical_name, &entry.fak, &health);
        let raw = raw?;
        if raw.is_empty() {
            Ok(UakDirectory::new())
        } else {
            Ok(UakDirectory::deserialize(&raw)?)
        }
    }

    /// Identity (physical name, FAK) of a directory's shadow-listing object.
    /// Derived, never stored: `\u{1}` is rejected in object names, so a
    /// shadow's physical name can never collide with a real child's, and the
    /// FAK is domain-separated from the directory's own.
    fn shadow_identity(physical: &str, fak: &[u8; FAK_LEN]) -> (String, [u8; FAK_LEN]) {
        let shadow_physical = format!("{physical}\u{1}shadow");
        let shadow_fak = sha256_concat(&[b"stegfs-shadow-fak", fak]);
        (shadow_physical, shadow_fak)
    }

    /// Persist `children` as the listing of the hidden directory `parent`
    /// (object shard already held), then mirror it into the directory's
    /// shadow-listing object.  The shadow is an ordinary hidden object under
    /// the volume policy — indistinguishable on the raw device and reachable
    /// only with the directory's FAK — and is what lets the scavenger rebuild
    /// a directory whose own metadata is damaged beyond its redundancy (see
    /// [`Self::rebuild_dir_from_shadow`]).
    fn save_listing_locked(
        &self,
        parent: &DirectoryEntry,
        children: &UakDirectory,
    ) -> StegResult<()> {
        let parent_keys = ObjectKeys::derive(&parent.physical_name, &parent.fak);
        let mut parent_obj = hidden::open_cached(
            &self.fs,
            &parent.physical_name,
            &parent_keys,
            &self.params,
            &self.read_cache,
        )?;
        let mut rng = self.fork_rng();
        hidden::write_cached(
            &self.fs,
            &parent_keys,
            &mut parent_obj,
            &children.serialize(),
            &self.params,
            &mut rng,
            &self.read_cache,
        )?;
        self.save_shadow_listing(parent, children)
    }

    /// Upsert the shadow-listing companion of the hidden directory `parent`
    /// (created lazily on the first listing mutation).
    fn save_shadow_listing(
        &self,
        parent: &DirectoryEntry,
        children: &UakDirectory,
    ) -> StegResult<()> {
        if children.entries.is_empty() {
            // An empty listing needs no recovery source; dropping the shadow
            // keeps an empty directory's block footprint unchanged.
            self.delete_shadow_listing(&parent.physical_name, &parent.fak);
            return Ok(());
        }
        let (shadow_physical, shadow_fak) =
            Self::shadow_identity(&parent.physical_name, &parent.fak);
        let shadow_keys = ObjectKeys::derive(&shadow_physical, &shadow_fak);
        let mut shadow_obj =
            match hidden::open(&self.fs, &shadow_physical, &shadow_keys, &self.params) {
                Ok(obj) => obj,
                Err(e) if e.is_not_found() => hidden::create_with_policy(
                    &self.fs,
                    &shadow_physical,
                    &shadow_keys,
                    ObjectKind::File,
                    self.params.hidden_policy,
                    &self.params,
                )?,
                Err(e) => return Err(e),
            };
        let mut rng = self.fork_rng();
        hidden::write(
            &self.fs,
            &shadow_keys,
            &mut shadow_obj,
            &children.serialize(),
            &self.params,
            &mut rng,
        )
    }

    /// Best-effort removal of a directory's shadow listing when the
    /// directory itself is destroyed.  A missing shadow (directory never had
    /// a listing mutation) is not an error.
    fn delete_shadow_listing(&self, physical: &str, fak: &[u8; FAK_LEN]) {
        let (shadow_physical, shadow_fak) = Self::shadow_identity(physical, fak);
        let shadow_keys = ObjectKeys::derive(&shadow_physical, &shadow_fak);
        if let Ok(shadow_obj) = hidden::open(&self.fs, &shadow_physical, &shadow_keys, &self.params)
        {
            let mut rng = self.fork_rng();
            let _ = hidden::delete(&self.fs, &shadow_keys, &shadow_obj, &mut rng);
        }
    }

    /// Rebuild a hidden directory whose header/chain damage exceeds its
    /// redundancy, from the directory's shadow listing.  The directory is
    /// re-created **in place** — same physical name and FAK — so entries
    /// held by parents and sessions keep resolving; children whose own
    /// objects no longer probe are dropped from the rebuilt listing and
    /// reported in [`DirRebuild::children_dropped`].
    ///
    /// Refuses (with `AlreadyExists`) to clobber a directory whose listing is
    /// still readable, and fails without touching the volume when the shadow
    /// itself cannot be read (directories predating shadow listings report
    /// `NotFound` here).  Remnant blocks of the old object that its surviving
    /// header no longer reaches stay allocated — a bounded leak,
    /// indistinguishable from abandoned blocks (§3.4).
    pub fn rebuild_dir_from_shadow(&self, entry: &DirectoryEntry) -> StegResult<DirRebuild> {
        if entry.kind != ObjectKind::Directory {
            return Err(StegError::WrongObjectKind {
                name: entry.name.clone(),
                expected: ObjectKind::Directory,
            });
        }
        let _obj_lock = self.object_guard(&entry.physical_name);
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        if let Ok(obj) = hidden::open(&self.fs, &entry.physical_name, &keys, &self.params) {
            if hidden::read(&self.fs, &keys, &obj).is_ok() {
                return Err(StegError::AlreadyExists(entry.name.clone()));
            }
        }

        // Read the recovery source first: no teardown unless the shadow is
        // actually usable.
        let (shadow_physical, shadow_fak) = Self::shadow_identity(&entry.physical_name, &entry.fak);
        let shadow_keys = ObjectKeys::derive(&shadow_physical, &shadow_fak);
        let shadow_obj = hidden::open(&self.fs, &shadow_physical, &shadow_keys, &self.params)?;
        let raw = hidden::read(&self.fs, &shadow_keys, &shadow_obj)?;
        let listing = if raw.is_empty() {
            UakDirectory::new()
        } else {
            UakDirectory::deserialize(&raw)?
        };

        // Re-link only children whose objects still probe under their keys.
        let mut kept = UakDirectory::new();
        let mut dropped = Vec::new();
        for child in listing.entries {
            let child_keys = ObjectKeys::derive(&child.physical_name, &child.fak);
            if hidden::open(&self.fs, &child.physical_name, &child_keys, &self.params).is_ok() {
                kept.insert(child)?;
            } else {
                dropped.push(child.name.clone());
            }
        }

        // Tear down whatever is left of the old object.  When even the
        // header is gone there is nothing to free; when the header opens but
        // the chain does not, scrub the header replicas so the re-creation's
        // probes cannot resurrect it.
        let mut rng = self.fork_rng();
        if let Ok(old) = hidden::open(&self.fs, &entry.physical_name, &keys, &self.params) {
            if hidden::delete(&self.fs, &keys, &old, &mut rng).is_err() {
                hidden::destroy_unreadable(&self.fs, &old, &mut rng)?;
            }
        }
        self.read_cache.invalidate(keys.signature());

        let mut obj = hidden::create_with_policy(
            &self.fs,
            &entry.physical_name,
            &keys,
            ObjectKind::Directory,
            self.params.hidden_policy,
            &self.params,
        )?;
        hidden::write(
            &self.fs,
            &keys,
            &mut obj,
            &kept.serialize(),
            &self.params,
            &mut rng,
        )?;
        Ok(DirRebuild {
            children_relinked: kept.entries.len(),
            children_dropped: dropped,
        })
    }

    /// Read the child listing of the hidden directory described by `entry`.
    /// This is the building block the VFS uses to resolve `/hidden/dir/child`
    /// paths from cached entries without re-walking the UAK directory.
    pub fn read_hidden_dir_listing(&self, entry: &DirectoryEntry) -> StegResult<UakDirectory> {
        if entry.kind != ObjectKind::Directory {
            return Err(StegError::WrongObjectKind {
                name: entry.name.clone(),
                expected: ObjectKind::Directory,
            });
        }
        self.read_directory_listing(entry)
    }

    /// Create a new hidden file or directory *inside* the hidden directory
    /// `parent` (registered under `uak`).  The child is registered only in
    /// the parent's listing, not in the UAK directory.
    pub fn create_in_hidden_dir(
        &self,
        parent: &str,
        child_name: &str,
        uak: &str,
        kind: ObjectKind,
    ) -> StegResult<()> {
        let parent_entry = self.entry_for(parent, uak)?;
        self.create_dir_child(&parent_entry, child_name, kind)
    }

    /// Create a new hidden file or directory inside the hidden directory
    /// described by `parent` — an entry resolved at **any** depth (the VFS
    /// walks `/hidden/a/b/c` to the `b` entry and creates `c` here).  The
    /// child's physical name extends the parent's, so offspring at every
    /// level resolve from the listing chain alone, exactly as in the paper's
    /// `steg_connect`.
    pub fn create_dir_child(
        &self,
        parent: &DirectoryEntry,
        child_name: &str,
        kind: ObjectKind,
    ) -> StegResult<()> {
        if parent.kind != ObjectKind::Directory {
            return Err(StegError::WrongObjectKind {
                name: parent.name.clone(),
                expected: ObjectKind::Directory,
            });
        }
        if child_name.is_empty()
            || child_name.contains('\0')
            || child_name.contains('/')
            || child_name.contains('\u{1}')
        {
            return Err(StegError::InvalidName(child_name.to_string()));
        }
        // The parent's shard serialises the listing read-modify-write against
        // concurrent child creation in the same directory.
        let _parent_lock = self.object_guard(&parent.physical_name);
        let mut children = self.read_listing_locked(parent)?;
        if children.find(child_name).is_some() {
            return Err(StegError::AlreadyExists(child_name.to_string()));
        }

        // Create the child object itself.
        let fak = self.generate_fak(child_name);
        let physical_name = format!("{}/{}", parent.physical_name, child_name);
        let child_keys = ObjectKeys::derive(&physical_name, &fak);
        let mut child_obj = hidden::create_with_policy(
            &self.fs,
            &physical_name,
            &child_keys,
            kind,
            self.params.hidden_policy,
            &self.params,
        )?;
        if kind == ObjectKind::Directory {
            let mut rng = self.fork_rng();
            hidden::write(
                &self.fs,
                &child_keys,
                &mut child_obj,
                &UakDirectory::new().serialize(),
                &self.params,
                &mut rng,
            )?;
        }
        children.insert(DirectoryEntry {
            name: child_name.to_string(),
            physical_name,
            fak,
            kind,
        })?;

        // Persist the updated listing into the parent (and its shadow).
        self.save_listing_locked(parent, &children)
    }

    /// List the children of the hidden directory `parent`.
    pub fn list_hidden_dir(
        &self,
        parent: &str,
        uak: &str,
    ) -> StegResult<Vec<(String, ObjectKind)>> {
        let parent_entry = self.entry_for(parent, uak)?;
        if parent_entry.kind != ObjectKind::Directory {
            return Err(StegError::WrongObjectKind {
                name: parent.to_string(),
                expected: ObjectKind::Directory,
            });
        }
        let children = self.read_directory_listing(&parent_entry)?;
        Ok(children
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.kind))
            .collect())
    }

    /// Refuse to destroy a hidden directory that still lists children
    /// (destroying a populated listing would orphan their blocks forever).
    /// Caller holds the object's shard and has already opened `obj`.
    fn ensure_hidden_dir_empty(
        &self,
        keys: &ObjectKeys,
        obj: &HiddenObject,
        name: &str,
    ) -> StegResult<()> {
        let raw = hidden::read(&self.fs, keys, obj)?;
        let listing = if raw.is_empty() {
            UakDirectory::new()
        } else {
            UakDirectory::deserialize(&raw)?
        };
        if !listing.entries.is_empty() {
            return Err(StegError::Fs(stegfs_fs::FsError::DirectoryNotEmpty(
                name.to_string(),
            )));
        }
        Ok(())
    }

    /// Remove (and destroy) the child `child_name` of the hidden directory
    /// described by `parent`, returning the removed child's entry.  A child
    /// directory must be empty.
    ///
    /// This is the one operation that holds **two object shards** — the
    /// parent's (serialising the listing read-modify-write) and the child's
    /// (so in-flight I/O on the child drains before its blocks are freed).
    /// The pair is acquired in ascending shard-index order; when the child's
    /// shard sorts below the parent's, the parent shard is released and the
    /// pair re-acquired in order, revalidating the listing afterwards.
    ///
    /// The child is unpublished from the parent's listing *before* its
    /// blocks are freed, so a racing lookup can never be handed an entry
    /// whose object is already gone; a crash between the two steps leaks the
    /// child's blocks (allocated, unreferenced) rather than corrupting the
    /// directory.
    pub fn remove_dir_child(
        &self,
        parent: &DirectoryEntry,
        child_name: &str,
    ) -> StegResult<DirectoryEntry> {
        if parent.kind != ObjectKind::Directory {
            return Err(StegError::WrongObjectKind {
                name: parent.name.clone(),
                expected: ObjectKind::Directory,
            });
        }
        let pidx = shard_index(&parent.physical_name, self.object_locks.len());
        loop {
            let pguard = self.object_guard_at(pidx);
            let children = self.read_listing_locked(parent)?;
            let child = children
                .find(child_name)
                .cloned()
                .ok_or_else(|| StegError::NotFound(child_name.to_string()))?;
            let cidx = shard_index(&child.physical_name, self.object_locks.len());
            if cidx == pidx {
                // One mutex covers both objects; it is already held.
                return self.remove_child_locked(parent, children, child, pguard, None);
            }
            if cidx > pidx {
                let cguard = self.object_guard_at(cidx);
                return self.remove_child_locked(parent, children, child, pguard, Some(cguard));
            }
            // The child's shard sorts first: release, re-acquire in order,
            // and revalidate the listing (it may have changed meanwhile).
            drop(pguard);
            let cguard = self.object_guard_at(cidx);
            let pguard = self.object_guard_at(pidx);
            let children = self.read_listing_locked(parent)?;
            match children.find(child_name) {
                Some(c) if c.physical_name == child.physical_name && c.fak == child.fak => {
                    let child = c.clone();
                    return self.remove_child_locked(parent, children, child, pguard, Some(cguard));
                }
                // The entry changed (or vanished) while unlocked; retry from
                // the top so the fresh binding is re-resolved.
                _ => continue,
            }
        }
    }

    /// Second half of [`Self::remove_dir_child`]: both shards held.
    fn remove_child_locked(
        &self,
        parent: &DirectoryEntry,
        mut children: UakDirectory,
        child: DirectoryEntry,
        _parent_shard: TimedMutexGuard<'_, ()>,
        _child_shard: Option<TimedMutexGuard<'_, ()>>,
    ) -> StegResult<DirectoryEntry> {
        let child_keys = ObjectKeys::derive(&child.physical_name, &child.fak);
        let child_obj = hidden::open(&self.fs, &child.physical_name, &child_keys, &self.params)?;
        if child.kind == ObjectKind::Directory {
            self.ensure_hidden_dir_empty(&child_keys, &child_obj, &child.name)?;
        }

        // Unpublish, then destroy.
        children.remove(&child.name);
        self.save_listing_locked(parent, &children)?;
        let mut rng = self.fork_rng();
        let result = hidden::delete(&self.fs, &child_keys, &child_obj, &mut rng);
        self.read_cache.invalidate(child_keys.signature());
        result?;
        if child.kind == ObjectKind::Directory {
            self.delete_shadow_listing(&child.physical_name, &child.fak);
        }
        self.session.lock().disconnect(&child.name);
        Ok(child)
    }

    /// Rename the child `old` of the hidden directory described by `parent`
    /// to `new`.  Only the listing entry changes — the child's physical name,
    /// FAK and blocks stay put, so open handles and outstanding shares keep
    /// working, exactly as with [`Self::rename_hidden`] at top level.
    pub fn rename_dir_child(
        &self,
        parent: &DirectoryEntry,
        old: &str,
        new: &str,
    ) -> StegResult<()> {
        if parent.kind != ObjectKind::Directory {
            return Err(StegError::WrongObjectKind {
                name: parent.name.clone(),
                expected: ObjectKind::Directory,
            });
        }
        if new.is_empty() || new.contains('\0') || new.contains('\u{1}') {
            return Err(StegError::InvalidName(new.to_string()));
        }
        let _parent_lock = self.object_guard(&parent.physical_name);
        let mut children = self.read_listing_locked(parent)?;
        if children.find(new).is_some() {
            return Err(StegError::AlreadyExists(new.to_string()));
        }
        let mut entry = children
            .remove(old)
            .ok_or_else(|| StegError::NotFound(old.to_string()))?;
        entry.name = new.to_string();
        self.read_cache
            .invalidate(ObjectKeys::derive(&entry.physical_name, &entry.fak).signature());
        children.insert(entry)?;
        self.save_listing_locked(parent, &children)?;
        self.session.lock().disconnect(old);
        Ok(())
    }

    /// Name-based convenience for [`Self::remove_dir_child`]: delete the
    /// child `child` of the top-level hidden directory `parent` (registered
    /// under `uak`).
    pub fn delete_in_hidden_dir(
        &self,
        parent: &str,
        child: &str,
        uak: &str,
    ) -> StegResult<DirectoryEntry> {
        let parent_entry = self.entry_for(parent, uak)?;
        self.remove_dir_child(&parent_entry, child)
    }

    /// Name-based convenience for [`Self::rename_dir_child`].
    pub fn rename_in_hidden_dir(
        &self,
        parent: &str,
        old: &str,
        new: &str,
        uak: &str,
    ) -> StegResult<()> {
        let parent_entry = self.entry_for(parent, uak)?;
        self.rename_dir_child(&parent_entry, old, new)
    }

    // ------------------------------------------------------------------
    // Sharing (steg_getentry / steg_addentry) and revocation
    // ------------------------------------------------------------------

    /// `steg_getentry`: produce an encrypted share envelope for `objname`
    /// that only the holder of `recipient`'s private key can open.
    pub fn steg_getentry(
        &self,
        objname: &str,
        uak: &str,
        recipient: &RsaPublicKey,
    ) -> StegResult<ShareEnvelope> {
        let entry = self.entry_for(objname, uak)?;
        let entropy = self.rng.lock().bytes(32);
        ShareEnvelope::seal(&entry, recipient, &entropy)
    }

    /// `steg_addentry`: open a received share envelope with `private_key` and
    /// register the shared object under this user's `uak`.  Returns the
    /// object name that was added.
    pub fn steg_addentry(
        &self,
        envelope: &ShareEnvelope,
        private_key: &RsaPrivateKey,
        uak: &str,
    ) -> StegResult<String> {
        let entry = envelope.open(private_key)?;
        let _uak_lock = self.uak_guard(uak);
        let (mut dir, existing) = self.load_uak_directory(uak)?;
        let name = entry.name.clone();
        dir.insert(entry)?;
        self.save_uak_directory(uak, &dir, existing)?;
        Ok(name)
    }

    /// Revoke a previously shared object: re-key it under a fresh FAK (and a
    /// fresh physical name) so that recipients of the old `(name, FAK)` pair
    /// lose access, as described at the end of §3.2.
    pub fn revoke_sharing(&self, objname: &str, uak: &str) -> StegResult<()> {
        let _uak_lock = self.uak_guard(uak);
        let (mut dir, existing) = self.load_uak_directory(uak)?;
        let entry = dir
            .remove(objname)
            .ok_or_else(|| StegError::NotFound(objname.to_string()))?;

        // Read the current contents with the old key.
        let old_keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let data = {
            let _obj_lock = self.object_guard(&entry.physical_name);
            let old_obj = hidden::open(&self.fs, &entry.physical_name, &old_keys, &self.params)?;
            hidden::read(&self.fs, &old_keys, &old_obj)?
        };

        // Create the replacement under a fresh FAK and physical name.
        let revision = self.fak_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let fak = self.generate_fak(objname);
        let physical_name = format!("{}:{}#rev{}", Self::owner_tag(uak), objname, revision);
        let new_keys = ObjectKeys::derive(&physical_name, &fak);
        let mut new_obj = hidden::create(
            &self.fs,
            &physical_name,
            &new_keys,
            entry.kind,
            &self.params,
        )?;
        let mut rng = self.fork_rng();
        hidden::write(
            &self.fs,
            &new_keys,
            &mut new_obj,
            &data,
            &self.params,
            &mut rng,
        )?;

        // Destroy the old object, invalidating every outstanding copy of the
        // old FAK.
        {
            let _obj_lock = self.object_guard(&entry.physical_name);
            let old_obj = hidden::open(&self.fs, &entry.physical_name, &old_keys, &self.params)?;
            let result = hidden::delete(&self.fs, &old_keys, &old_obj, &mut rng);
            self.read_cache.invalidate(old_keys.signature());
            result?;
        }

        dir.insert(DirectoryEntry {
            name: objname.to_string(),
            physical_name,
            fak,
            kind: entry.kind,
        })?;
        self.save_uak_directory(uak, &dir, existing)
    }

    // ------------------------------------------------------------------
    // Backup and recovery (steg_backup / steg_recovery)
    // ------------------------------------------------------------------

    fn walk_plain_tree(&self, path: &str, out: &mut Vec<PlainEntry>) -> StegResult<()> {
        for entry in self.fs.list_dir(path)? {
            let child_path = if path == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{}/{}", path, entry.name)
            };
            match entry.kind {
                FileKind::Directory => {
                    out.push(PlainEntry {
                        path: child_path.clone(),
                        kind: FileKind::Directory,
                        data: vec![],
                    });
                    self.walk_plain_tree(&child_path, out)?;
                }
                _ => {
                    let data = self.fs.read_file(&child_path)?;
                    out.push(PlainEntry {
                        path: child_path,
                        kind: FileKind::File,
                        data,
                    });
                }
            }
        }
        Ok(())
    }

    /// `steg_backup`: produce an authenticated backup image containing the
    /// raw contents of every allocated-but-unaccounted block plus the
    /// contents of every plain file.
    ///
    /// Backup snapshots the bitmap block by block; run it on a quiescent
    /// volume (no concurrent writers) for a consistent image.
    pub fn steg_backup(&self, admin_key: &[u8]) -> StegResult<Vec<u8>> {
        let sb = self.fs.superblock().clone();
        let plain_blocks: std::collections::HashSet<u64> =
            self.fs.plain_object_blocks()?.into_iter().collect();

        let mut hidden_blocks = Vec::new();
        for block in sb.data_start..sb.total_blocks {
            if self.fs.is_block_allocated(block) && !plain_blocks.contains(&block) {
                hidden_blocks.push((block, self.fs.read_raw_block(block)?));
            }
        }

        let mut plain_entries = Vec::new();
        self.walk_plain_tree("/", &mut plain_entries)?;

        let image = BackupImage {
            block_size: sb.block_size,
            total_blocks: sb.total_blocks,
            hidden_blocks,
            plain_entries,
        };
        Ok(image.to_bytes(admin_key))
    }

    /// `steg_recovery`: rebuild a volume on `dev` from a backup image.
    ///
    /// Imaged (hidden/abandoned/dummy) blocks return to their original
    /// addresses; plain files are recreated through the central directory and
    /// may land anywhere.
    pub fn steg_recovery(
        dev: D,
        image_bytes: &[u8],
        admin_key: &[u8],
        params: StegParams,
    ) -> StegResult<Self> {
        params.validate()?;
        let image = BackupImage::from_bytes(image_bytes, admin_key)?;
        if dev.block_size() != image.block_size as usize || dev.total_blocks() != image.total_blocks
        {
            return Err(StegError::InvalidBackup(format!(
                "device geometry ({} x {}) does not match image ({} x {})",
                dev.block_size(),
                dev.total_blocks(),
                image.block_size,
                image.total_blocks
            )));
        }

        // A fresh plain file system; hidden blocks are then grafted back in.
        // The journal size must match the original format or the grafted
        // block numbers would land in a shifted data region.
        let fs = PlainFs::format(
            dev,
            FormatOptions {
                fill_random: params.random_fill,
                seed: params.volume_seed,
                policy: AllocPolicy::FirstFit,
                inode_count: None,
                journal_blocks: params.journal_blocks,
            },
        )?;

        // One transaction (journaled when the volume is): the bitmap claims
        // and the raw block contents commit together.
        image.graft(&fs)?;

        for entry in &image.plain_entries {
            match entry.kind {
                FileKind::Directory => {
                    fs.create_dir(&entry.path)?;
                }
                _ => {
                    fs.write_file(&entry.path, &entry.data)?;
                }
            }
        }
        fs.sync()?;

        let config = match fs.read_file(CONFIG_PATH) {
            Ok(data) => VolumeConfig::deserialize(&data).unwrap_or(VolumeConfig {
                abandoned_count: 0,
                dummy_seed: 0,
                dummy_count: 0,
                dummy_size: 0,
            }),
            Err(_) => VolumeConfig {
                abandoned_count: 0,
                dummy_seed: 0,
                dummy_count: 0,
                dummy_size: 0,
            },
        };

        Ok(Self::assemble(fs, params, config))
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Aggregate block accounting for the space-utilization experiments.
    pub fn space_report(&self) -> StegResult<SpaceReport> {
        let sb = self.fs.superblock().clone();
        let plain_blocks = self.fs.plain_object_blocks()?.len() as u64;
        let free_blocks = self.fs.free_data_blocks();
        let allocated_data = sb.data_blocks() - free_blocks;
        let abandoned = self.config.abandoned_count;
        let hidden = allocated_data
            .saturating_sub(plain_blocks)
            .saturating_sub(abandoned);
        Ok(SpaceReport {
            block_size: sb.block_size as usize,
            total_blocks: sb.total_blocks,
            metadata_blocks: sb.data_start,
            plain_blocks,
            abandoned_blocks: abandoned,
            hidden_blocks: hidden,
            free_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;

    const UAK: &str = "user access key level 1";

    fn small_fs() -> StegFs<MemBlockDevice> {
        StegFs::format(MemBlockDevice::new(1024, 8192), StegParams::for_tests()).unwrap()
    }

    #[test]
    fn format_creates_dummies_and_abandoned_blocks() {
        let fs = small_fs();
        let report = fs.space_report().unwrap();
        assert!(report.abandoned_blocks > 0);
        assert!(report.hidden_blocks > 0, "dummy files occupy hidden blocks");
        assert!(report.free_blocks > 0);
        // The config file is a plain file.
        assert!(fs.plain_exists(CONFIG_PATH).unwrap());
    }

    #[test]
    fn plain_files_work_alongside_hidden_objects() {
        let fs = small_fs();
        fs.write_plain("/notes.txt", b"shopping list").unwrap();
        fs.create_plain_dir("/docs").unwrap();
        fs.write_plain("/docs/report.txt", b"quarterly report")
            .unwrap();
        assert_eq!(fs.read_plain("/notes.txt").unwrap(), b"shopping list");
        let names = fs.list_plain_dir("/").unwrap();
        assert!(names.contains(&"notes.txt".to_string()));
        assert!(names.contains(&"docs".to_string()));
        fs.delete_plain("/notes.txt").unwrap();
        assert!(!fs.plain_exists("/notes.txt").unwrap());
    }

    #[test]
    fn hidden_create_write_read_roundtrip() {
        let fs = small_fs();
        fs.steg_create("budget", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("budget", UAK, b"the real numbers")
            .unwrap();
        assert_eq!(
            fs.read_hidden_with_key("budget", UAK).unwrap(),
            b"the real numbers"
        );
        assert_eq!(
            fs.list_hidden(UAK).unwrap(),
            vec![("budget".to_string(), ObjectKind::File)]
        );
    }

    #[test]
    fn wrong_uak_sees_nothing() {
        let fs = small_fs();
        fs.steg_create("budget", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("budget", UAK, b"secret").unwrap();
        // A different UAK has an empty directory and cannot find the object.
        assert!(fs.list_hidden("some other key").unwrap().is_empty());
        assert!(fs
            .read_hidden_with_key("budget", "some other key")
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn duplicate_hidden_names_rejected_per_uak() {
        let fs = small_fs();
        fs.steg_create("x", UAK, ObjectKind::File).unwrap();
        assert!(matches!(
            fs.steg_create("x", UAK, ObjectKind::File),
            Err(StegError::AlreadyExists(_))
        ));
        // The same name under a different UAK is fine.
        fs.steg_create("x", "another uak", ObjectKind::File)
            .unwrap();
    }

    #[test]
    fn hidden_objects_invisible_in_plain_listings() {
        let fs = small_fs();
        fs.write_plain("/visible.txt", b"plain").unwrap();
        fs.steg_create("invisible", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("invisible", UAK, b"hidden data")
            .unwrap();
        let listing = fs.list_plain_dir("/").unwrap();
        assert!(listing.iter().any(|n| n == "visible.txt"));
        assert!(
            !listing.iter().any(|n| n.contains("invisible")),
            "hidden object leaked into the central directory: {listing:?}"
        );
    }

    #[test]
    fn steg_hide_and_unhide_roundtrip() {
        let fs = small_fs();
        fs.write_plain("/diary.txt", b"dear diary").unwrap();
        fs.steg_hide("/diary.txt", "diary", UAK).unwrap();
        assert!(
            !fs.plain_exists("/diary.txt").unwrap(),
            "plain source deleted"
        );
        assert_eq!(
            fs.read_hidden_with_key("diary", UAK).unwrap(),
            b"dear diary"
        );

        fs.steg_unhide("/diary-restored.txt", "diary", UAK).unwrap();
        assert_eq!(fs.read_plain("/diary-restored.txt").unwrap(), b"dear diary");
        assert!(fs
            .read_hidden_with_key("diary", UAK)
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn connect_read_write_disconnect() {
        let fs = small_fs();
        fs.steg_create("plans", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("plans", UAK, b"v1").unwrap();

        fs.steg_connect("plans", UAK).unwrap();
        assert_eq!(fs.connected_objects(), vec!["plans".to_string()]);
        assert_eq!(fs.read_hidden("plans").unwrap(), b"v1");
        fs.write_hidden("plans", b"v2 updated through the session")
            .unwrap();
        assert_eq!(
            fs.read_hidden_with_key("plans", UAK).unwrap(),
            b"v2 updated through the session"
        );

        assert!(fs.steg_disconnect("plans"));
        assert!(!fs.steg_disconnect("plans"));
        assert!(matches!(
            fs.read_hidden("plans"),
            Err(StegError::NotConnected(_))
        ));
    }

    #[test]
    fn connecting_directory_reveals_children() {
        let fs = small_fs();
        fs.steg_create("vault", UAK, ObjectKind::Directory).unwrap();
        fs.create_in_hidden_dir("vault", "passwords", UAK, ObjectKind::File)
            .unwrap();
        fs.create_in_hidden_dir("vault", "keys", UAK, ObjectKind::File)
            .unwrap();
        assert_eq!(fs.list_hidden_dir("vault", UAK).unwrap().len(), 2);

        fs.steg_connect("vault", UAK).unwrap();
        let mut connected = fs.connected_objects();
        connected.sort();
        assert_eq!(connected, vec!["keys", "passwords", "vault"]);
        // Children are readable through the session.
        fs.write_hidden("passwords", b"hunter2").unwrap();
        assert_eq!(fs.read_hidden("passwords").unwrap(), b"hunter2");
    }

    #[test]
    fn delete_and_rename_inside_hidden_dir() {
        let fs = small_fs();
        fs.steg_create("vault", UAK, ObjectKind::Directory).unwrap();
        let free_empty = fs.plain_fs().free_data_blocks();
        fs.create_in_hidden_dir("vault", "a", UAK, ObjectKind::File)
            .unwrap();
        fs.create_in_hidden_dir("vault", "b", UAK, ObjectKind::File)
            .unwrap();
        let parent = fs.lookup_entry("vault", UAK).unwrap();
        let a = fs
            .read_hidden_dir_listing(&parent)
            .unwrap()
            .find("a")
            .cloned()
            .unwrap();
        fs.write_hidden_entry(&a, &vec![7u8; 10 * 1024]).unwrap();

        // Rename keeps the contents and the physical identity.
        fs.rename_in_hidden_dir("vault", "a", "renamed", UAK)
            .unwrap();
        let listing = fs.list_hidden_dir("vault", UAK).unwrap();
        assert!(listing.iter().any(|(n, _)| n == "renamed"));
        assert!(!listing.iter().any(|(n, _)| n == "a"));
        let renamed = fs
            .read_hidden_dir_listing(&parent)
            .unwrap()
            .find("renamed")
            .cloned()
            .unwrap();
        assert_eq!(renamed.physical_name, a.physical_name);
        assert!(matches!(
            fs.rename_in_hidden_dir("vault", "renamed", "b", UAK),
            Err(StegError::AlreadyExists(_))
        ));
        assert!(fs
            .rename_in_hidden_dir("vault", "ghost", "x", UAK)
            .unwrap_err()
            .is_not_found());

        // Deleting returns the child's blocks and unpublishes the entry.
        let removed = fs.delete_in_hidden_dir("vault", "renamed", UAK).unwrap();
        assert_eq!(removed.physical_name, a.physical_name);
        fs.delete_in_hidden_dir("vault", "b", UAK).unwrap();
        assert!(fs.list_hidden_dir("vault", UAK).unwrap().is_empty());
        assert_eq!(fs.plain_fs().free_data_blocks(), free_empty);
        assert!(fs
            .delete_in_hidden_dir("vault", "renamed", UAK)
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn delete_in_hidden_dir_requires_empty_subdirectory() {
        let fs = small_fs();
        fs.steg_create("vault", UAK, ObjectKind::Directory).unwrap();
        fs.create_in_hidden_dir("vault", "sub", UAK, ObjectKind::Directory)
            .unwrap();
        let parent = fs.lookup_entry("vault", UAK).unwrap();
        let sub = fs
            .read_hidden_dir_listing(&parent)
            .unwrap()
            .find("sub")
            .cloned()
            .unwrap();
        // Nest a grandchild through the entry-based API.
        let child_dir_keys = ObjectKeys::derive(&sub.physical_name, &sub.fak);
        let mut sub_obj = hidden::open(
            fs.plain_fs(),
            &sub.physical_name,
            &child_dir_keys,
            fs.params(),
        )
        .unwrap();
        let mut listing = UakDirectory::new();
        listing
            .insert(DirectoryEntry {
                name: "grandchild".into(),
                physical_name: "gp".into(),
                fak: [0u8; FAK_LEN],
                kind: ObjectKind::File,
            })
            .unwrap();
        let mut rng = stegfs_crypto::prng::DeterministicRng::new(b"t");
        hidden::write(
            fs.plain_fs(),
            &child_dir_keys,
            &mut sub_obj,
            &listing.serialize(),
            fs.params(),
            &mut rng,
        )
        .unwrap();

        assert!(matches!(
            fs.delete_in_hidden_dir("vault", "sub", UAK),
            Err(StegError::Fs(stegfs_fs::FsError::DirectoryNotEmpty(_)))
        ));
        // Still listed after the refusal.
        assert_eq!(fs.list_hidden_dir("vault", UAK).unwrap().len(), 1);
    }

    #[test]
    fn duplicate_children_rejected() {
        let fs = small_fs();
        fs.steg_create("vault", UAK, ObjectKind::Directory).unwrap();
        fs.create_in_hidden_dir("vault", "a", UAK, ObjectKind::File)
            .unwrap();
        assert!(matches!(
            fs.create_in_hidden_dir("vault", "a", UAK, ObjectKind::File),
            Err(StegError::AlreadyExists(_))
        ));
        // Creating inside a hidden *file* is a kind error.
        fs.steg_create("not-a-dir", UAK, ObjectKind::File).unwrap();
        assert!(matches!(
            fs.create_in_hidden_dir("not-a-dir", "x", UAK, ObjectKind::File),
            Err(StegError::WrongObjectKind { .. })
        ));
    }

    #[test]
    fn sharing_between_two_users() {
        let fs = small_fs();
        let owner_uak = "owner key";
        let recipient_uak = "recipient key";
        let recipient_keys = stegfs_crypto::rsa::RsaKeyPair::generate(512, b"recipient rsa");

        fs.steg_create("design-doc", owner_uak, ObjectKind::File)
            .unwrap();
        fs.write_hidden_with_key("design-doc", owner_uak, b"shared contents")
            .unwrap();

        let envelope = fs
            .steg_getentry("design-doc", owner_uak, &recipient_keys.public)
            .unwrap();
        let added = fs
            .steg_addentry(&envelope, &recipient_keys.private, recipient_uak)
            .unwrap();
        assert_eq!(added, "design-doc");

        // The recipient now reads (and can update) the same object.
        assert_eq!(
            fs.read_hidden_with_key("design-doc", recipient_uak)
                .unwrap(),
            b"shared contents"
        );
        fs.write_hidden_with_key("design-doc", recipient_uak, b"recipient edit")
            .unwrap();
        assert_eq!(
            fs.read_hidden_with_key("design-doc", owner_uak).unwrap(),
            b"recipient edit"
        );
    }

    #[test]
    fn revocation_cuts_off_old_fak() {
        let fs = small_fs();
        let owner_uak = "owner key";
        let recipient_uak = "recipient key";
        let recipient_keys = stegfs_crypto::rsa::RsaKeyPair::generate(512, b"recipient rsa 2");

        fs.steg_create("contract", owner_uak, ObjectKind::File)
            .unwrap();
        fs.write_hidden_with_key("contract", owner_uak, b"v1")
            .unwrap();
        let envelope = fs
            .steg_getentry("contract", owner_uak, &recipient_keys.public)
            .unwrap();
        fs.steg_addentry(&envelope, &recipient_keys.private, recipient_uak)
            .unwrap();
        assert_eq!(
            fs.read_hidden_with_key("contract", recipient_uak).unwrap(),
            b"v1"
        );

        fs.revoke_sharing("contract", owner_uak).unwrap();

        // Owner still has access (under the new FAK)...
        assert_eq!(
            fs.read_hidden_with_key("contract", owner_uak).unwrap(),
            b"v1"
        );
        // ...but the recipient's stale entry no longer resolves.
        assert!(fs
            .read_hidden_with_key("contract", recipient_uak)
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn survives_unmount_and_remount() {
        let fs = small_fs();
        fs.write_plain("/p.txt", b"plain").unwrap();
        fs.steg_create("h", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("h", UAK, b"hidden across remount")
            .unwrap();
        let dev = fs.unmount().unwrap();

        let fs = StegFs::mount(dev, StegParams::for_tests()).unwrap();
        assert_eq!(fs.read_plain("/p.txt").unwrap(), b"plain");
        assert_eq!(
            fs.read_hidden_with_key("h", UAK).unwrap(),
            b"hidden across remount"
        );
    }

    #[test]
    fn backup_and_recovery_preserve_hidden_and_plain_data() {
        let fs = small_fs();
        fs.write_plain("/plain.txt", b"plain data").unwrap();
        fs.create_plain_dir("/dir").unwrap();
        fs.write_plain("/dir/nested.txt", b"nested").unwrap();
        fs.steg_create("secret", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("secret", UAK, b"hidden survives backup")
            .unwrap();

        let image = fs.steg_backup(b"admin key").unwrap();

        // Recover onto a brand-new device.
        let fresh = MemBlockDevice::new(1024, 8192);
        let recovered =
            StegFs::steg_recovery(fresh, &image, b"admin key", StegParams::for_tests()).unwrap();
        assert_eq!(recovered.read_plain("/plain.txt").unwrap(), b"plain data");
        assert_eq!(recovered.read_plain("/dir/nested.txt").unwrap(), b"nested");
        assert_eq!(
            recovered.read_hidden_with_key("secret", UAK).unwrap(),
            b"hidden survives backup"
        );
        // Wrong admin key is rejected outright.
        assert!(StegFs::steg_recovery(
            MemBlockDevice::new(1024, 8192),
            &image,
            b"wrong key",
            StegParams::for_tests()
        )
        .is_err());
    }

    #[test]
    fn backup_rejects_mismatched_geometry() {
        let fs = small_fs();
        let image = fs.steg_backup(b"k").unwrap();
        let smaller = MemBlockDevice::new(1024, 4096);
        assert!(matches!(
            StegFs::steg_recovery(smaller, &image, b"k", StegParams::for_tests()),
            Err(StegError::InvalidBackup(_))
        ));
    }

    #[test]
    fn touch_dummy_files_rewrites_them() {
        let fs = small_fs();
        let touched = fs.touch_dummy_files().unwrap();
        assert_eq!(touched, StegParams::for_tests().dummy_file_count);
        // Space accounting stays sane afterwards.
        let report = fs.space_report().unwrap();
        assert!(report.hidden_blocks > 0);
        assert!(report.free_blocks > 0);
    }

    #[test]
    fn space_report_tracks_hidden_growth() {
        let fs = small_fs();
        let before = fs.space_report().unwrap();
        fs.steg_create("grow", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("grow", UAK, &vec![7u8; 100 * 1024])
            .unwrap();
        let after = fs.space_report().unwrap();
        assert!(after.hidden_blocks >= before.hidden_blocks + 100);
        assert!(after.free_blocks < before.free_blocks);
        assert_eq!(after.abandoned_blocks, before.abandoned_blocks);
        assert!(after.free_fraction() < before.free_fraction());
    }

    #[test]
    fn access_hierarchy_supports_selective_disclosure() {
        use crate::keys::AccessHierarchy;
        let fs = small_fs();
        let hierarchy = AccessHierarchy::new(vec![
            "level-0 everyday".to_string(),
            "level-1 sensitive".to_string(),
        ]);
        fs.steg_create("addresses", hierarchy.uak_at(0).unwrap(), ObjectKind::File)
            .unwrap();
        fs.steg_create(
            "real-budget",
            hierarchy.uak_at(1).unwrap(),
            ObjectKind::File,
        )
        .unwrap();

        // Signing on at level 0 discloses only the innocuous file.
        let visible: Vec<String> = hierarchy
            .visible_at(0)
            .unwrap()
            .iter()
            .flat_map(|uak| fs.list_hidden(uak).unwrap())
            .map(|(name, _)| name)
            .collect();
        assert_eq!(visible, vec!["addresses"]);

        // Level 1 sees both.
        let visible: Vec<String> = hierarchy
            .visible_at(1)
            .unwrap()
            .iter()
            .flat_map(|uak| fs.list_hidden(uak).unwrap())
            .map(|(name, _)| name)
            .collect();
        assert_eq!(visible.len(), 2);
    }

    #[test]
    fn invalid_names_rejected() {
        let fs = small_fs();
        assert!(matches!(
            fs.steg_create("", UAK, ObjectKind::File),
            Err(StegError::InvalidName(_))
        ));
        assert!(matches!(
            fs.steg_create("bad\0name", UAK, ObjectKind::File),
            Err(StegError::InvalidName(_))
        ));
    }

    #[test]
    fn write_to_hidden_directory_as_file_is_rejected() {
        let fs = small_fs();
        fs.steg_create("d", UAK, ObjectKind::Directory).unwrap();
        assert!(matches!(
            fs.write_hidden_with_key("d", UAK, b"nope"),
            Err(StegError::WrongObjectKind { .. })
        ));
    }

    #[test]
    fn delete_hidden_removes_object_and_frees_space() {
        let fs = small_fs();
        fs.steg_create("temp", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("temp", UAK, &vec![1u8; 50 * 1024])
            .unwrap();
        let before = fs.space_report().unwrap();
        fs.delete_hidden("temp", UAK).unwrap();
        let after = fs.space_report().unwrap();
        assert!(after.free_blocks > before.free_blocks);
        assert!(fs
            .read_hidden_with_key("temp", UAK)
            .unwrap_err()
            .is_not_found());
        assert!(fs.list_hidden(UAK).unwrap().is_empty());
    }

    #[test]
    fn write_at_handle_extends_and_patches() {
        let fs = small_fs();
        fs.steg_create("grow", UAK, ObjectKind::File).unwrap();
        let mut h = fs.open_hidden("grow", UAK).unwrap();

        // Writing into an empty object extends it.
        fs.write_at_handle(&mut h, 0, b"hello world").unwrap();
        assert_eq!(h.size(), 11);
        assert_eq!(
            fs.read_hidden_with_key("grow", UAK).unwrap(),
            b"hello world"
        );

        // In-bounds writes patch in place.
        fs.write_at_handle(&mut h, 6, b"stegf").unwrap();
        assert_eq!(
            fs.read_hidden_with_key("grow", UAK).unwrap(),
            b"hello stegf"
        );

        // Writing past the end zero-fills the gap.
        fs.write_at_handle(&mut h, 20, b"tail").unwrap();
        assert_eq!(h.size(), 24);
        let data = fs.read_hidden_with_key("grow", UAK).unwrap();
        assert_eq!(&data[..11], b"hello stegf");
        assert_eq!(&data[11..20], &[0u8; 9]);
        assert_eq!(&data[20..], b"tail");

        // Empty writes never extend.
        fs.write_at_handle(&mut h, 1000, b"").unwrap();
        assert_eq!(h.size(), 24);
    }

    #[test]
    fn truncate_handle_shrinks_and_zero_extends() {
        let fs = small_fs();
        fs.steg_create("t", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("t", UAK, &vec![7u8; 5000])
            .unwrap();
        let mut h = fs.open_hidden("t", UAK).unwrap();

        fs.truncate_handle(&mut h, 100).unwrap();
        assert_eq!(h.size(), 100);
        assert_eq!(fs.read_hidden_with_key("t", UAK).unwrap(), vec![7u8; 100]);

        fs.truncate_handle(&mut h, 300).unwrap();
        let data = fs.read_hidden_with_key("t", UAK).unwrap();
        assert_eq!(&data[..100], &[7u8; 100][..]);
        assert_eq!(&data[100..], &[0u8; 200][..]);

        // Truncating a directory is a kind error.
        fs.steg_create("d", UAK, ObjectKind::Directory).unwrap();
        let mut hd = fs.open_hidden("d", UAK).unwrap();
        assert!(matches!(
            fs.truncate_handle(&mut hd, 0),
            Err(StegError::WrongObjectKind { .. })
        ));
    }

    #[test]
    fn rename_hidden_updates_directory_only() {
        let fs = small_fs();
        fs.steg_create("old-name", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("old-name", UAK, b"payload")
            .unwrap();
        let before = fs.lookup_entry("old-name", UAK).unwrap();

        fs.rename_hidden("old-name", "new-name", UAK).unwrap();
        assert!(fs
            .read_hidden_with_key("old-name", UAK)
            .unwrap_err()
            .is_not_found());
        assert_eq!(
            fs.read_hidden_with_key("new-name", UAK).unwrap(),
            b"payload"
        );

        // Physical identity is preserved — only the directory entry changed.
        let after = fs.lookup_entry("new-name", UAK).unwrap();
        assert_eq!(after.physical_name, before.physical_name);
        assert_eq!(after.fak, before.fak);

        // Conflicts and bad names are rejected.
        fs.steg_create("other", UAK, ObjectKind::File).unwrap();
        assert!(matches!(
            fs.rename_hidden("new-name", "other", UAK),
            Err(StegError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.rename_hidden("new-name", "", UAK),
            Err(StegError::InvalidName(_))
        ));
        assert!(matches!(
            fs.rename_hidden("ghost", "x", UAK),
            Err(StegError::NotFound(_))
        ));
    }

    #[test]
    fn open_hidden_entry_skips_directory_walk() {
        let fs = small_fs();
        fs.steg_create("cached", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("cached", UAK, b"via entry")
            .unwrap();
        let entry = fs.lookup_entry("cached", UAK).unwrap();
        // The entry alone is enough to open and read — no UAK needed.
        let h = fs.open_hidden_entry(&entry).unwrap();
        assert_eq!(h.kind(), ObjectKind::File);
        assert_eq!(fs.read_range_at(&h, 0, 64).unwrap(), b"via entry");
    }

    #[test]
    fn hidden_range_reads_and_writes() {
        let fs = small_fs();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        fs.steg_create("ranged", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("ranged", UAK, &data).unwrap();
        assert_eq!(
            fs.read_hidden_range_with_key("ranged", UAK, 2000, 500)
                .unwrap(),
            &data[2000..2500]
        );
        fs.write_hidden_range_with_key("ranged", UAK, 2048, &[9u8; 1024])
            .unwrap();
        let mut expected = data.clone();
        expected[2048..3072].copy_from_slice(&[9u8; 1024]);
        assert_eq!(fs.read_hidden_with_key("ranged", UAK).unwrap(), expected);
    }

    #[test]
    fn large_hidden_file_roundtrip() {
        let fs = StegFs::format(MemBlockDevice::new(1024, 16384), StegParams::for_tests()).unwrap();
        let data: Vec<u8> = (0..2 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
        fs.steg_create("big", UAK, ObjectKind::File).unwrap();
        fs.write_hidden_with_key("big", UAK, &data).unwrap();
        assert_eq!(fs.read_hidden_with_key("big", UAK).unwrap(), data);
    }

    #[test]
    fn shared_reference_api_serves_many_threads() {
        use std::sync::Arc;
        let fs = Arc::new(
            StegFs::format(MemBlockDevice::new(1024, 16384), StegParams::for_tests()).unwrap(),
        );
        let threads = 6usize;
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let fs = Arc::clone(&fs);
                std::thread::spawn(move || {
                    // Each thread its own UAK: disjoint hidden namespaces.
                    let uak = format!("thread key {t}");
                    for round in 0..4 {
                        let name = format!("obj-{round}");
                        fs.steg_create(&name, &uak, ObjectKind::File).unwrap();
                        let data = vec![(t * 37 + round) as u8; 4000 + round * 512];
                        fs.write_hidden_with_key(&name, &uak, &data).unwrap();
                        assert_eq!(fs.read_hidden_with_key(&name, &uak).unwrap(), data);
                    }
                    fs.delete_hidden("obj-0", &uak).unwrap();
                    assert_eq!(fs.list_hidden(&uak).unwrap().len(), 3);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // Every namespace still resolves only under its own key.
        for t in 0..threads {
            let uak = format!("thread key {t}");
            assert_eq!(fs.list_hidden(&uak).unwrap().len(), 3);
        }
        assert!(fs.list_hidden("stranger").unwrap().is_empty());
    }

    // ------------------------------------------------------------------
    // Read-repair (online self-healing)
    // ------------------------------------------------------------------

    fn smash_raw(fs: &StegFs<MemBlockDevice>, block: u64, seed: u8) {
        let junk: Vec<u8> = (0..fs.plain_fs().block_size())
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
            .collect();
        fs.plain_fs().write_raw_block(block, &junk).unwrap();
    }

    fn raw_bytes(fs: &StegFs<MemBlockDevice>, blocks: &[u64]) -> Vec<u8> {
        let mut buf = vec![0u8; blocks.len() * fs.plain_fs().block_size()];
        fs.plain_fs()
            .read_raw_blocks_into(blocks, &mut buf)
            .unwrap();
        buf
    }

    #[test]
    fn degraded_read_queues_and_drains_a_repair() {
        let fs = small_fs();
        fs.steg_create_with_policy(
            "cfg.dat",
            UAK,
            ObjectKind::File,
            Policy::Disperse { m: 2, n: 4 },
        )
        .unwrap();
        let data: Vec<u8> = (0..6 * 1024u32).map(|i| (i % 251) as u8).collect();
        fs.write_hidden_with_key("cfg.dat", UAK, &data).unwrap();
        let groups = fs.hidden_share_extents("cfg.dat", UAK).unwrap();
        let victims = [groups[0][1], groups[1][2]];
        let before = raw_bytes(&fs, &victims);
        for (i, &v) in victims.iter().enumerate() {
            smash_raw(&fs, v, i as u8);
        }
        fs.purge_read_caches();
        assert_eq!(fs.read_hidden_with_key("cfg.dat", UAK).unwrap(), data);
        assert_eq!(fs.pending_repairs(), 1, "degraded read queues one ticket");
        // A storm of degraded reads against the same object dedups.
        fs.purge_read_caches();
        assert_eq!(fs.read_hidden_with_key("cfg.dat", UAK).unwrap(), data);
        assert_eq!(fs.pending_repairs(), 1);

        let drain = fs.process_repairs(8);
        assert_eq!(
            drain,
            RepairDrain {
                processed: 1,
                completed: 1,
                failed: 0
            }
        );
        assert_eq!(fs.pending_repairs(), 0);
        assert_eq!(
            raw_bytes(&fs, &victims),
            before,
            "read-repair restores the image byte-identically"
        );
        let summary = fs.obs().repair.summary();
        assert_eq!(summary.queued, 1, "the queued counter is post-dedup");
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.failed, 0);
        // The volume has converged: a fresh cold read is healthy.
        fs.purge_read_caches();
        assert_eq!(fs.read_hidden_with_key("cfg.dat", UAK).unwrap(), data);
        assert_eq!(fs.pending_repairs(), 0);
    }

    #[test]
    fn degraded_metadata_read_queues_and_heals() {
        let fs = small_fs();
        fs.steg_create_with_policy(
            "meta.dat",
            UAK,
            ObjectKind::File,
            Policy::Disperse { m: 2, n: 4 },
        )
        .unwrap();
        let data = vec![0x5au8; 5 * 1024];
        fs.write_hidden_with_key("meta.dat", UAK, &data).unwrap();
        let entry = fs.lookup_entry("meta.dat", UAK).unwrap();
        let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
        let obj = hidden::open(fs.plain_fs(), &entry.physical_name, &keys, fs.params()).unwrap();
        let victims = [obj.header.header_replicas[0], obj.header.inode_chain];
        let before = raw_bytes(&fs, &victims);
        for (i, &v) in victims.iter().enumerate() {
            smash_raw(&fs, v, 0x80 + i as u8);
        }
        fs.purge_read_caches();
        assert_eq!(
            fs.read_hidden_with_key("meta.dat", UAK).unwrap(),
            data,
            "metadata replicas carry the read"
        );
        assert_eq!(fs.pending_repairs(), 1);
        let drain = fs.process_repairs(1);
        assert_eq!(drain.completed, 1);
        assert_eq!(drain.failed, 0);
        assert_eq!(
            raw_bytes(&fs, &victims),
            before,
            "header and chain rebuild byte-identically"
        );
    }

    #[test]
    fn repair_never_resurrects_a_superseded_incarnation() {
        let fs = small_fs();
        fs.steg_create_with_policy(
            "race.dat",
            UAK,
            ObjectKind::File,
            Policy::Disperse { m: 2, n: 4 },
        )
        .unwrap();
        let old = vec![0x11u8; 4 * 1024];
        fs.write_hidden_with_key("race.dat", UAK, &old).unwrap();
        let groups = fs.hidden_share_extents("race.dat", UAK).unwrap();
        smash_raw(&fs, groups[0][0], 7);
        fs.purge_read_caches();
        assert_eq!(fs.read_hidden_with_key("race.dat", UAK).unwrap(), old);
        assert_eq!(
            fs.pending_repairs(),
            1,
            "ticket queued against incarnation 1"
        );

        // A concurrent writer replaces the object before the drain runs.
        let new = vec![0x22u8; 7 * 1024];
        fs.write_hidden_with_key("race.dat", UAK, &new).unwrap();

        let drain = fs.process_repairs(4);
        assert_eq!(drain.processed, 1);
        assert_eq!(drain.failed, 0);
        // The drain re-opened fresh: the current incarnation stays current.
        assert_eq!(fs.read_hidden_with_key("race.dat", UAK).unwrap(), new);

        // A ticket whose object was deleted resolves as completed too.
        smash_raw(
            &fs,
            fs.hidden_share_extents("race.dat", UAK).unwrap()[0][1],
            9,
        );
        fs.purge_read_caches();
        assert_eq!(fs.read_hidden_with_key("race.dat", UAK).unwrap(), new);
        assert_eq!(fs.pending_repairs(), 1);
        fs.delete_hidden("race.dat", UAK).unwrap();
        let drain = fs.process_repairs(4);
        assert_eq!(drain.processed, 1);
        assert_eq!(drain.failed, 0);
    }

    #[test]
    fn rebuild_lost_directory_from_shadow_listing() {
        let fs = small_fs();
        fs.steg_create("vault", UAK, ObjectKind::Directory).unwrap();
        fs.create_in_hidden_dir("vault", "a", UAK, ObjectKind::File)
            .unwrap();
        fs.create_in_hidden_dir("vault", "b", UAK, ObjectKind::File)
            .unwrap();
        let parent = fs.lookup_entry("vault", UAK).unwrap();
        let a = fs
            .read_hidden_dir_listing(&parent)
            .unwrap()
            .find("a")
            .cloned()
            .unwrap();
        let payload = vec![0x5au8; 9 * 1024];
        fs.write_hidden_entry(&a, &payload).unwrap();

        // A live directory is never clobbered from its shadow.
        assert!(matches!(
            fs.rebuild_dir_from_shadow(&parent),
            Err(StegError::AlreadyExists(_))
        ));

        // Destroy every header replica of the directory object: damage past
        // the metadata redundancy, so the listing is unreachable by key.
        let keys = ObjectKeys::derive(&parent.physical_name, &parent.fak);
        let obj = hidden::open(fs.plain_fs(), &parent.physical_name, &keys, fs.params()).unwrap();
        let headers = if obj.header.header_replicas.is_empty() {
            vec![obj.header_block]
        } else {
            obj.header.header_replicas.clone()
        };
        for (i, &h) in headers.iter().enumerate() {
            smash_raw(&fs, h, i as u8);
        }
        fs.purge_read_caches();
        assert!(fs.read_hidden_dir_listing(&parent).is_err());

        // The shadow brings back the listing in place; both children still
        // probe, so nothing is dropped and the file's bytes survive.
        let rebuilt = fs.rebuild_dir_from_shadow(&parent).unwrap();
        assert_eq!(rebuilt.children_relinked, 2);
        assert!(rebuilt.children_dropped.is_empty());
        let listing = fs.read_hidden_dir_listing(&parent).unwrap();
        assert!(listing.find("a").is_some() && listing.find("b").is_some());
        assert_eq!(fs.read_hidden_entry(&a).unwrap(), payload);

        // Lose the directory again *and* child b's object: the rebuild
        // re-links the survivor and reports the dangling child by name.
        let b = listing.find("b").cloned().unwrap();
        let b_keys = ObjectKeys::derive(&b.physical_name, &b.fak);
        let b_obj = hidden::open(fs.plain_fs(), &b.physical_name, &b_keys, fs.params()).unwrap();
        let b_headers = if b_obj.header.header_replicas.is_empty() {
            vec![b_obj.header_block]
        } else {
            b_obj.header.header_replicas.clone()
        };
        for (i, &h) in b_headers.iter().enumerate() {
            smash_raw(&fs, h, 0x40 + i as u8);
        }
        let obj = hidden::open(fs.plain_fs(), &parent.physical_name, &keys, fs.params()).unwrap();
        let headers = if obj.header.header_replicas.is_empty() {
            vec![obj.header_block]
        } else {
            obj.header.header_replicas.clone()
        };
        for (i, &h) in headers.iter().enumerate() {
            smash_raw(&fs, h, 0x80 + i as u8);
        }
        fs.purge_read_caches();
        let rebuilt = fs.rebuild_dir_from_shadow(&parent).unwrap();
        assert_eq!(rebuilt.children_relinked, 1);
        assert_eq!(rebuilt.children_dropped, vec!["b".to_string()]);
        let listing = fs.read_hidden_dir_listing(&parent).unwrap();
        assert!(listing.find("a").is_some() && listing.find("b").is_none());
        assert_eq!(fs.read_hidden_entry(&a).unwrap(), payload);
    }
}
