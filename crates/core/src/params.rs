//! StegFS configuration parameters (Table 1 of the paper).

use crate::coding::Policy;
use crate::error::{StegError, StegResult};
use crate::header::FREE_POOL_CAPACITY;

/// Tunable parameters of a StegFS volume, matching Table 1 of the paper.
///
/// | Paper symbol | Field | Default |
/// |---|---|---|
/// | `P_abandon`  | [`abandoned_pct`](Self::abandoned_pct)   | 1 % |
/// | `FB_min`     | [`free_blocks_min`](Self::free_blocks_min) | 0 |
/// | `FB_max`     | [`free_blocks_max`](Self::free_blocks_max) | 10 |
/// | `N_dummy`    | [`dummy_file_count`](Self::dummy_file_count) | 10 |
/// | `S_dummy`    | [`dummy_file_size`](Self::dummy_file_size) | 1 MB |
#[derive(Debug, Clone, PartialEq)]
pub struct StegParams {
    /// Percentage of data-region blocks abandoned at format time (marked
    /// allocated in the bitmap but belonging to nothing).
    pub abandoned_pct: f64,
    /// Minimum number of free blocks held inside a hidden file; when the
    /// internal pool falls below this bound it is topped up.
    pub free_blocks_min: usize,
    /// Maximum number of free blocks held inside a hidden file; truncation
    /// returns blocks to the volume once the pool exceeds this bound.
    pub free_blocks_max: usize,
    /// Number of dummy hidden files created at format time and refreshed by
    /// [`crate::StegFs::touch_dummy_files`].
    pub dummy_file_count: usize,
    /// Size in bytes of each dummy hidden file.
    pub dummy_file_size: u64,
    /// Upper bound on locator probes before a lookup is declared
    /// unsuccessful.  Not in the paper (the kernel driver searches until it
    /// wraps); bounded here so a wrong key terminates promptly.
    pub max_locator_probes: usize,
    /// Volume seed: drives FAK generation, abandoned-block placement, dummy
    /// file keys and the random fill.  Fixing it makes experiments
    /// reproducible; a deployment would randomise it.
    pub volume_seed: u64,
    /// Whether to fill the volume with random patterns at format time.
    /// Required for the hiding property; the performance experiments may
    /// disable it to shorten set-up, as it does not affect timing results.
    pub random_fill: bool,
    /// Blocks reserved for the write-ahead journal at format time (0 = no
    /// journal, the paper's original write-through behaviour).  With a
    /// journal, every multi-block update — plain or hidden — is
    /// crash-atomic, and the region must be sized larger than the largest
    /// single update (a file rewrite of N blocks needs roughly N + N/40 + 2
    /// slots); [`crate::StegFs::format`] validates this against
    /// [`dummy_file_size`](Self::dummy_file_size).
    pub journal_blocks: u64,
    /// Capacity of the RAM-only read-path cache, in decrypted data blocks
    /// (0 disables it, restoring the paper's literal decrypt-on-every-read
    /// behaviour).  The cache is session-scoped and purged at sign-off; it
    /// never changes what reaches the disk — see [`crate::readcache`] for
    /// the full contract.
    pub readpath_cache_blocks: usize,
    /// Whether the RAM-only observability registry (`stegfs-obs`) collects
    /// anything.  The instrumentation is always compiled in; with this
    /// `false` every histogram has zero shards, no clock is ever read and
    /// every record call is a branch-and-return.  Either way nothing
    /// observable reaches the disk and metric names/shapes are static, so
    /// the setting has no bearing on deniability — only on the (small)
    /// collection overhead.
    pub obs_enabled: bool,
    /// Default durability policy for user-created hidden objects (files
    /// created through the `steg_*` API and hidden directories).  Dummy
    /// files and UAK directories always stay [`Policy::Plain`]; individual
    /// objects can override this via
    /// [`crate::StegFs::steg_create_with_policy`].  Shares are ordinary
    /// encrypted hidden blocks on disk, so the setting is invisible to an
    /// adversary.
    pub hidden_policy: Policy,
    /// Run the background checkpoint daemon on journaled volumes: a thread
    /// that advances the journal tail and anchors off the commit path, so
    /// foreground writers rarely pay for ring reclamation themselves.  The
    /// daemon writes nothing a foreground `sync` would not write (the same
    /// checksummed anchor records), so it has no bearing on deniability.
    /// No-op without a journal.  The front-ends consult this at mount time;
    /// [`crate::StegFs::start_checkpoint_daemon`] starts it explicitly.
    pub checkpoint_daemon: bool,
    /// Capacity (events) of the RAM-only trace ring; `0` disables the ring
    /// entirely while leaving the rest of the observability registry
    /// untouched.  The ring wraps when full (overwrites are counted, so
    /// truncation is visible in snapshots) and zeroizes at sign-off.  Like
    /// [`obs_enabled`](Self::obs_enabled), the setting never changes what
    /// reaches the disk.
    pub trace_capacity: usize,
}

impl Default for StegParams {
    fn default() -> Self {
        StegParams {
            abandoned_pct: 1.0,
            free_blocks_min: 0,
            free_blocks_max: 10,
            dummy_file_count: 10,
            dummy_file_size: 1024 * 1024,
            max_locator_probes: 100_000,
            volume_seed: 0x5743_2003,
            random_fill: true,
            journal_blocks: 0,
            readpath_cache_blocks: 4096,
            obs_enabled: true,
            hidden_policy: Policy::Plain,
            checkpoint_daemon: false,
            trace_capacity: stegfs_obs::TRACE_CAPACITY,
        }
    }
}

impl StegParams {
    /// Parameters suitable for fast unit tests: tiny dummy files, no random
    /// fill, small abandoned percentage.
    pub fn for_tests() -> Self {
        StegParams {
            abandoned_pct: 1.0,
            free_blocks_min: 0,
            free_blocks_max: 4,
            dummy_file_count: 2,
            dummy_file_size: 4 * 1024,
            max_locator_probes: 50_000,
            volume_seed: 42,
            random_fill: false,
            journal_blocks: 0,
            readpath_cache_blocks: 1024,
            obs_enabled: true,
            hidden_policy: Policy::Plain,
            checkpoint_daemon: false,
            trace_capacity: stegfs_obs::TRACE_CAPACITY,
        }
    }

    /// Parameters for the performance experiments: paper defaults but without
    /// the (timing-irrelevant) random fill so gigabyte volumes format fast.
    pub fn for_experiments(seed: u64) -> Self {
        StegParams {
            random_fill: false,
            journal_blocks: 0,
            volume_seed: seed,
            ..StegParams::default()
        }
    }

    /// Validate the parameter combination.
    pub fn validate(&self) -> StegResult<()> {
        if !(0.0..=50.0).contains(&self.abandoned_pct) {
            return Err(StegError::InvalidParameter(format!(
                "abandoned_pct must be within [0, 50], got {}",
                self.abandoned_pct
            )));
        }
        if self.free_blocks_max > FREE_POOL_CAPACITY {
            return Err(StegError::InvalidParameter(format!(
                "free_blocks_max {} exceeds header capacity {}",
                self.free_blocks_max, FREE_POOL_CAPACITY
            )));
        }
        if self.free_blocks_min > self.free_blocks_max {
            return Err(StegError::InvalidParameter(format!(
                "free_blocks_min {} exceeds free_blocks_max {}",
                self.free_blocks_min, self.free_blocks_max
            )));
        }
        if self.max_locator_probes == 0 {
            return Err(StegError::InvalidParameter(
                "max_locator_probes must be positive".into(),
            ));
        }
        self.hidden_policy.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = StegParams::default();
        assert_eq!(p.abandoned_pct, 1.0);
        assert_eq!(p.free_blocks_min, 0);
        assert_eq!(p.free_blocks_max, 10);
        assert_eq!(p.dummy_file_count, 10);
        assert_eq!(p.dummy_file_size, 1024 * 1024);
        assert_eq!(p.trace_capacity, stegfs_obs::TRACE_CAPACITY);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn test_and_experiment_presets_validate() {
        assert!(StegParams::for_tests().validate().is_ok());
        assert!(StegParams::for_experiments(7).validate().is_ok());
    }

    #[test]
    fn invalid_combinations_rejected() {
        let p = StegParams {
            abandoned_pct: 90.0,
            ..StegParams::default()
        };
        assert!(p.validate().is_err());

        let p = StegParams {
            free_blocks_max: FREE_POOL_CAPACITY + 1,
            ..StegParams::default()
        };
        assert!(p.validate().is_err());

        let p = StegParams {
            free_blocks_min: 11,
            free_blocks_max: 10,
            ..StegParams::default()
        };
        assert!(p.validate().is_err());

        let p = StegParams {
            max_locator_probes: 0,
            ..StegParams::default()
        };
        assert!(p.validate().is_err());

        let p = StegParams {
            hidden_policy: Policy::Disperse { m: 4, n: 2 },
            ..StegParams::default()
        };
        assert!(p.validate().is_err());
    }
}
