//! # stegfs-core
//!
//! A faithful reproduction of **StegFS** (Pang, Tan, Zhou — "StegFS: A
//! Steganographic File System", ICDE 2003) as a user-space Rust library.
//!
//! StegFS lets users *hide* selected files and directories so that, without
//! the corresponding access keys, an adversary cannot establish that they
//! exist — even with complete knowledge of the file-system implementation and
//! raw access to the disk.  The key mechanisms, all implemented here:
//!
//! * **No central record of hidden objects.**  A hidden object's metadata
//!   lives in a *header block* inside the object itself
//!   ([`header::HiddenHeader`]); the central directory of the plain file
//!   system never mentions it.  Only the block bitmap shows its blocks as
//!   allocated.
//! * **Keyed pseudorandom location.**  The header block's address is found by
//!   recursively hashing a seed derived from the object's physical name and
//!   access key ([`locator`]); a 256-bit *signature* stored in the header
//!   confirms a match.
//! * **Indistinguishability.**  The volume is formatted with random fill;
//!   every block of a hidden object is encrypted (AES-256) so that allocated
//!   hidden blocks, *abandoned blocks* and *dummy hidden files* all look the
//!   same ([`stegfs::StegFs::format`]).
//! * **Internal free-block pools** inside each hidden file defeat
//!   bitmap-snapshot differencing ([`hidden`]).
//! * **UAK/FAK key hierarchy and sharing.**  Each hidden file is protected by
//!   its own random File Access Key; per-User Access Key directories map
//!   names to FAKs and are themselves hidden files ([`keys`], [`sharing`]).
//! * **Backup and recovery** that images only allocated-but-unaccounted
//!   blocks and copies plain files by content ([`backup`]).
//!
//! The public entry point is [`StegFs`]; the `steg_*` methods mirror the API
//! listed in Section 4 of the paper.
//!
//! ```
//! use stegfs_blockdev::MemBlockDevice;
//! use stegfs_core::{StegFs, StegParams, ObjectKind};
//!
//! // (StegParams::default() matches the paper's Table 1 — 1 MB dummy files,
//! // random fill — which wants a gigabyte-class volume; the test preset keeps
//! // this example snappy.)
//! let dev = MemBlockDevice::new(1024, 8192);
//! let fs = StegFs::format(dev, StegParams::for_tests()).unwrap();
//!
//! // A plain file, visible to everyone.
//! fs.write_plain("/readme.txt", b"nothing to see here").unwrap();
//!
//! // A hidden file, invisible without the user access key.
//! fs.steg_create("budget-2026", "correct horse battery staple", ObjectKind::File).unwrap();
//! fs.write_hidden_with_key("budget-2026", "correct horse battery staple", b"the real numbers").unwrap();
//!
//! let data = fs.read_hidden_with_key("budget-2026", "correct horse battery staple").unwrap();
//! assert_eq!(data, b"the real numbers");
//!
//! // With the wrong key the object cannot even be shown to exist.
//! assert!(fs.read_hidden_with_key("budget-2026", "wrong key").is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod coding;
pub mod crypt;
pub mod error;
pub mod header;
pub mod hidden;
pub mod keys;
pub mod locator;
pub mod params;
pub mod readcache;
pub mod session;
pub mod sharing;
pub mod stegfs;

pub use backup::BackupImage;
pub use coding::Policy;
pub use error::{StegError, StegResult};
pub use header::{HiddenHeader, ObjectKind};
pub use hidden::RepairOutcome;
pub use keys::{AccessHierarchy, DirectoryEntry, UakDirectory};
pub use params::StegParams;
pub use readcache::CacheStats;
pub use sharing::ShareEnvelope;
pub use stegfs::{HiddenHandle, SpaceReport, StegFs};
pub use stegfs_obs::TRACE_CAPACITY;
