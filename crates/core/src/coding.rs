//! Per-object durability policies: how a hidden object's logical bytes map
//! onto the physical blocks that store them.
//!
//! The paper's random-placement scheme survives *deletion pressure* (free
//! blocks being handed to plain files) but not *damage*: every hidden block
//! is unique, so one overwritten or bit-rotted extent kills the object.  The
//! Mnemosyne line of work (Hand & Roscoe, cited in §2 of the paper) names
//! the fix: disperse each object into `n` cipher-shares such that **any `m`
//! of them** reconstruct it — Rabin's Information Dispersal Algorithm,
//! implemented in [`stegfs_baselines::Ida`] and promoted here from a
//! benchmark baseline into the core write path.
//!
//! A [`Policy`] travels in the (encrypted, signature-checked) object header,
//! so every object picks its own durability/space trade-off:
//!
//! * [`Policy::Plain`] — one physical block per logical block, no
//!   redundancy.  The original layout and the wire-compatible default: its
//!   header tag is the byte that was previously reserved-as-zero.
//! * [`Policy::Replicate`] — `r` full copies of every logical block (the
//!   `m = 1` special case of IDA; expansion `r`).
//! * [`Policy::Disperse`] — `n` shares per group of `m` logical blocks, any
//!   `m` reconstruct (expansion `n / m` — Mnemosyne's space advantage over
//!   replication).
//!
//! **Deniability is unchanged.**  Shares are AES-CTR'd per block with the
//! object key exactly like plain hidden blocks, so on the raw device a
//! share extent is the same uniformly-random ciphertext as any other hidden
//! block, abandoned block, or random fill; the policy itself, the share
//! checksums and the group structure all live inside ciphertext that only
//! the access key reveals.  Wrong key still reads as never-existed.

use crate::error::{StegError, StegResult};
use stegfs_baselines::ida::Share;
use stegfs_baselines::Ida;
use stegfs_crypto::sha256::sha256_concat;

/// Durability policy of one hidden object, carried in its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// One physical block per logical block; no redundancy (the original
    /// StegFS layout, and the on-disk default).
    #[default]
    Plain,
    /// `r` full copies of every logical block (expansion `r`).
    Replicate(u8),
    /// `n` shares per group of `m` logical blocks; any `m` shares
    /// reconstruct the group (expansion `n / m`).
    Disperse {
        /// Shares required for reconstruction.
        m: u8,
        /// Shares stored.
        n: u8,
    },
}

impl Policy {
    /// `(m, n)`: shares required / shares stored per group.  `Plain` is the
    /// degenerate `(1, 1)` code; `Replicate(r)` is `(1, r)`.
    pub fn shares(&self) -> (usize, usize) {
        match *self {
            Policy::Plain => (1, 1),
            Policy::Replicate(r) => (1, r as usize),
            Policy::Disperse { m, n } => (m as usize, n as usize),
        }
    }

    /// True for every policy that stores shares (and per-share checksums)
    /// instead of the logical blocks themselves.
    pub fn is_coded(&self) -> bool {
        !matches!(self, Policy::Plain)
    }

    /// `(m, n)` for coded policies, `None` for `Plain`.
    pub fn coding(&self) -> Option<(usize, usize)> {
        if self.is_coded() {
            Some(self.shares())
        } else {
            None
        }
    }

    /// Storage expansion factor `n / m`.
    pub fn expansion(&self) -> f64 {
        let (m, n) = self.shares();
        n as f64 / m as f64
    }

    /// Extra share losses the object survives per group (`n - m`).
    pub fn tolerated_losses(&self) -> usize {
        let (m, n) = self.shares();
        n - m
    }

    /// Copies kept of each *metadata* block (header, chain node):
    /// `n - m + 1`, so metadata survives the same per-group loss budget as
    /// the data it indexes, capped at
    /// [`MAX_META_COPIES`](crate::header::MAX_META_COPIES).  `Plain` keeps
    /// a single copy.
    pub fn meta_copies(&self) -> usize {
        let (m, n) = self.shares();
        (n - m + 1).min(crate::header::MAX_META_COPIES)
    }

    /// Reject degenerate parameters (`Replicate(0)`, `m = 0`, `m > n`).
    pub fn validate(&self) -> StegResult<()> {
        let (m, n) = self.shares();
        if m == 0 || n == 0 || m > n || n > 255 {
            return Err(StegError::InvalidParameter(format!(
                "durability policy requires 0 < m <= n <= 255, got m={m}, n={n}"
            )));
        }
        Ok(())
    }

    /// Header encoding: `(tag, m, n)`.  Tag 0 is `Plain` and occupies the
    /// byte that older headers wrote as reserved-zero, so pre-policy volumes
    /// parse unchanged.
    pub(crate) fn to_header_bytes(self) -> (u8, u8, u8) {
        match self {
            Policy::Plain => (0, 0, 0),
            Policy::Replicate(r) => (1, 1, r),
            Policy::Disperse { m, n } => (2, m, n),
        }
    }

    /// Inverse of [`to_header_bytes`](Self::to_header_bytes).  Returns
    /// `None` for unknown tags or implausible `(m, n)` — callers treat that
    /// the same as a signature mismatch.
    pub(crate) fn from_header_bytes(tag: u8, m: u8, n: u8) -> Option<Policy> {
        match tag {
            0 => Some(Policy::Plain),
            1 if m == 1 && n >= 1 => Some(Policy::Replicate(n)),
            2 if m >= 1 && n >= m => Some(Policy::Disperse { m, n }),
            _ => None,
        }
    }
}

/// Domain-separated 8-byte checksum of one share's plaintext, stored next
/// to the share pointer in the (encrypted) inode chain.  Detects damaged
/// shares before they poison a reconstruction; an adversary never sees it.
pub(crate) fn share_checksum(share: &[u8]) -> u64 {
    let digest = sha256_concat(&[b"stegfs-share-csum", share]);
    u64::from_be_bytes(digest[..8].try_into().expect("8-byte prefix"))
}

/// Split one group's `m * block_size` plaintext bytes into `n` shares of
/// exactly `block_size` bytes each.  Deterministic: re-splitting the same
/// plaintext reproduces the original shares byte for byte, which is what
/// lets the scavenger rewrite a damaged share without touching the others.
pub(crate) fn split_group(group: &[u8], m: usize, n: usize) -> Vec<Share> {
    debug_assert_eq!(group.len() % m, 0);
    Ida::new(m, n).expect("validated policy").split(group)
}

/// Reconstruct one group's `m * block_size` plaintext bytes from at least
/// `m` checksum-verified shares (`(1-based share index, share bytes)`).
pub(crate) fn reconstruct_group(
    good: &[(u8, Vec<u8>)],
    m: usize,
    n: usize,
    block_size: usize,
) -> StegResult<Vec<u8>> {
    if good.len() < m {
        return Err(damage(format!(
            "share group has {} live shares, {m} required",
            good.len()
        )));
    }
    let ida = Ida::new(m, n).map_err(|e| damage(e.to_string()))?;
    let shares: Vec<Share> = good[..m]
        .iter()
        .map(|(index, data)| Share {
            index: *index,
            data: data.clone(),
        })
        .collect();
    ida.reconstruct(&shares, m * block_size)
        .map_err(|e| damage(e.to_string()))
}

/// Encode `data` into the concatenated share stream of a coded object:
/// `groups * n` blocks of `block_size` bytes, group-major (group 0's shares
/// 1..=n, then group 1's, ...), plus one checksum per share block.  The last
/// group is zero padded, exactly like the tail of a plain object's last
/// block.
pub(crate) fn encode_groups(
    data: &[u8],
    block_size: usize,
    m: usize,
    n: usize,
) -> (Vec<u8>, Vec<u64>) {
    use crate::readcache::scratch;
    let group_bytes = m * block_size;
    let groups = data.len().div_ceil(group_bytes);
    let mut out = scratch::take(groups * n * block_size);
    let mut csums = Vec::with_capacity(groups * n);
    let mut group_buf = scratch::take(group_bytes);
    for g in 0..groups {
        let start = g * group_bytes;
        let end = (start + group_bytes).min(data.len());
        group_buf[..end - start].copy_from_slice(&data[start..end]);
        group_buf[end - start..].fill(0);
        for (j, share) in split_group(&group_buf, m, n).into_iter().enumerate() {
            debug_assert_eq!(share.data.len(), block_size);
            csums.push(share_checksum(&share.data));
            out[(g * n + j) * block_size..(g * n + j + 1) * block_size]
                .copy_from_slice(&share.data);
        }
    }
    scratch::put(group_buf);
    (out, csums)
}

/// The error family for unrecoverable damage: a clean failure, carrying no
/// partial plaintext.
pub(crate) fn damage(msg: String) -> StegError {
    StegError::Fs(stegfs_fs::FsError::Corrupt(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_share_counts_and_expansion() {
        assert_eq!(Policy::Plain.shares(), (1, 1));
        assert_eq!(Policy::Replicate(3).shares(), (1, 3));
        assert_eq!(Policy::Disperse { m: 3, n: 5 }.shares(), (3, 5));
        assert!(!Policy::Plain.is_coded());
        assert!(Policy::Replicate(2).is_coded());
        assert_eq!(Policy::Plain.coding(), None);
        assert_eq!(Policy::Disperse { m: 2, n: 4 }.coding(), Some((2, 4)));
        assert_eq!(Policy::Replicate(3).expansion(), 3.0);
        assert_eq!(Policy::Disperse { m: 2, n: 4 }.tolerated_losses(), 2);
    }

    #[test]
    fn policy_validation() {
        assert!(Policy::Plain.validate().is_ok());
        assert!(Policy::Replicate(1).validate().is_ok());
        assert!(Policy::Disperse { m: 3, n: 3 }.validate().is_ok());
        assert!(Policy::Replicate(0).validate().is_err());
        assert!(Policy::Disperse { m: 0, n: 2 }.validate().is_err());
        assert!(Policy::Disperse { m: 4, n: 2 }.validate().is_err());
    }

    #[test]
    fn header_bytes_roundtrip() {
        for policy in [
            Policy::Plain,
            Policy::Replicate(2),
            Policy::Replicate(255),
            Policy::Disperse { m: 2, n: 4 },
            Policy::Disperse { m: 4, n: 4 },
        ] {
            let (tag, m, n) = policy.to_header_bytes();
            assert_eq!(Policy::from_header_bytes(tag, m, n), Some(policy));
        }
        // Legacy headers: tag 0 with zeroed trailing bytes is Plain.
        assert_eq!(Policy::from_header_bytes(0, 0, 0), Some(Policy::Plain));
        // Unknown tags and implausible parameters are rejected.
        assert_eq!(Policy::from_header_bytes(3, 2, 4), None);
        assert_eq!(Policy::from_header_bytes(1, 2, 4), None);
        assert_eq!(Policy::from_header_bytes(2, 5, 4), None);
        assert_eq!(Policy::from_header_bytes(2, 0, 4), None);
    }

    #[test]
    fn encode_reconstruct_roundtrip() {
        let bs = 64;
        let (m, n) = (3, 5);
        let data: Vec<u8> = (0..bs * 7 + 13).map(|i| (i * 37 % 251) as u8).collect();
        let (stream, csums) = encode_groups(&data, bs, m, n);
        let groups = data.len().div_ceil(m * bs);
        assert_eq!(stream.len(), groups * n * bs);
        assert_eq!(csums.len(), groups * n);
        let mut decoded = Vec::new();
        for g in 0..groups {
            // Any m of the n shares reconstruct — take the *last* m here.
            let good: Vec<(u8, Vec<u8>)> = (n - m..n)
                .map(|j| {
                    let block = &stream[(g * n + j) * bs..(g * n + j + 1) * bs];
                    assert_eq!(csums[g * n + j], share_checksum(block));
                    ((j + 1) as u8, block.to_vec())
                })
                .collect();
            decoded.extend(reconstruct_group(&good, m, n, bs).unwrap());
        }
        decoded.truncate(data.len());
        assert_eq!(decoded, data);
    }

    #[test]
    fn encode_is_deterministic() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 256) as u8).collect();
        let a = encode_groups(&data, 128, 2, 4);
        let b = encode_groups(&data, 128, 2, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn too_few_shares_fail_closed() {
        let bs = 32;
        let data = vec![0xabu8; bs * 2];
        let (stream, _) = encode_groups(&data, bs, 2, 3);
        let one = vec![(1u8, stream[..bs].to_vec())];
        let err = reconstruct_group(&one, 2, 3, bs).unwrap_err();
        assert!(err.to_string().contains("live shares"));
    }

    #[test]
    fn replication_shares_are_full_copies() {
        let bs = 16;
        let data = vec![7u8; bs];
        let (stream, _) = encode_groups(&data, bs, 1, 3);
        assert_eq!(stream.len(), 3 * bs);
        for j in 0..3 {
            assert_eq!(&stream[j * bs..(j + 1) * bs], &data[..]);
        }
    }
}
