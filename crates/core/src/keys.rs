//! User Access Keys, File Access Keys, and per-UAK directories (§3.2).
//!
//! Each hidden file is secured with its own randomly generated **File Access
//! Key (FAK)**, so a single file can be shared without exposing anything
//! else.  To keep track of their files, users hold one or more **User Access
//! Keys (UAK)**; for every UAK StegFS maintains a *directory* of
//! `(name, physical name, FAK)` entries — itself stored as a hidden file
//! encrypted under the UAK.
//!
//! UAKs may be organised into a *linear access hierarchy*: signing on at
//! level *i* reveals the directories of levels `0..=i`, so a user under
//! compulsion can disclose a low level and plausibly deny that higher levels
//! exist.

use crate::error::{StegError, StegResult};
use crate::header::ObjectKind;

/// Length in bytes of a File Access Key.
pub const FAK_LEN: usize = 32;

/// The reserved physical name under which each UAK's directory is stored.
/// Different UAKs produce different locator seeds and signatures, so all UAK
/// directories can share this name without colliding.
pub const UAK_DIRECTORY_NAME: &str = "stegfs:uak-directory";

/// One entry of a UAK directory: everything needed to find and decrypt one
/// hidden object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryEntry {
    /// The user-visible object name (what `steg_create` was given).
    pub name: String,
    /// The physical name fed to the locator (owner-qualified, so shared
    /// objects keep working for recipients).
    pub physical_name: String,
    /// The object's File Access Key.
    pub fak: [u8; FAK_LEN],
    /// File or directory.
    pub kind: ObjectKind,
}

impl DirectoryEntry {
    /// Serialise one entry (length-prefixed strings, fixed-size FAK).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let name = self.name.as_bytes();
        let phys = self.physical_name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(phys.len() as u16).to_be_bytes());
        out.extend_from_slice(phys);
        out.extend_from_slice(&self.fak);
        out.push(match self.kind {
            ObjectKind::File => 1,
            ObjectKind::Directory => 2,
        });
        out
    }

    /// Parse one entry starting at `data[*off..]`, advancing `off`.
    pub fn deserialize(data: &[u8], off: &mut usize) -> StegResult<Self> {
        let corrupt = || StegError::Fs(stegfs_fs::FsError::Corrupt("bad directory entry".into()));
        let take = |data: &[u8], off: &mut usize, n: usize| -> StegResult<Vec<u8>> {
            if data.len() < *off + n {
                return Err(corrupt());
            }
            let v = data[*off..*off + n].to_vec();
            *off += n;
            Ok(v)
        };
        let name_len = u16::from_be_bytes(take(data, off, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(data, off, name_len)?).map_err(|_| corrupt())?;
        let phys_len = u16::from_be_bytes(take(data, off, 2)?.try_into().unwrap()) as usize;
        let physical_name = String::from_utf8(take(data, off, phys_len)?).map_err(|_| corrupt())?;
        let fak: [u8; FAK_LEN] = take(data, off, FAK_LEN)?.try_into().unwrap();
        let kind = match take(data, off, 1)?[0] {
            1 => ObjectKind::File,
            2 => ObjectKind::Directory,
            _ => return Err(corrupt()),
        };
        Ok(DirectoryEntry {
            name,
            physical_name,
            fak,
            kind,
        })
    }
}

/// The decrypted contents of one UAK's directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UakDirectory {
    /// The entries, in insertion order.
    pub entries: Vec<DirectoryEntry>,
}

impl UakDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        UakDirectory::default()
    }

    /// Look up an entry by user-visible name.
    pub fn find(&self, name: &str) -> Option<&DirectoryEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Add an entry; fails if the name is already present.
    pub fn insert(&mut self, entry: DirectoryEntry) -> StegResult<()> {
        if self.find(&entry.name).is_some() {
            return Err(StegError::AlreadyExists(entry.name));
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Remove an entry by name, returning it.
    pub fn remove(&mut self, name: &str) -> Option<DirectoryEntry> {
        let idx = self.entries.iter().position(|e| e.name == name)?;
        Some(self.entries.remove(idx))
    }

    /// Serialise the whole directory.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.serialize());
        }
        out
    }

    /// Parse a directory produced by [`serialize`](Self::serialize).
    pub fn deserialize(data: &[u8]) -> StegResult<Self> {
        if data.len() < 4 {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "UAK directory truncated".into(),
            )));
        }
        let count = u32::from_be_bytes(data[..4].try_into().unwrap()) as usize;
        let mut off = 4usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            entries.push(DirectoryEntry::deserialize(data, &mut off)?);
        }
        Ok(UakDirectory { entries })
    }
}

/// A linear hierarchy of UAKs (§3.2): signing on at level `i` makes the
/// directories of levels `0..=i` visible.
#[derive(Debug, Clone)]
pub struct AccessHierarchy {
    uaks: Vec<String>,
}

impl AccessHierarchy {
    /// Build a hierarchy from UAKs ordered from the least to the most
    /// sensitive level.
    ///
    /// # Panics
    /// Panics if `uaks` is empty.
    pub fn new(uaks: Vec<String>) -> Self {
        assert!(!uaks.is_empty(), "a hierarchy needs at least one UAK");
        AccessHierarchy { uaks }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.uaks.len()
    }

    /// The UAK protecting the given level.
    pub fn uak_at(&self, level: usize) -> StegResult<&str> {
        self.uaks
            .get(level)
            .map(|s| s.as_str())
            .ok_or_else(|| StegError::InvalidParameter(format!("no access level {level}")))
    }

    /// All UAKs visible when signed on at `level` (levels `0..=level`).
    pub fn visible_at(&self, level: usize) -> StegResult<&[String]> {
        if level >= self.uaks.len() {
            return Err(StegError::InvalidParameter(format!(
                "no access level {level}"
            )));
        }
        Ok(&self.uaks[..=level])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, fak_byte: u8) -> DirectoryEntry {
        DirectoryEntry {
            name: name.to_string(),
            physical_name: format!("owner42:{name}"),
            fak: [fak_byte; FAK_LEN],
            kind: ObjectKind::File,
        }
    }

    #[test]
    fn entry_roundtrip() {
        let e = entry("budget-2026", 7);
        let bytes = e.serialize();
        let mut off = 0;
        assert_eq!(DirectoryEntry::deserialize(&bytes, &mut off).unwrap(), e);
        assert_eq!(off, bytes.len());
    }

    #[test]
    fn entry_rejects_truncation() {
        let bytes = entry("x", 1).serialize();
        for cut in [0usize, 1, 5, bytes.len() - 1] {
            let mut off = 0;
            assert!(
                DirectoryEntry::deserialize(&bytes[..cut], &mut off).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn directory_roundtrip() {
        let mut dir = UakDirectory::new();
        dir.insert(entry("a", 1)).unwrap();
        dir.insert(entry("b", 2)).unwrap();
        let mut dir_entry = entry("subdir", 3);
        dir_entry.kind = ObjectKind::Directory;
        dir.insert(dir_entry).unwrap();
        let bytes = dir.serialize();
        assert_eq!(UakDirectory::deserialize(&bytes).unwrap(), dir);
    }

    #[test]
    fn empty_directory_roundtrip() {
        let dir = UakDirectory::new();
        assert_eq!(UakDirectory::deserialize(&dir.serialize()).unwrap(), dir);
    }

    #[test]
    fn directory_rejects_garbage() {
        assert!(UakDirectory::deserialize(&[1, 2]).is_err());
        // Claims 5 entries but holds none.
        assert!(UakDirectory::deserialize(&[0, 0, 0, 5]).is_err());
    }

    #[test]
    fn insert_find_remove() {
        let mut dir = UakDirectory::new();
        dir.insert(entry("a", 1)).unwrap();
        assert!(dir.find("a").is_some());
        assert!(dir.find("b").is_none());
        assert!(matches!(
            dir.insert(entry("a", 9)),
            Err(StegError::AlreadyExists(_))
        ));
        let removed = dir.remove("a").unwrap();
        assert_eq!(removed.fak, [1u8; FAK_LEN]);
        assert!(dir.remove("a").is_none());
        assert!(dir.find("a").is_none());
    }

    #[test]
    fn hierarchy_levels() {
        let h = AccessHierarchy::new(vec![
            "everyday key".into(),
            "sensitive key".into(),
            "deniable key".into(),
        ]);
        assert_eq!(h.levels(), 3);
        assert_eq!(h.uak_at(0).unwrap(), "everyday key");
        assert_eq!(h.uak_at(2).unwrap(), "deniable key");
        assert!(h.uak_at(3).is_err());
        assert_eq!(h.visible_at(0).unwrap().len(), 1);
        assert_eq!(h.visible_at(2).unwrap().len(), 3);
        assert!(h.visible_at(5).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one UAK")]
    fn empty_hierarchy_panics() {
        AccessHierarchy::new(vec![]);
    }
}
