//! Keyed pseudorandom location of hidden-object headers.
//!
//! Creation: StegFS feeds a hash of the object's physical name and access key
//! into a pseudorandom block-number generator and "checks each successive
//! generated block number against the bitmap until the file system finds a
//! free block to store the header" (§3.1).
//!
//! Retrieval: the same sequence is walked again, this time looking "for the
//! first block number that is marked as assigned in the bitmap and contains a
//! matching file signature".  Earlier candidates may have been unavailable at
//! creation time (or may have been allocated to someone else since), which is
//! exactly why the signature is needed to confirm the match.
//!
//! A practical addition over the paper: only the first few AES blocks of a
//! candidate are decrypted to test the signature, so walking past allocated
//! blocks that belong to other objects stays cheap.

use crate::crypt::{ObjectKeys, SIGNATURE_LEN};
use crate::error::{StegError, StegResult};
use crate::header::HiddenHeader;
use crate::readcache::scratch;
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::prng::BlockLocator;
use stegfs_fs::PlainFs;

/// Number of leading bytes decrypted to test a candidate's signature.
/// Must cover the signature; rounded up to a whole AES block.
const PROBE_PREFIX: usize = SIGNATURE_LEN.next_multiple_of(16);

/// Build the candidate sequence for `(physical_name, keys)` over a volume of
/// `total_blocks` blocks.
pub fn candidate_sequence(
    physical_name: &str,
    keys: &ObjectKeys,
    total_blocks: u64,
) -> BlockLocator {
    BlockLocator::new(physical_name.as_bytes(), keys.locator_seed(), total_blocks)
}

/// Outcome of a successful header search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Located {
    /// Physical block number of the header.
    pub block: u64,
    /// Parsed header contents.
    pub header: HiddenHeader,
    /// How many candidates were examined before the header was found
    /// (reported by the ablation benchmarks).
    pub probes: usize,
}

/// Walk the candidate sequence until a *free data-region* block is found to
/// hold a new header.  Returns `(block, probes)`.
pub fn find_free_header_slot<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    max_probes: usize,
) -> StegResult<(u64, usize)> {
    let sb = fs.superblock().clone();
    let mut locator = candidate_sequence(physical_name, keys, sb.total_blocks);
    for probe in 1..=max_probes {
        let candidate = locator.next_candidate();
        if sb.in_data_region(candidate) && !fs.is_block_allocated(candidate) {
            return Ok((candidate, probe));
        }
    }
    // Either the volume is effectively full or max_probes is far too small.
    Err(StegError::NoSpace)
}

/// Walk the candidate sequence looking for an allocated block whose decrypted
/// signature matches `keys`.  Returns the parsed header.
///
/// Failure is reported as [`StegError::NotFound`] — indistinguishable from
/// "no such object", by design.
pub fn locate_header<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    max_probes: usize,
) -> StegResult<Located> {
    let sb = fs.superblock().clone();
    let block_size = fs.block_size();
    let mut locator = candidate_sequence(physical_name, keys, sb.total_blocks);
    for probe in 1..=max_probes {
        let candidate = locator.next_candidate();
        if !fs.is_block_allocated(candidate) {
            continue;
        }
        // The probe walk is the locator's hot loop: the candidate block goes
        // into a pooled scratch buffer and the signature test runs on a
        // stack-allocated prefix, so walking past other objects' blocks
        // allocates nothing.
        let mut raw = scratch::take(block_size);
        fs.read_raw_blocks_into(&[candidate], &mut raw)?;
        // Cheap first pass: decrypt only the signature prefix.
        let take = PROBE_PREFIX.min(block_size);
        let mut prefix = [0u8; PROBE_PREFIX];
        prefix[..take].copy_from_slice(&raw[..take]);
        keys.decrypt_block(candidate, &mut prefix[..take]);
        if !stegfs_crypto::ct::ct_eq(&prefix[..SIGNATURE_LEN], keys.signature()) {
            scratch::put(raw);
            continue;
        }
        // Full decrypt and parse.
        keys.decrypt_block(candidate, &mut raw);
        let header = HiddenHeader::parse_if_match(&raw, keys.signature(), sb.total_blocks);
        scratch::put(raw);
        if let Some(header) = header {
            return Ok(Located {
                block: candidate,
                header,
                probes: probe,
            });
        }
    }
    Err(StegError::NotFound(physical_name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjectKind;
    use stegfs_blockdev::MemBlockDevice;
    use stegfs_fs::{FormatOptions, PlainFs};

    fn test_fs() -> PlainFs<MemBlockDevice> {
        PlainFs::format(MemBlockDevice::new(1024, 4096), FormatOptions::default()).unwrap()
    }

    fn write_header_at(
        fs: &PlainFs<MemBlockDevice>,
        block: u64,
        keys: &ObjectKeys,
        kind: ObjectKind,
    ) {
        let header = HiddenHeader::new(*keys.signature(), kind);
        let mut buf = header.serialize(fs.block_size());
        keys.encrypt_block(block, &mut buf);
        fs.allocate_specific_block(block).unwrap();
        fs.write_raw_block(block, &buf).unwrap();
    }

    #[test]
    fn free_slot_is_deterministic_for_same_name_and_key() {
        let fs = test_fs();
        let keys = ObjectKeys::derive("u1:/secret", b"key");
        let (a, probes_a) = find_free_header_slot(&fs, "u1:/secret", &keys, 1000).unwrap();
        let (b, probes_b) = find_free_header_slot(&fs, "u1:/secret", &keys, 1000).unwrap();
        assert_eq!(a, b);
        assert_eq!(probes_a, probes_b);
        assert!(fs.superblock().in_data_region(a));
    }

    #[test]
    fn free_slot_skips_allocated_candidates() {
        let fs = test_fs();
        let keys = ObjectKeys::derive("obj", b"key");
        let (first, _) = find_free_header_slot(&fs, "obj", &keys, 1000).unwrap();
        fs.allocate_specific_block(first).unwrap();
        let (second, probes) = find_free_header_slot(&fs, "obj", &keys, 1000).unwrap();
        assert_ne!(first, second);
        assert!(probes >= 2);
    }

    #[test]
    fn locate_finds_header_written_at_free_slot() {
        let fs = test_fs();
        let keys = ObjectKeys::derive("u1:/budget", b"fak");
        let (slot, _) = find_free_header_slot(&fs, "u1:/budget", &keys, 1000).unwrap();
        write_header_at(&fs, slot, &keys, ObjectKind::File);
        let located = locate_header(&fs, "u1:/budget", &keys, 1000).unwrap();
        assert_eq!(located.block, slot);
        assert_eq!(located.header.kind, ObjectKind::File);
        assert!(located.probes >= 1);
    }

    #[test]
    fn locate_with_wrong_key_reports_not_found() {
        let fs = test_fs();
        let keys = ObjectKeys::derive("u1:/budget", b"fak");
        let (slot, _) = find_free_header_slot(&fs, "u1:/budget", &keys, 1000).unwrap();
        write_header_at(&fs, slot, &keys, ObjectKind::File);

        let wrong = ObjectKeys::derive("u1:/budget", b"not the fak");
        let err = locate_header(&fs, "u1:/budget", &wrong, 2000).unwrap_err();
        assert!(err.is_not_found());

        // And a completely different name with the right key also fails.
        let other = ObjectKeys::derive("u1:/other", b"fak");
        assert!(locate_header(&fs, "u1:/other", &other, 2000)
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn locate_survives_earlier_candidates_becoming_allocated() {
        // The scenario that motivates the signature (§3.1): after creation,
        // blocks earlier in the candidate sequence get allocated to other
        // (plain or hidden) data.  Lookup must skip them and still find the
        // right header.
        let fs = test_fs();
        let keys = ObjectKeys::derive("obj", b"key");
        let (slot, _) = find_free_header_slot(&fs, "obj", &keys, 1000).unwrap();
        write_header_at(&fs, slot, &keys, ObjectKind::File);

        // Allocate every candidate that precedes the header in the sequence
        // and fill it with unrelated data.
        let total = fs.superblock().total_blocks;
        let mut seq = candidate_sequence("obj", &keys, total);
        loop {
            let c = seq.next_candidate();
            if c == slot {
                break;
            }
            if fs.superblock().in_data_region(c) && !fs.is_block_allocated(c) {
                fs.allocate_specific_block(c).unwrap();
                fs.write_raw_block(c, &vec![0x11; 1024]).unwrap();
            }
        }

        let located = locate_header(&fs, "obj", &keys, 10_000).unwrap();
        assert_eq!(located.block, slot);
        assert!(located.probes >= 1);
    }

    #[test]
    fn exhausted_probe_budget_reports_errors() {
        let fs = test_fs();
        let keys = ObjectKeys::derive("missing", b"key");
        assert!(locate_header(&fs, "missing", &keys, 5)
            .unwrap_err()
            .is_not_found());
        // With a pathologically small budget creation also gives up cleanly.
        assert!(matches!(
            find_free_header_slot(&fs, "missing", &keys, 0),
            Err(StegError::NoSpace)
        ));
    }

    #[test]
    fn different_objects_get_different_slots() {
        let fs = test_fs();
        let mut slots = std::collections::HashSet::new();
        for i in 0..20 {
            let name = format!("user:/file-{i}");
            let keys = ObjectKeys::derive(&name, b"key");
            let (slot, _) = find_free_header_slot(&fs, &name, &keys, 1000).unwrap();
            fs.allocate_specific_block(slot).unwrap();
            slots.insert(slot);
        }
        assert_eq!(slots.len(), 20, "collisions are avoided by probing");
    }
}
