//! Backup images (`steg_backup` / `steg_recovery`, §3.3).
//!
//! Hidden files cannot be backed up by copying their contents — the backup
//! utility does not have their keys.  Instead StegFS images **only the blocks
//! that are allocated in the bitmap but do not belong to any plain file**
//! (that set covers every hidden object, every dummy file and every abandoned
//! block), and copies plain files by content like any ordinary backup.
//!
//! On recovery the imaged blocks are restored **to their original
//! addresses** — the inode chains inside hidden files reference absolute
//! block numbers that nobody can rewrite — while plain files may land
//! anywhere.
//!
//! The serialised image is authenticated with HMAC-SHA256 under an
//! administrator-supplied key so that a corrupted or substituted image is
//! rejected rather than silently restored.

use crate::error::{StegError, StegResult};
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::hmac::hmac_sha256;
use stegfs_fs::{FileKind, PlainFs};

/// Magic prefix of a serialised backup image.
const MAGIC: &[u8; 8] = b"STEGBKP1";

/// A plain file or directory captured by content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainEntry {
    /// Absolute path of the object.
    pub path: String,
    /// File or directory.
    pub kind: FileKind,
    /// File contents (empty for directories).
    pub data: Vec<u8>,
}

/// A complete backup of a StegFS volume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupImage {
    /// Block size of the source volume.
    pub block_size: u32,
    /// Total number of blocks of the source volume.
    pub total_blocks: u64,
    /// Raw images of every allocated data-region block that no plain object
    /// accounts for, keyed by absolute block number.
    pub hidden_blocks: Vec<(u64, Vec<u8>)>,
    /// Plain objects captured by content (directories before their children).
    pub plain_entries: Vec<PlainEntry>,
}

impl BackupImage {
    /// Overhead of the image relative to the raw volume: the number of bytes
    /// devoted to raw block images (the paper's backup-cost argument).
    pub fn raw_image_bytes(&self) -> u64 {
        self.hidden_blocks.iter().map(|(_, d)| d.len() as u64).sum()
    }

    /// Graft the imaged hidden blocks back into `fs` at their original
    /// addresses, as one transaction: allocation and raw contents land
    /// together, so on a journaled volume a crash mid-recovery yields either
    /// the complete hidden region or none of it — never a bitmap that claims
    /// blocks whose contents were lost (the old raw-loop restore could).
    pub fn graft<D: BlockDevice>(&self, fs: &PlainFs<D>) -> StegResult<()> {
        let mut txn = fs.begin_txn();
        for (block, data) in &self.hidden_blocks {
            if !txn.try_allocate_specific_block(*block)? {
                return Err(StegError::InvalidBackup(format!(
                    "imaged block {block} is already allocated on the target volume"
                )));
            }
            txn.write_raw_block(*block, data)?;
        }
        txn.commit()?;
        Ok(())
    }

    /// Serialise and authenticate with `admin_key`.
    pub fn to_bytes(&self, admin_key: &[u8]) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.extend_from_slice(&self.block_size.to_be_bytes());
        body.extend_from_slice(&self.total_blocks.to_be_bytes());
        body.extend_from_slice(&(self.hidden_blocks.len() as u64).to_be_bytes());
        for (block, data) in &self.hidden_blocks {
            body.extend_from_slice(&block.to_be_bytes());
            body.extend_from_slice(&(data.len() as u32).to_be_bytes());
            body.extend_from_slice(data);
        }
        body.extend_from_slice(&(self.plain_entries.len() as u64).to_be_bytes());
        for entry in &self.plain_entries {
            let path = entry.path.as_bytes();
            body.extend_from_slice(&(path.len() as u16).to_be_bytes());
            body.extend_from_slice(path);
            body.push(match entry.kind {
                FileKind::Directory => 2,
                _ => 1,
            });
            body.extend_from_slice(&(entry.data.len() as u64).to_be_bytes());
            body.extend_from_slice(&entry.data);
        }
        let tag = hmac_sha256(admin_key, &body);
        body.extend_from_slice(&tag);
        body
    }

    /// Parse and authenticate a serialised image.
    pub fn from_bytes(bytes: &[u8], admin_key: &[u8]) -> StegResult<Self> {
        let fail = |msg: &str| StegError::InvalidBackup(msg.to_string());
        if bytes.len() < MAGIC.len() + 32 {
            return Err(fail("image too short"));
        }
        let (body, tag) = bytes.split_at(bytes.len() - 32);
        let expected = hmac_sha256(admin_key, body);
        if !stegfs_crypto::ct::ct_eq(tag, &expected) {
            return Err(fail("authentication failed (wrong key or corrupted image)"));
        }
        if &body[..8] != MAGIC {
            return Err(fail("bad magic"));
        }
        let mut off = 8usize;
        let take = |off: &mut usize, n: usize| -> StegResult<&[u8]> {
            if body.len() < *off + n {
                return Err(StegError::InvalidBackup("truncated image".into()));
            }
            let s = &body[*off..*off + n];
            *off += n;
            Ok(s)
        };

        let block_size = u32::from_be_bytes(take(&mut off, 4)?.try_into().unwrap());
        let total_blocks = u64::from_be_bytes(take(&mut off, 8)?.try_into().unwrap());
        let n_hidden = u64::from_be_bytes(take(&mut off, 8)?.try_into().unwrap()) as usize;
        let mut hidden_blocks = Vec::with_capacity(n_hidden.min(1 << 20));
        for _ in 0..n_hidden {
            let block = u64::from_be_bytes(take(&mut off, 8)?.try_into().unwrap());
            let len = u32::from_be_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
            hidden_blocks.push((block, take(&mut off, len)?.to_vec()));
        }
        let n_plain = u64::from_be_bytes(take(&mut off, 8)?.try_into().unwrap()) as usize;
        let mut plain_entries = Vec::with_capacity(n_plain.min(1 << 20));
        for _ in 0..n_plain {
            let path_len = u16::from_be_bytes(take(&mut off, 2)?.try_into().unwrap()) as usize;
            let path = String::from_utf8(take(&mut off, path_len)?.to_vec())
                .map_err(|_| fail("path is not UTF-8"))?;
            let kind = match take(&mut off, 1)?[0] {
                2 => FileKind::Directory,
                _ => FileKind::File,
            };
            let data_len = u64::from_be_bytes(take(&mut off, 8)?.try_into().unwrap()) as usize;
            let data = take(&mut off, data_len)?.to_vec();
            plain_entries.push(PlainEntry { path, kind, data });
        }
        if off != body.len() {
            return Err(fail("trailing bytes in image"));
        }
        Ok(BackupImage {
            block_size,
            total_blocks,
            hidden_blocks,
            plain_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BackupImage {
        BackupImage {
            block_size: 1024,
            total_blocks: 4096,
            hidden_blocks: vec![(100, vec![1u8; 1024]), (200, vec![2u8; 1024])],
            plain_entries: vec![
                PlainEntry {
                    path: "/docs".into(),
                    kind: FileKind::Directory,
                    data: vec![],
                },
                PlainEntry {
                    path: "/docs/a.txt".into(),
                    kind: FileKind::File,
                    data: b"plain contents".to_vec(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let bytes = img.to_bytes(b"admin key");
        let parsed = BackupImage::from_bytes(&bytes, b"admin key").unwrap();
        assert_eq!(parsed, img);
    }

    #[test]
    fn wrong_admin_key_rejected() {
        let bytes = sample().to_bytes(b"admin key");
        assert!(matches!(
            BackupImage::from_bytes(&bytes, b"other key"),
            Err(StegError::InvalidBackup(_))
        ));
    }

    #[test]
    fn tampering_rejected() {
        let mut bytes = sample().to_bytes(b"admin key");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(BackupImage::from_bytes(&bytes, b"admin key").is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes(b"admin key");
        assert!(BackupImage::from_bytes(&bytes[..bytes.len() - 1], b"admin key").is_err());
        assert!(BackupImage::from_bytes(&bytes[..10], b"admin key").is_err());
        assert!(BackupImage::from_bytes(&[], b"admin key").is_err());
    }

    #[test]
    fn raw_image_bytes_accounts_hidden_blocks_only() {
        let img = sample();
        assert_eq!(img.raw_image_bytes(), 2048);
    }

    #[test]
    fn empty_image_roundtrip() {
        let img = BackupImage {
            block_size: 512,
            total_blocks: 16,
            hidden_blocks: vec![],
            plain_entries: vec![],
        };
        let bytes = img.to_bytes(b"k");
        assert_eq!(BackupImage::from_bytes(&bytes, b"k").unwrap(), img);
    }
}
