//! The hidden-object engine: create, open, read, write, delete.
//!
//! This module implements the life cycle of a single hidden object on top of
//! the plain file system's bitmap and raw-block interface.  Nothing here
//! touches the central directory; the only trace a hidden object leaves in
//! shared metadata is its blocks being marked allocated — just like abandoned
//! blocks and dummy files.
//!
//! The free-block-pool behaviour follows §3.1: a freshly created object
//! immediately claims `FB_max` random blocks; extension consumes pool blocks
//! (topping the pool back up when it drops below `FB_min`); truncation feeds
//! freed blocks back into the pool and only returns the excess beyond
//! `FB_max` to the file system.

use crate::crypt::ObjectKeys;
use crate::error::{StegError, StegResult};
use crate::header::{HiddenHeader, InodeChainBlock, ObjectKind, NO_BLOCK};
use crate::locator::{find_free_header_slot, locate_header, Located};
use crate::params::StegParams;
use crate::readcache::{scratch, ExtentList, ReadCache};
use std::sync::Arc;
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::prng::DeterministicRng;
use stegfs_fs::{FsTxn, PlainFs};

/// An open hidden object: its header block number and current header state.
#[derive(Debug, Clone)]
pub struct HiddenObject {
    /// Physical block holding the (encrypted) header.
    pub header_block: u64,
    /// Decrypted header contents.
    pub header: HiddenHeader,
    /// Number of locator probes it took to find the header (1 for a freshly
    /// created object).
    pub probes: usize,
}

impl HiddenObject {
    /// Size in bytes of the object's contents.
    pub fn size(&self) -> u64 {
        self.header.size
    }

    /// File or directory.
    pub fn kind(&self) -> ObjectKind {
        self.header.kind
    }
}

fn write_encrypted<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    keys: &ObjectKeys,
    block: u64,
    plaintext_block: &[u8],
) -> StegResult<()> {
    let mut buf = scratch::take(plaintext_block.len());
    buf.copy_from_slice(plaintext_block);
    keys.encrypt_block(block, &mut buf);
    let result = txn.write_raw_block(block, &buf);
    scratch::put(buf);
    result?;
    Ok(())
}

/// Read and decrypt one block into a pooled scratch buffer; return it with
/// [`scratch::put`] when done.
fn read_decrypted<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    block: u64,
) -> StegResult<Vec<u8>> {
    let mut buf = scratch::take(fs.block_size());
    fs.read_raw_blocks_into(&[block], &mut buf)?;
    keys.decrypt_block(block, &mut buf);
    Ok(buf)
}

/// Read a whole extent list in **one batched device submission**, then
/// decrypt each block in place (the cipher is keyed per block number, so the
/// crypto stays per-block while the I/O batches).  The returned buffer comes
/// from the thread's scratch pool; callers that do not hand it to their own
/// caller should return it with [`scratch::put`].
fn read_decrypted_many<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    blocks: &[u64],
) -> StegResult<Vec<u8>> {
    let bs = fs.block_size();
    let mut buf = scratch::take(blocks.len() * bs);
    fs.read_raw_blocks_into(blocks, &mut buf)?;
    for (i, &block) in blocks.iter().enumerate() {
        keys.decrypt_block(block, &mut buf[i * bs..(i + 1) * bs]);
    }
    Ok(buf)
}

/// Encrypt `plaintext` (the concatenation of the blocks' contents) per block
/// **in place** — every caller hands over a scratch buffer it is done with —
/// and write the whole extent list in **one batched device submission** (or
/// stage it into the transaction's redo buffer on a journaled volume).  The
/// buffer is zeroed and returned to the thread's scratch pool afterwards.
fn write_encrypted_many<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    keys: &ObjectKeys,
    blocks: &[u64],
    mut plaintext: Vec<u8>,
) -> StegResult<()> {
    let bs = txn.block_size();
    debug_assert_eq!(plaintext.len(), blocks.len() * bs);
    for (i, &block) in blocks.iter().enumerate() {
        keys.encrypt_block(block, &mut plaintext[i * bs..(i + 1) * bs]);
    }
    let result = txn.write_raw_blocks(blocks, &plaintext);
    scratch::put(plaintext);
    result?;
    Ok(())
}

/// Create a new hidden object and write its initial (empty) header.
///
/// The header lands at the first free block of the keyed candidate sequence;
/// the internal free pool is immediately stocked with `FB_max` random blocks.
/// The header write is one transaction: on a journaled volume a crash either
/// yields the complete (empty) object or nothing.
pub fn create<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    kind: ObjectKind,
    params: &StegParams,
) -> StegResult<HiddenObject> {
    let mut txn = fs.begin_txn();
    // Claiming the slot is a separate step from finding it, so two creators
    // racing down different candidate sequences may pick the same free block.
    // The loser's atomic claim fails and it simply probes on: the next walk
    // skips the now-allocated block.
    let header_block = {
        let mut attempts = 0usize;
        loop {
            let (candidate, _probes) =
                find_free_header_slot(fs, physical_name, keys, params.max_locator_probes)?;
            if txn.try_allocate_specific_block(candidate)? {
                break candidate;
            }
            attempts += 1;
            if attempts > 64 {
                return Err(StegError::NoSpace);
            }
        }
    };

    let mut header = HiddenHeader::new(*keys.signature(), kind);
    // Stock the internal free pool (§3.1: "StegFS straightaway allocates
    // several blocks to the file").
    for _ in 0..params.free_blocks_max {
        match txn.allocate_random_block() {
            Ok(b) => header.free_pool.push(b),
            Err(stegfs_fs::FsError::NoSpace) => break,
            Err(e) => return Err(e.into()),
        }
    }

    write_encrypted(
        &mut txn,
        keys,
        header_block,
        &header.serialize(fs.block_size()),
    )?;
    txn.commit()?;
    Ok(HiddenObject {
        header_block,
        header,
        probes: 1,
    })
}

/// Open an existing hidden object by walking the candidate sequence.
pub fn open<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    params: &StegParams,
) -> StegResult<HiddenObject> {
    let Located {
        block,
        header,
        probes,
    } = locate_header(fs, physical_name, keys, params.max_locator_probes)?;
    Ok(HiddenObject {
        header_block: block,
        header,
        probes,
    })
}

/// [`open`], accelerated by the read cache: a hit returns the decrypted
/// header without touching the device (and reports `probes == 0`); a miss
/// walks the locator as usual and installs the result.  Misses — including
/// wrong-key lookups — behave exactly like [`open`], so deniability is
/// untouched.
pub fn open_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    params: &StegParams,
    cache: &ReadCache,
) -> StegResult<HiddenObject> {
    if let Some(hit) = cache.lookup_header(keys.signature()) {
        return Ok(HiddenObject {
            header_block: hit.header_block,
            header: hit.header,
            probes: 0,
        });
    }
    let started = cache.begin();
    let obj = open(fs, physical_name, keys, params)?;
    cache.store_header(
        keys.signature(),
        started,
        obj.header_block,
        obj.header.clone(),
    );
    Ok(obj)
}

/// The extent map of `obj`, from the cache when it still matches the
/// caller's header, or from a chain walk (whose result is installed).
/// Returns the entry generation used to tag this object's plaintext blocks.
fn cached_chain<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    cache: &ReadCache,
) -> StegResult<(u64, Arc<ExtentList>)> {
    if let Some(hit) = cache.lookup_extents(
        keys.signature(),
        obj.header.inode_chain,
        obj.header.data_block_count,
    ) {
        return Ok(hit);
    }
    let started = cache.begin();
    // Guard against cache poisoning: `obj` may be a *stale* snapshot (a
    // long-lived core-level handle whose object was since rewritten through
    // a name-based path).  Its chain walk must then serve only this caller —
    // installing it would hand the stale header to every fresh open.  The
    // header is trusted when the cached entry still vouches for it; with no
    // entry (first read, or invalidated since the handle opened) the header
    // block on disk is re-read and compared — one extra block on a path that
    // is about to walk the whole chain anyway.
    let trusted = match cache.peek_header(keys.signature()) {
        Some((header_block, header)) => header_block == obj.header_block && header == obj.header,
        None => cache.enabled() && header_matches_disk(fs, keys, obj)?,
    };
    let (data_blocks, chain_blocks) = read_chain(fs, keys, obj)?;
    let extents = Arc::new(ExtentList {
        data_blocks,
        chain_blocks,
    });
    let gen = if trusted {
        cache.store_extents(
            keys.signature(),
            started,
            obj.header_block,
            obj.header.clone(),
            Arc::clone(&extents),
        )
    } else {
        crate::readcache::DEAD_GEN
    };
    Ok((gen, extents))
}

/// True if the on-disk header block still decrypts and parses to exactly the
/// header the caller holds.
fn header_matches_disk<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<bool> {
    let mut raw = scratch::take(fs.block_size());
    fs.read_raw_blocks_into(&[obj.header_block], &mut raw)?;
    keys.decrypt_block(obj.header_block, &mut raw);
    let parsed = HiddenHeader::parse_if_match(&raw, keys.signature(), fs.superblock().total_blocks);
    scratch::put(raw);
    Ok(parsed.is_some_and(|h| h == obj.header))
}

/// Read the plaintext of `span` (block numbers in logical order), serving
/// what it can from the plaintext cache and fetching the rest — plus any
/// not-yet-cached `readahead` blocks — in **one** batched device
/// submission.  Fetched blocks are decrypted once and installed under `gen`.
/// The returned buffer comes from the scratch pool.
fn read_blocks_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    gen: u64,
    span: &[u64],
    readahead: &[u64],
    cache: &ReadCache,
) -> StegResult<Vec<u8>> {
    let bs = fs.block_size();
    let mut out = scratch::take(span.len() * bs);
    let mut fetch: Vec<u64> = Vec::new();
    let mut fetch_slot: Vec<usize> = Vec::new();
    for (i, &block) in span.iter().enumerate() {
        if !cache.get_block_into(gen, block, &mut out[i * bs..(i + 1) * bs]) {
            fetch.push(block);
            fetch_slot.push(i);
        }
    }
    let demand = fetch.len();
    fetch.extend(
        readahead
            .iter()
            .copied()
            .filter(|&b| !cache.contains_block(gen, b)),
    );
    if !fetch.is_empty() {
        let mut buf = scratch::take(fetch.len() * bs);
        fs.read_raw_blocks_into(&fetch, &mut buf)?;
        for (j, &block) in fetch.iter().enumerate() {
            let chunk = &mut buf[j * bs..(j + 1) * bs];
            keys.decrypt_block(block, chunk);
            cache.put_block(keys.signature(), gen, block, chunk);
        }
        for (j, &slot) in fetch_slot.iter().enumerate() {
            debug_assert!(j < demand);
            out[slot * bs..(slot + 1) * bs].copy_from_slice(&buf[j * bs..(j + 1) * bs]);
        }
        scratch::put(buf);
    }
    Ok(out)
}

/// Read the inode chain of `obj`, returning the data blocks in logical order
/// together with the chain blocks themselves.
fn read_chain<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<(Vec<u64>, Vec<u64>)> {
    let total = fs.superblock().total_blocks;
    let mut data_blocks = Vec::with_capacity(obj.header.data_block_count as usize);
    let mut chain_blocks = Vec::new();
    let mut next = obj.header.inode_chain;
    while next != NO_BLOCK {
        chain_blocks.push(next);
        let buf = read_decrypted(fs, keys, next)?;
        let chain = InodeChainBlock::deserialize(&buf, total);
        scratch::put(buf);
        let chain = chain?;
        data_blocks.extend_from_slice(&chain.pointers);
        next = chain.next;
        if chain_blocks_guard(&chain_blocks, total) {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain loops".into(),
            )));
        }
    }
    Ok((data_blocks, chain_blocks))
}

fn chain_blocks_guard(chain_blocks: &[u64], total: u64) -> bool {
    chain_blocks.len() as u64 > total
}

/// Read the full contents of a hidden object: one chain walk, then the whole
/// extent list in one batched submission.
pub fn read<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<Vec<u8>> {
    read_cached(fs, keys, obj, ReadCache::disabled())
}

/// [`read`], served through the read cache: a warm object costs neither
/// device reads nor decryption.
pub fn read_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    cache: &ReadCache,
) -> StegResult<Vec<u8>> {
    let (gen, extents) = cached_chain(fs, keys, obj, cache)?;
    let mut out = read_blocks_cached(fs, keys, gen, &extents.data_blocks, &[], cache)?;
    out.truncate(obj.header.size as usize);
    Ok(out)
}

/// Read `len` bytes starting at `offset` (clamped to the object size).
pub fn read_range<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    offset: u64,
    len: usize,
) -> StegResult<Vec<u8>> {
    read_range_cached(fs, keys, obj, offset, len, 0, ReadCache::disabled())
}

/// [`read_range`], served through the read cache, with optional streaming
/// readahead: up to `readahead_blocks` blocks past the requested range ride
/// along in the same batched submission and land in the plaintext cache, so
/// a sequential scan pays one device round-trip per readahead window
/// instead of one per request.
pub fn read_range_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    offset: u64,
    len: usize,
    readahead_blocks: usize,
    cache: &ReadCache,
) -> StegResult<Vec<u8>> {
    if len == 0 || offset >= obj.header.size {
        return Ok(Vec::new());
    }
    let end = (offset + len as u64).min(obj.header.size);
    let bs = fs.block_size() as u64;
    let (gen, extents) = cached_chain(fs, keys, obj, cache)?;
    let data_blocks = &extents.data_blocks;
    let first = (offset / bs) as usize;
    let last = ((end - 1) / bs) as usize;
    let span = data_blocks.get(first..=last).ok_or_else(|| {
        StegError::Fs(stegfs_fs::FsError::Corrupt(
            "hidden object shorter than its size field".into(),
        ))
    })?;
    // Readahead only pays off when the prefetched plaintext can be kept.
    let readahead = if cache.enabled() && readahead_blocks > 0 {
        let ra_end = (last + 1)
            .saturating_add(readahead_blocks)
            .min(data_blocks.len());
        &data_blocks[last + 1..ra_end]
    } else {
        &data_blocks[..0]
    };
    // One batched submission covers the whole extent of the range (plus the
    // readahead window).
    let plain = read_blocks_cached(fs, keys, gen, span, readahead, cache)?;
    let from = (offset - first as u64 * bs) as usize;
    let to = (end - first as u64 * bs) as usize;
    let out = plain[from..to].to_vec();
    scratch::put(plain);
    Ok(out)
}

/// Overwrite part of an existing hidden object in place.  The range must lie
/// within the object's current size; blocks are decrypted, patched and
/// re-encrypted individually (the multi-user experiments update files at
/// block granularity).
pub fn write_range<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    offset: u64,
    data: &[u8],
) -> StegResult<()> {
    if data.is_empty() {
        return Ok(());
    }
    let end = offset + data.len() as u64;
    if end > obj.header.size {
        return Err(StegError::Fs(stegfs_fs::FsError::FileTooLarge {
            requested: end,
            maximum: obj.header.size,
        }));
    }
    let bs = fs.block_size() as u64;
    let (data_blocks, _) = read_chain(fs, keys, obj)?;
    let first = (offset / bs) as usize;
    let last = ((end - 1) / bs) as usize;
    let span = data_blocks.get(first..=last).ok_or_else(|| {
        StegError::Fs(stegfs_fs::FsError::Corrupt(
            "hidden object shorter than its size field".into(),
        ))
    })?;
    // Batched read-modify-write: only a partial head or tail block needs its
    // old contents (fully covered middle blocks are rebuilt from `data`; the
    // edge selection is the shared [`stegfs_fs::rmw`] plan), so at most two
    // edge blocks come up in one submission and the whole patched extent
    // goes back down in one submission.  The patch is one transaction: an
    // in-place update of live data is exactly the write a crash must not
    // tear.
    let span_start = first as u64 * bs;
    let bs = bs as usize;
    let plan = stegfs_fs::rmw::plan(span, offset, end, span_start, bs);
    let edge_plain = read_decrypted_many(fs, keys, &plan.edges)?;
    let mut plain = scratch::take(span.len() * bs);
    plan.seed_edges(&edge_plain, &mut plain, bs);
    scratch::put(edge_plain);
    let from = (offset - span_start) as usize;
    plain[from..from + data.len()].copy_from_slice(data);
    let mut txn = fs.begin_txn();
    write_encrypted_many(&mut txn, keys, span, plain)?;
    txn.commit()?;
    Ok(())
}

/// Take one block for new data: prefer the internal free pool (choosing a
/// random member, per §3.1), then a fresh random block, and only under space
/// pressure a block the current operation is recycling from the object's
/// previous incarnation.
///
/// Preferring fresh blocks keeps rewrites *churning the bitmap* — dummy-file
/// maintenance depends on rewrites allocating new random blocks and freeing
/// old ones, so snapshot differencing cannot attribute deltas to real data.
/// Recycled blocks stay marked allocated in the bitmap throughout (they are
/// never freed mid-operation), so a failing rewrite can never leave the
/// object's still-current header pointing at blocks another thread has been
/// handed; on a nearly full volume they are consumed in place, which is what
/// lets a rewrite or truncation succeed without double the footprint.
/// Blocks drawn fresh from the volume are tracked by the transaction, which
/// returns them to the volume if the operation fails before committing
/// (with the shared-reference API a concurrent writer can consume the space
/// between our capacity check and the allocations).
fn take_block<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    header: &mut HiddenHeader,
    rng: &mut DeterministicRng,
    recycled: &mut Vec<u64>,
) -> StegResult<u64> {
    if !header.free_pool.is_empty() {
        let idx = rng.next_below(header.free_pool.len() as u64) as usize;
        return Ok(header.free_pool.swap_remove(idx));
    }
    match txn.allocate_random_block() {
        Ok(block) => Ok(block),
        Err(stegfs_fs::FsError::NoSpace) if !recycled.is_empty() => {
            Ok(recycled.pop().expect("checked non-empty"))
        }
        Err(e) => Err(e.into()),
    }
}

/// Replace the entire contents of a hidden object with `data`.
///
/// This is the write path the experiments exercise (whole-file writes, as in
/// the paper's workload).  Old data and chain blocks are recycled through the
/// free pool; new blocks are drawn from the pool first and then from random
/// free space.
pub fn write<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    data: &[u8],
    params: &StegParams,
    rng: &mut DeterministicRng,
) -> StegResult<()> {
    let bs = fs.block_size();
    let total = fs.superblock().total_blocks;
    let needed = (data.len() as u64).div_ceil(bs as u64);

    // Make sure the volume can hold the new contents *before* recycling
    // anything: refusing up front leaves the object untouched, whereas the
    // old freed-then-checked order let a refused update return the object's
    // own data blocks to the volume.  The check counts the recycled blocks
    // as available because they come back to us below.
    let (old_data, old_chain) = read_chain(fs, keys, obj)?;
    let chain_capacity = InodeChainBlock::capacity(bs) as u64;
    let chain_needed = needed.div_ceil(chain_capacity.max(1));
    let available = fs.free_data_blocks()
        + obj.header.free_pool.len() as u64
        + old_data.len() as u64
        + old_chain.len() as u64;
    if available < needed + chain_needed {
        return Err(StegError::NoSpace);
    }

    // The old blocks are *recycled in place*: they stay allocated in the
    // bitmap and are consumed directly as new data/chain blocks, never freed
    // mid-operation.  The capacity check above is advisory once other
    // writers run in parallel, so every fresh allocation is tracked by the
    // transaction, which hands it back if the operation fails part-way.  On
    // such a failure the object's previous header stays current and every
    // block it names is still allocated — on a journaled volume even the
    // recycled blocks' *contents* survive, because nothing reaches the
    // device before commit; write-through volumes keep the old caveat that
    // consumed recycled blocks may already be overwritten.
    let mut header = obj.header.clone();
    let mut recycled: Vec<u64> = old_data.into_iter().chain(old_chain).collect();
    let mut txn = fs.begin_txn();

    // Claim every data block first, then push the whole extent list down
    // as one batched submission (the zero tail pads the final block).
    let mut data_blocks = Vec::with_capacity(needed as usize);
    for _ in 0..needed {
        data_blocks.push(take_block(&mut txn, &mut header, rng, &mut recycled)?);
    }
    let mut padded = scratch::take(data_blocks.len() * bs);
    padded[..data.len()].copy_from_slice(data);
    write_encrypted_many(&mut txn, keys, &data_blocks, padded)?;

    // Build the inode chain (allocate chain blocks the same way).
    let chain_head = build_chain(
        &mut txn,
        keys,
        &mut header,
        &data_blocks,
        rng,
        &mut recycled,
    )?;

    // Absorb surplus recycled blocks into the pool (a pure header-local
    // move — nothing is freed yet) and top the pool back up if it is
    // still below the lower bound.
    while header.free_pool.len() < params.free_blocks_max {
        match recycled.pop() {
            Some(b) => header.free_pool.push(b),
            None => break,
        }
    }
    top_up_pool(&mut txn, &mut header, params)?;

    // Publish the new header, release the old incarnation's surplus, and
    // commit.  The frees ride in the same transaction (deferred to its
    // commit on a journaled volume), so the surplus returns to the volume
    // only together with the header that stops referencing it; a failure
    // anywhere above drops the transaction and leaves every block the old
    // header names allocated.
    header.size = data.len() as u64;
    header.data_block_count = data_blocks.len() as u64;
    header.inode_chain = chain_head;
    debug_assert!(header.inode_chain == NO_BLOCK || header.inode_chain < total);
    write_encrypted(&mut txn, keys, obj.header_block, &header.serialize(bs))?;
    for b in recycled {
        txn.free_block(b)?;
    }
    txn.commit()?;
    obj.header = header;
    Ok(())
}

/// Serialise `data_blocks` into a fresh inode chain, drawing chain blocks
/// from the pool / free space; returns the chain head (or [`NO_BLOCK`]).
fn build_chain<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    keys: &ObjectKeys,
    header: &mut HiddenHeader,
    data_blocks: &[u64],
    rng: &mut DeterministicRng,
    recycled: &mut Vec<u64>,
) -> StegResult<u64> {
    if data_blocks.is_empty() {
        return Ok(NO_BLOCK);
    }
    let bs = txn.block_size();
    let chain_capacity = InodeChainBlock::capacity(bs).max(1);
    let chunks: Vec<&[u64]> = data_blocks.chunks(chain_capacity).collect();
    let mut chain_block_numbers = Vec::with_capacity(chunks.len());
    for _ in &chunks {
        chain_block_numbers.push(take_block(txn, header, rng, recycled)?);
    }
    // Serialise every chain block, then write the whole chain in one batched
    // submission.
    let mut plain = scratch::take(chunks.len() * bs);
    for (i, chunk) in chunks.iter().enumerate() {
        let next = chain_block_numbers.get(i + 1).copied().unwrap_or(NO_BLOCK);
        let chain = InodeChainBlock {
            next,
            pointers: chunk.to_vec(),
        };
        plain[i * bs..(i + 1) * bs].copy_from_slice(&chain.serialize(bs));
    }
    write_encrypted_many(txn, keys, &chain_block_numbers, plain)?;
    Ok(chain_block_numbers[0])
}

/// Refill the internal free pool to `FB_max` once it has dropped below
/// `FB_min` (§3.1).  Newly allocated pool blocks are tracked by the
/// transaction: until the header naming them commits they exist only in a
/// local clone, so a failure returns them to the volume automatically.
fn top_up_pool<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    header: &mut HiddenHeader,
    params: &StegParams,
) -> StegResult<()> {
    if header.free_pool.len() < params.free_blocks_min {
        while header.free_pool.len() < params.free_blocks_max {
            match txn.allocate_random_block() {
                Ok(b) => header.free_pool.push(b),
                Err(stegfs_fs::FsError::NoSpace) => break,
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}

/// Set the object's size to `new_len` at block granularity.
///
/// Unlike [`write()`](self::write), the cost is proportional to the *change* (plus the
/// chain rebuild), not to the object's total size: shrinking recycles only
/// the surplus blocks through the free pool and zeroes the cut tail of the
/// last kept block; growing appends zero-filled blocks.  Existing data
/// blocks are never rewritten, which is what makes appending through the
/// VFS O(append) instead of O(file).
///
/// Invariant maintained (and relied on): within the last data block, every
/// byte beyond `size` is zero — [`write()`](self::write) pads with zeros and the shrink
/// path below re-zeroes, so a later extension exposes zeros, never stale
/// plaintext.
pub fn resize<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    new_len: u64,
    params: &StegParams,
    rng: &mut DeterministicRng,
) -> StegResult<()> {
    let old_len = obj.header.size;
    if new_len == old_len {
        return Ok(());
    }
    let bs = fs.block_size() as u64;
    let new_count = new_len.div_ceil(bs);
    let (mut data_blocks, old_chain) = read_chain(fs, keys, obj)?;
    let mut header = obj.header.clone();
    // As in [`write()`](self::write): surplus blocks are recycled in place
    // (still allocated, consumed before fresh space, released only with the
    // commit), so a mid-operation failure never frees blocks the
    // still-current header references, and the transaction returns fresh
    // allocations to the volume on failure.
    let mut recycled: Vec<u64> = old_chain;
    let mut txn = fs.begin_txn();

    if new_len < old_len {
        recycled.extend(data_blocks.drain(new_count as usize..));
        // Zero the cut tail of the last kept block so the truncated bytes
        // cannot resurface on a later extension.
        let tail = (new_len % bs) as usize;
        if tail != 0 {
            let last = *data_blocks.last().expect("tail implies a kept block");
            let mut plain = read_decrypted(fs, keys, last)?;
            plain[tail..].fill(0);
            let result = write_encrypted(&mut txn, keys, last, &plain);
            scratch::put(plain);
            result?;
        }
    } else {
        // Capacity check before taking anything: the recycled chain
        // blocks come back to us, so count them as available.
        let extra = new_count.saturating_sub(data_blocks.len() as u64);
        let chain_capacity = InodeChainBlock::capacity(fs.block_size()).max(1) as u64;
        let chain_needed = new_count.div_ceil(chain_capacity);
        let available =
            fs.free_data_blocks() + header.free_pool.len() as u64 + recycled.len() as u64;
        if available < extra + chain_needed {
            return Err(StegError::NoSpace);
        }
        // Claim the new tail blocks, then zero-fill them all in one
        // batched submission.
        let mut grown = Vec::with_capacity(extra as usize);
        for _ in 0..extra {
            grown.push(take_block(&mut txn, &mut header, rng, &mut recycled)?);
        }
        let zeros = scratch::take(grown.len() * fs.block_size());
        write_encrypted_many(&mut txn, keys, &grown, zeros)?;
        data_blocks.extend(grown);
    }

    // Rebuild the chain from the recycled blocks first, absorb surplus
    // into the pool (header-local; nothing freed yet), and top up.
    let chain_head = build_chain(
        &mut txn,
        keys,
        &mut header,
        &data_blocks,
        rng,
        &mut recycled,
    )?;
    while header.free_pool.len() < params.free_blocks_max {
        match recycled.pop() {
            Some(b) => header.free_pool.push(b),
            None => break,
        }
    }
    top_up_pool(&mut txn, &mut header, params)?;

    header.size = new_len;
    header.data_block_count = data_blocks.len() as u64;
    header.inode_chain = chain_head;
    write_encrypted(
        &mut txn,
        keys,
        obj.header_block,
        &header.serialize(fs.block_size()),
    )?;
    // The surplus returns to the volume with the commit that publishes the
    // header which stops referencing it; see [`write()`](self::write).
    for b in recycled {
        txn.free_block(b)?;
    }
    txn.commit()?;
    obj.header = header;
    Ok(())
}

/// Delete a hidden object: every block it holds (data, chain, pool, header)
/// is returned to the file system, and the header block is overwritten with
/// fresh pseudorandom fill so no stale signature survives on disk.
pub fn delete<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    rng: &mut DeterministicRng,
) -> StegResult<()> {
    // One transaction: the header scrub and every free commit together, so a
    // crash mid-delete leaves the object either whole or entirely gone —
    // never a findable header whose blocks have been handed out.
    let mut txn = fs.begin_txn();
    let (data_blocks, chain_blocks) = read_chain(fs, keys, obj)?;
    for b in data_blocks
        .into_iter()
        .chain(chain_blocks)
        .chain(obj.header.free_pool.iter().copied())
    {
        txn.free_block(b)?;
    }
    // Scrub the header so the signature cannot be found again, then free it.
    let noise = rng.bytes(fs.block_size());
    txn.write_raw_block(obj.header_block, &noise)?;
    txn.free_block(obj.header_block)?;
    txn.commit()?;
    Ok(())
}

/// All blocks currently owned by the object (header, chain, data, pool).
/// Used by the space accounting in the experiments.
pub fn owned_blocks<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<Vec<u64>> {
    let (data_blocks, chain_blocks) = read_chain(fs, keys, obj)?;
    let mut all = vec![obj.header_block];
    all.extend(data_blocks);
    all.extend(chain_blocks);
    all.extend(obj.header.free_pool.iter().copied());
    all.sort_unstable();
    all.dedup();
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;
    use stegfs_fs::{FormatOptions, PlainFs};

    fn fixture() -> (
        PlainFs<MemBlockDevice>,
        ObjectKeys,
        StegParams,
        DeterministicRng,
    ) {
        let fs =
            PlainFs::format(MemBlockDevice::new(1024, 8192), FormatOptions::default()).unwrap();
        let keys = ObjectKeys::derive("u1:/secret/budget.xls", b"file access key");
        let params = StegParams::for_tests();
        let rng = DeterministicRng::new(b"hidden-tests");
        (fs, keys, params, rng)
    }

    #[test]
    fn create_open_roundtrip() {
        let (fs, keys, params, _) = fixture();
        let created = create(
            &fs,
            "u1:/secret/budget.xls",
            &keys,
            ObjectKind::File,
            &params,
        )
        .unwrap();
        assert_eq!(created.header.free_pool.len(), params.free_blocks_max);
        let opened = open(&fs, "u1:/secret/budget.xls", &keys, &params).unwrap();
        assert_eq!(opened.header_block, created.header_block);
        assert_eq!(opened.header, created.header);
        assert_eq!(opened.kind(), ObjectKind::File);
        assert_eq!(opened.size(), 0);
    }

    #[test]
    fn empty_object_reads_empty() {
        let (fs, keys, params, _) = fixture();
        let obj = create(&fs, "n", &keys, ObjectKind::File, &params).unwrap();
        assert_eq!(read(&fs, &keys, &obj).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_read_roundtrip_small() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "n", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            b"hello hidden world",
            &params,
            &mut rng,
        )
        .unwrap();
        assert_eq!(obj.size(), 18);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), b"hello hidden world");
        // And through a fresh open.
        let reopened = open(&fs, "n", &keys, &params).unwrap();
        assert_eq!(read(&fs, &keys, &reopened).unwrap(), b"hello hidden world");
    }

    #[test]
    fn write_read_roundtrip_multi_chain() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "big", &keys, ObjectKind::File, &params).unwrap();
        // 400 KB needs 400 data blocks -> 4 chain blocks at 1 KB block size.
        let data: Vec<u8> = (0..400 * 1024u32).map(|i| (i % 251) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        assert_eq!(read(&fs, &keys, &obj).unwrap(), data);
        assert_eq!(obj.header.data_block_count, 400);
    }

    #[test]
    fn read_range_matches_full_read() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "r", &keys, ObjectKind::File, &params).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        assert_eq!(read_range(&fs, &keys, &obj, 0, 100).unwrap(), &data[..100]);
        assert_eq!(
            read_range(&fs, &keys, &obj, 1020, 10).unwrap(),
            &data[1020..1030]
        );
        assert_eq!(
            read_range(&fs, &keys, &obj, 9_990, 100).unwrap(),
            &data[9_990..]
        );
        assert!(read_range(&fs, &keys, &obj, 20_000, 5).unwrap().is_empty());
        // Zero-length reads are empty, not an underflow (offset 0 included).
        assert!(read_range(&fs, &keys, &obj, 0, 0).unwrap().is_empty());
        assert!(read_range(&fs, &keys, &obj, 1024, 0).unwrap().is_empty());
    }

    #[test]
    fn write_range_patches_in_place() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "patch", &keys, ObjectKind::File, &params).unwrap();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let free_before = fs.free_data_blocks();

        write_range(&fs, &keys, &obj, 1000, &[0xaa; 200]).unwrap();
        let mut expected = data.clone();
        expected[1000..1200].copy_from_slice(&[0xaa; 200]);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), expected);
        assert_eq!(fs.free_data_blocks(), free_before, "no allocation");
        // Past-EOF patches rejected, empty patches allowed.
        assert!(write_range(&fs, &keys, &obj, 4990, &[0u8; 20]).is_err());
        write_range(&fs, &keys, &obj, 0, &[]).unwrap();
    }

    #[test]
    fn rewrite_replaces_contents_without_leaking_blocks() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "w", &keys, ObjectKind::File, &params).unwrap();
        let free_before = fs.free_data_blocks();

        write(
            &fs,
            &keys,
            &mut obj,
            &vec![1u8; 100 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![2u8; 50 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        write(&fs, &keys, &mut obj, b"tiny", &params, &mut rng).unwrap();
        assert_eq!(read(&fs, &keys, &obj).unwrap(), b"tiny");

        // Blocks used now: header + <=1 data + <=1 chain + pool (bounded by
        // FB_max).  Everything else must have been returned to the volume.
        // header + 1 data block + 1 chain block + pool (bounded by FB_max).
        let used_now = free_before - fs.free_data_blocks();
        assert!(
            used_now <= 3 + params.free_blocks_max as u64,
            "object retains {used_now} blocks"
        );
    }

    #[test]
    fn free_pool_absorbs_truncation_up_to_fb_max() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "p", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![7u8; 3 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        // Shrink to zero: the freed blocks flow into the pool, capped at FB_max.
        write(&fs, &keys, &mut obj, b"", &params, &mut rng).unwrap();
        assert!(obj.header.free_pool.len() <= params.free_blocks_max);
        assert!(!obj.header.free_pool.is_empty());
        assert_eq!(obj.header.data_block_count, 0);
        assert_eq!(obj.header.inode_chain, NO_BLOCK);
    }

    #[test]
    fn pool_topped_up_when_below_minimum() {
        let (fs, keys, mut params, mut rng) = fixture();
        params.free_blocks_min = 3;
        params.free_blocks_max = 4;
        let mut obj = create(&fs, "t", &keys, ObjectKind::File, &params).unwrap();
        assert_eq!(obj.header.free_pool.len(), 4);
        // Writing 6 blocks of data consumes the whole pool (4) and more, so
        // afterwards the pool must be topped back up to FB_max.
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![1u8; 6 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        assert_eq!(obj.header.free_pool.len(), 4);
    }

    #[test]
    fn resize_preserves_prefix_and_zero_fills() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "rz", &keys, ObjectKind::File, &params).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();

        // Shrink to a non-block boundary.
        resize(&fs, &keys, &mut obj, 2500, &params, &mut rng).unwrap();
        assert_eq!(obj.size(), 2500);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), &data[..2500]);

        // Grow again: the cut region must come back as zeros, not as the
        // old plaintext.
        resize(&fs, &keys, &mut obj, 6000, &params, &mut rng).unwrap();
        let got = read(&fs, &keys, &obj).unwrap();
        assert_eq!(&got[..2500], &data[..2500]);
        assert!(
            got[2500..].iter().all(|&b| b == 0),
            "stale bytes resurfaced"
        );

        // Reopen sees the resized state.
        let reopened = open(&fs, "rz", &keys, &params).unwrap();
        assert_eq!(reopened.size(), 6000);
    }

    #[test]
    fn resize_does_not_move_existing_data_blocks() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "stable", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![9u8; 8 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        let before: std::collections::HashSet<u64> = owned_blocks(&fs, &keys, &obj)
            .unwrap()
            .into_iter()
            .collect();

        resize(&fs, &keys, &mut obj, 64 * 1024, &params, &mut rng).unwrap();
        let after: std::collections::HashSet<u64> = owned_blocks(&fs, &keys, &obj)
            .unwrap()
            .into_iter()
            .collect();
        // Growing only adds blocks; the original data blocks stay put (the
        // old chain blocks may be recycled, so compare data coverage via a
        // read instead of set inclusion for them).
        let mut expected = vec![9u8; 8 * 1024];
        expected.extend(vec![0u8; 56 * 1024]);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), expected);
        assert!(after.len() > before.len());
    }

    #[test]
    fn resize_to_zero_and_no_space() {
        let (fs, keys, params, mut rng) = fixture();
        let free_start = fs.free_data_blocks();
        let mut obj = create(&fs, "z", &keys, ObjectKind::File, &params).unwrap();
        write(&fs, &keys, &mut obj, &vec![1u8; 5000], &params, &mut rng).unwrap();

        resize(&fs, &keys, &mut obj, 0, &params, &mut rng).unwrap();
        assert_eq!(obj.size(), 0);
        assert_eq!(obj.header.data_block_count, 0);
        assert_eq!(obj.header.inode_chain, NO_BLOCK);
        assert!(read(&fs, &keys, &obj).unwrap().is_empty());

        // An absurd growth request fails cleanly without touching the object.
        assert!(matches!(
            resize(&fs, &keys, &mut obj, u64::MAX / 2, &params, &mut rng),
            Err(StegError::NoSpace)
        ));
        assert_eq!(obj.size(), 0);

        // Deleting returns every block.
        delete(&fs, &keys, &obj, &mut rng).unwrap();
        assert_eq!(fs.free_data_blocks(), free_start);
    }

    #[test]
    fn wrong_key_cannot_open_or_read() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "s", &keys, ObjectKind::File, &params).unwrap();
        write(&fs, &keys, &mut obj, b"classified", &params, &mut rng).unwrap();
        let wrong = ObjectKeys::derive("s", b"wrong key");
        assert!(open(&fs, "s", &wrong, &params).unwrap_err().is_not_found());
    }

    #[test]
    fn delete_returns_all_blocks_and_scrubs_header() {
        let (fs, keys, params, mut rng) = fixture();
        let free_before = fs.free_data_blocks();
        let mut obj = create(&fs, "d", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![5u8; 40 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        assert!(fs.free_data_blocks() < free_before);

        delete(&fs, &keys, &obj, &mut rng).unwrap();
        assert_eq!(fs.free_data_blocks(), free_before, "all blocks returned");
        // The object can no longer be found.
        assert!(open(&fs, "d", &keys, &params).unwrap_err().is_not_found());
    }

    #[test]
    fn owned_blocks_accounts_for_everything() {
        let (fs, keys, params, mut rng) = fixture();
        let free_start = fs.free_data_blocks();
        let mut obj = create(&fs, "o", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![9u8; 20 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        let owned = owned_blocks(&fs, &keys, &obj).unwrap();
        let consumed = free_start - fs.free_data_blocks();
        assert_eq!(owned.len() as u64, consumed);
        assert!(owned.contains(&obj.header_block));
    }

    #[test]
    fn hidden_blocks_never_appear_in_central_directory() {
        let (fs, keys, params, mut rng) = fixture();
        fs.write_file("/plain.txt", b"visible data").unwrap();
        let mut obj = create(&fs, "h", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![3u8; 30 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();

        let plain_blocks = fs.plain_object_blocks().unwrap();
        let hidden = owned_blocks(&fs, &keys, &obj).unwrap();
        for b in &hidden {
            assert!(
                !plain_blocks.contains(b),
                "hidden block {b} leaked into the central directory"
            );
            assert!(
                fs.is_block_allocated(*b),
                "hidden block {b} must be marked in the bitmap"
            );
        }
    }

    #[test]
    fn no_space_write_fails_cleanly() {
        // Small volume: fill most of it with a plain file, then try to write
        // a hidden object that cannot fit.
        let fs = PlainFs::format(MemBlockDevice::new(1024, 512), FormatOptions::default()).unwrap();
        let keys = ObjectKeys::derive("x", b"k");
        let params = StegParams::for_tests();
        let mut rng = DeterministicRng::new(b"r");
        let mut obj = create(&fs, "x", &keys, ObjectKind::File, &params).unwrap();
        let free = fs.free_data_blocks();
        let too_big = vec![0u8; ((free + 16) * 1024) as usize];
        assert!(matches!(
            write(&fs, &keys, &mut obj, &too_big, &params, &mut rng),
            Err(StegError::NoSpace)
        ));
    }

    #[test]
    fn two_objects_do_not_interfere() {
        let (fs, _, params, mut rng) = fixture();
        let ka = ObjectKeys::derive("a", b"key-a");
        let kb = ObjectKeys::derive("b", b"key-b");
        let mut a = create(&fs, "a", &ka, ObjectKind::File, &params).unwrap();
        let mut b = create(&fs, "b", &kb, ObjectKind::File, &params).unwrap();
        write(&fs, &ka, &mut a, &vec![0xaa; 10_000], &params, &mut rng).unwrap();
        write(&fs, &kb, &mut b, &vec![0xbb; 20_000], &params, &mut rng).unwrap();
        assert_eq!(read(&fs, &ka, &a).unwrap(), vec![0xaa; 10_000]);
        assert_eq!(read(&fs, &kb, &b).unwrap(), vec![0xbb; 20_000]);
        let blocks_a = owned_blocks(&fs, &ka, &a).unwrap();
        let blocks_b = owned_blocks(&fs, &kb, &b).unwrap();
        assert!(blocks_a.iter().all(|x| !blocks_b.contains(x)));
    }
}
