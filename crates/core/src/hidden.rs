//! The hidden-object engine: create, open, read, write, delete.
//!
//! This module implements the life cycle of a single hidden object on top of
//! the plain file system's bitmap and raw-block interface.  Nothing here
//! touches the central directory; the only trace a hidden object leaves in
//! shared metadata is its blocks being marked allocated — just like abandoned
//! blocks and dummy files.
//!
//! The free-block-pool behaviour follows §3.1: a freshly created object
//! immediately claims `FB_max` random blocks; extension consumes pool blocks
//! (topping the pool back up when it drops below `FB_min`); truncation feeds
//! freed blocks back into the pool and only returns the excess beyond
//! `FB_max` to the file system.
//!
//! Objects carry a per-object durability [`Policy`]: a coded object stores
//! `n` cipher-shares per group of `m` logical blocks (any `m` reconstruct —
//! see [`crate::coding`]), the read path falls back through surviving
//! shares on checksum mismatch, and [`repair`] rewrites damaged shares from
//! the survivors.  On the raw device shares are indistinguishable from any
//! other hidden block.

use crate::coding::{self, Policy};
use crate::crypt::ObjectKeys;
use crate::error::{StegError, StegResult};
use crate::header::{HiddenHeader, InodeChainBlock, ObjectKind, NO_BLOCK};
use crate::locator::{candidate_sequence, locate_header, Located};
use crate::params::StegParams;
use crate::readcache::{scratch, ExtentList, ReadCache};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stegfs_blockdev::BlockDevice;
use stegfs_crypto::prng::DeterministicRng;
use stegfs_fs::{FsTxn, PlainFs};
use stegfs_obs::span;

/// An open hidden object: its header block number and current header state.
#[derive(Debug, Clone)]
pub struct HiddenObject {
    /// Physical block holding the (encrypted) header.
    pub header_block: u64,
    /// Decrypted header contents.
    pub header: HiddenHeader,
    /// Number of locator probes it took to find the header (1 for a freshly
    /// created object).
    pub probes: usize,
}

impl HiddenObject {
    /// Size in bytes of the object's contents.
    pub fn size(&self) -> u64 {
        self.header.size
    }

    /// File or directory.
    pub fn kind(&self) -> ObjectKind {
        self.header.kind
    }
}

/// Degradation signal threaded through the `*_observed` read paths: set
/// whenever a read succeeded only by falling back to redundancy — a data
/// group decoded from fallback shares, a header found at a replica, or a
/// chain node served by a replica.  The facade turns a raised flag into a
/// read-repair ticket so the volume converges back to full redundancy.
#[derive(Debug, Default)]
pub struct ReadHealth {
    degraded: AtomicBool,
}

impl ReadHealth {
    /// A fresh, healthy signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that redundancy absorbed damage during this operation.
    pub fn mark_degraded(&self) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// True when some fallback path fired since the last [`clear`](Self::clear).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Reset the signal for reuse.
    pub fn clear(&self) {
        self.degraded.store(false, Ordering::Relaxed);
    }
}

fn mark(health: Option<&ReadHealth>) {
    if let Some(h) = health {
        h.mark_degraded();
    }
}

/// The number of copies each of this object's metadata blocks actually has
///// on disk: 1 for legacy headers (no replica table) and for [`Policy`]s
/// without redundancy, `n - m + 1` otherwise — metadata then survives the
/// same per-group loss budget as the data it indexes.
pub fn effective_meta_copies(header: &HiddenHeader) -> usize {
    if header.header_replicas.is_empty() {
        1
    } else {
        header.policy.meta_copies()
    }
}

/// Write the (shared) serialised header to every replica block.  Objects
/// with a legacy single-copy header keep writing just `header_block`.
fn publish_header<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    keys: &ObjectKeys,
    header_block: u64,
    header: &HiddenHeader,
) -> StegResult<()> {
    let plain = header.serialize(txn.block_size());
    if header.header_replicas.is_empty() {
        write_encrypted(txn, keys, header_block, &plain)
    } else {
        for &b in &header.header_replicas {
            write_encrypted(txn, keys, b, &plain)?;
        }
        Ok(())
    }
}

fn write_encrypted<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    keys: &ObjectKeys,
    block: u64,
    plaintext_block: &[u8],
) -> StegResult<()> {
    let mut buf = scratch::take(plaintext_block.len());
    buf.copy_from_slice(plaintext_block);
    {
        let _s = span::span(span::Phase::Crypto);
        keys.encrypt_block(block, &mut buf);
    }
    let result = txn.write_raw_block(block, &buf);
    scratch::put(buf);
    result?;
    Ok(())
}

/// Read and decrypt one block into a pooled scratch buffer; return it with
/// [`scratch::put`] when done.
fn read_decrypted<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    block: u64,
) -> StegResult<Vec<u8>> {
    let mut buf = scratch::take(fs.block_size());
    fs.read_raw_blocks_into(&[block], &mut buf)?;
    {
        let _s = span::span(span::Phase::Crypto);
        keys.decrypt_block(block, &mut buf);
    }
    Ok(buf)
}

/// Read a whole extent list in **one batched device submission**, then
/// decrypt each block in place (the cipher is keyed per block number, so the
/// crypto stays per-block while the I/O batches).  The returned buffer comes
/// from the thread's scratch pool; callers that do not hand it to their own
/// caller should return it with [`scratch::put`].
fn read_decrypted_many<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    blocks: &[u64],
) -> StegResult<Vec<u8>> {
    let bs = fs.block_size();
    let mut buf = scratch::take(blocks.len() * bs);
    fs.read_raw_blocks_into(blocks, &mut buf)?;
    {
        let _s = span::span(span::Phase::Crypto);
        for (i, &block) in blocks.iter().enumerate() {
            keys.decrypt_block(block, &mut buf[i * bs..(i + 1) * bs]);
        }
    }
    Ok(buf)
}

/// Encrypt `plaintext` (the concatenation of the blocks' contents) per block
/// **in place** — every caller hands over a scratch buffer it is done with —
/// and write the whole extent list in **one batched device submission** (or
/// stage it into the transaction's redo buffer on a journaled volume).  The
/// buffer is zeroed and returned to the thread's scratch pool afterwards.
fn write_encrypted_many<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    keys: &ObjectKeys,
    blocks: &[u64],
    mut plaintext: Vec<u8>,
) -> StegResult<()> {
    let bs = txn.block_size();
    debug_assert_eq!(plaintext.len(), blocks.len() * bs);
    {
        let _s = span::span(span::Phase::Crypto);
        for (i, &block) in blocks.iter().enumerate() {
            keys.encrypt_block(block, &mut plaintext[i * bs..(i + 1) * bs]);
        }
    }
    let result = txn.write_raw_blocks(blocks, &plaintext);
    scratch::put(plaintext);
    result?;
    Ok(())
}

/// Create a new hidden object and write its initial (empty) header.
///
/// The header lands at the first free block of the keyed candidate sequence;
/// the internal free pool is immediately stocked with `FB_max` random blocks.
/// The header write is one transaction: on a journaled volume a crash either
/// yields the complete (empty) object or nothing.
pub fn create<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    kind: ObjectKind,
    params: &StegParams,
) -> StegResult<HiddenObject> {
    create_with_policy(fs, physical_name, keys, kind, Policy::Plain, params)
}

/// [`create`] with an explicit durability policy.  The policy travels in the
/// encrypted header, so it costs nothing observable: a coded object's
/// creation is indistinguishable from a plain one's.
pub fn create_with_policy<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    kind: ObjectKind,
    policy: Policy,
    params: &StegParams,
) -> StegResult<HiddenObject> {
    policy.validate()?;
    let mut txn = fs.begin_txn();
    let copies = policy.meta_copies();
    // Claiming a slot is a separate step from finding it, so two creators
    // racing down different candidate sequences may pick the same free block.
    // The loser's atomic claim fails and it simply probes on: the next walk
    // skips the now-allocated block.  Policies with redundancy claim the
    // first `copies` free candidates of the same keyed sequence — the extra
    // header copies sit on blocks the locator visits anyway, so retrieval
    // falls through to a replica when the primary is damaged and the
    // on-disk image stays as uniform as any other allocation.
    let header_blocks = {
        let sb = fs.superblock().clone();
        let mut locator = candidate_sequence(physical_name, keys, sb.total_blocks);
        let mut claimed = Vec::with_capacity(copies);
        for _ in 0..params.max_locator_probes.max(64) {
            if claimed.len() == copies {
                break;
            }
            let candidate = locator.next_candidate();
            if sb.in_data_region(candidate)
                && !fs.is_block_allocated(candidate)
                && txn.try_allocate_specific_block(candidate)?
            {
                claimed.push(candidate);
            }
        }
        if claimed.len() < copies {
            // The transaction's drop returns any partial claims.
            return Err(StegError::NoSpace);
        }
        claimed
    };
    let header_block = header_blocks[0];

    let mut header = HiddenHeader::with_policy(*keys.signature(), kind, policy);
    header.header_replicas = header_blocks;
    // Stock the internal free pool (§3.1: "StegFS straightaway allocates
    // several blocks to the file").
    for _ in 0..params.free_blocks_max {
        match txn.allocate_random_block() {
            Ok(b) => header.free_pool.push(b),
            Err(stegfs_fs::FsError::NoSpace) => break,
            Err(e) => return Err(e.into()),
        }
    }

    publish_header(&mut txn, keys, header_block, &header)?;
    txn.commit()?;
    Ok(HiddenObject {
        header_block,
        header,
        probes: 1,
    })
}

/// Open an existing hidden object by walking the candidate sequence.
pub fn open<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    params: &StegParams,
) -> StegResult<HiddenObject> {
    open_observed(fs, physical_name, keys, params, None)
}

/// [`open`] with a degradation signal: finding the header at a replica
/// instead of its primary block means the primary was damaged (or claimed
/// by someone who destroyed it) and redundancy absorbed the loss.
pub fn open_observed<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    params: &StegParams,
    health: Option<&ReadHealth>,
) -> StegResult<HiddenObject> {
    let Located {
        block,
        header,
        probes,
    } = locate_header(fs, physical_name, keys, params.max_locator_probes)?;
    if !header.header_replicas.is_empty() && header.header_replicas.first() != Some(&block) {
        mark(health);
    }
    Ok(HiddenObject {
        header_block: block,
        header,
        probes,
    })
}

/// [`open`], accelerated by the read cache: a hit returns the decrypted
/// header without touching the device (and reports `probes == 0`); a miss
/// walks the locator as usual and installs the result.  Misses — including
/// wrong-key lookups — behave exactly like [`open`], so deniability is
/// untouched.
pub fn open_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    params: &StegParams,
    cache: &ReadCache,
) -> StegResult<HiddenObject> {
    open_cached_observed(fs, physical_name, keys, params, cache, None)
}

/// [`open_cached`] with a degradation signal (see [`open_observed`]).  A
/// cache hit skips the device entirely, so only misses can observe damage.
pub fn open_cached_observed<D: BlockDevice>(
    fs: &PlainFs<D>,
    physical_name: &str,
    keys: &ObjectKeys,
    params: &StegParams,
    cache: &ReadCache,
    health: Option<&ReadHealth>,
) -> StegResult<HiddenObject> {
    if let Some(hit) = cache.lookup_header(keys.signature()) {
        return Ok(HiddenObject {
            header_block: hit.header_block,
            header: hit.header,
            probes: 0,
        });
    }
    let started = cache.begin();
    let obj = open_observed(fs, physical_name, keys, params, health)?;
    cache.store_header(
        keys.signature(),
        started,
        obj.header_block,
        obj.header.clone(),
    );
    Ok(obj)
}

/// The extent map of `obj`, from the cache when it still matches the
/// caller's header, or from a chain walk (whose result is installed).
/// Returns the entry generation used to tag this object's plaintext blocks.
fn cached_chain<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    cache: &ReadCache,
    health: Option<&ReadHealth>,
) -> StegResult<(u64, Arc<ExtentList>)> {
    if let Some(hit) = cache.lookup_extents(
        keys.signature(),
        obj.header.inode_chain,
        obj.header.data_block_count,
    ) {
        return Ok(hit);
    }
    let started = cache.begin();
    // Guard against cache poisoning: `obj` may be a *stale* snapshot (a
    // long-lived core-level handle whose object was since rewritten through
    // a name-based path).  Its chain walk must then serve only this caller —
    // installing it would hand the stale header to every fresh open.  The
    // header is trusted when the cached entry still vouches for it; with no
    // entry (first read, or invalidated since the handle opened) the header
    // block on disk is re-read and compared — one extra block on a path that
    // is about to walk the whole chain anyway.
    let trusted = match cache.peek_header(keys.signature()) {
        Some((header_block, header)) => header_block == obj.header_block && header == obj.header,
        None => cache.enabled() && header_matches_disk(fs, keys, obj)?,
    };
    let (data_blocks, chain_blocks, share_csums) = read_chain(fs, keys, obj, health)?;
    let extents = Arc::new(ExtentList {
        data_blocks,
        chain_blocks,
        share_csums,
        coding: obj.header.policy.coding(),
    });
    let gen = if trusted {
        cache.store_extents(
            keys.signature(),
            started,
            obj.header_block,
            obj.header.clone(),
            Arc::clone(&extents),
        )
    } else {
        crate::readcache::DEAD_GEN
    };
    Ok((gen, extents))
}

/// True if the on-disk header block still decrypts and parses to exactly the
/// header the caller holds.
fn header_matches_disk<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<bool> {
    let mut raw = scratch::take(fs.block_size());
    fs.read_raw_blocks_into(&[obj.header_block], &mut raw)?;
    keys.decrypt_block(obj.header_block, &mut raw);
    let parsed = HiddenHeader::parse_if_match(&raw, keys.signature(), fs.superblock().total_blocks);
    scratch::put(raw);
    Ok(parsed.is_some_and(|h| h == obj.header))
}

/// Read the plaintext of `span` (block numbers in logical order), serving
/// what it can from the plaintext cache and fetching the rest — plus any
/// not-yet-cached `readahead` blocks — in **one** batched device
/// submission.  Fetched blocks are decrypted once and installed under `gen`.
/// The returned buffer comes from the scratch pool.
fn read_blocks_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    gen: u64,
    span: &[u64],
    readahead: &[u64],
    cache: &ReadCache,
) -> StegResult<Vec<u8>> {
    let bs = fs.block_size();
    let mut out = scratch::take(span.len() * bs);
    let mut fetch: Vec<u64> = Vec::new();
    let mut fetch_slot: Vec<usize> = Vec::new();
    for (i, &block) in span.iter().enumerate() {
        if !cache.get_block_into(gen, block, &mut out[i * bs..(i + 1) * bs]) {
            fetch.push(block);
            fetch_slot.push(i);
        }
    }
    let demand = fetch.len();
    fetch.extend(
        readahead
            .iter()
            .copied()
            .filter(|&b| !cache.contains_block(gen, b)),
    );
    if !fetch.is_empty() {
        let mut buf = scratch::take(fetch.len() * bs);
        fs.read_raw_blocks_into(&fetch, &mut buf)?;
        for (j, &block) in fetch.iter().enumerate() {
            let chunk = &mut buf[j * bs..(j + 1) * bs];
            keys.decrypt_block(block, chunk);
            cache.put_block(keys.signature(), gen, block, chunk);
        }
        for (j, &slot) in fetch_slot.iter().enumerate() {
            debug_assert!(j < demand);
            out[slot * bs..(slot + 1) * bs].copy_from_slice(&buf[j * bs..(j + 1) * bs]);
        }
        scratch::put(buf);
    }
    Ok(out)
}

/// One resolved node of a (possibly replicated) inode chain.
struct ChainNode {
    /// The node's replica blocks, primary first (`effective_meta_copies`
    /// entries; a single entry on legacy/plain chains).
    blocks: Vec<u64>,
    /// Replicas found damaged at rest (checksum mismatch or parse failure).
    /// Live reads stop probing at the first good replica, so this only
    /// names the replicas examined *before* it; a verifying walk
    /// (`verify_all`) names every damaged replica.
    damaged: Vec<u64>,
    /// Parsed contents, from the first replica that validated.
    node: InodeChainBlock,
    /// The node's canonical plaintext, for rewriting damaged replicas
    /// byte-identically.
    plain: Vec<u8>,
}

/// Walk the inode chain, falling back through each node's replicas.  With
/// one metadata copy the walk is the legacy one: a damaged node is a hard
/// error.  With `copies > 1` a node is served by its first replica whose
/// plaintext checksum (recorded in the predecessor, or the header for the
/// head) validates and parses; only a node with **zero** live replicas
/// fails — closed, in the same deniable error family as lost data shares.
fn walk_chain<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    health: Option<&ReadHealth>,
    verify_all: bool,
) -> StegResult<Vec<ChainNode>> {
    let total = fs.superblock().total_blocks;
    let coded = obj.header.policy.is_coded();
    let copies = effective_meta_copies(&obj.header);
    let mut nodes: Vec<ChainNode> = Vec::new();
    if obj.header.inode_chain == NO_BLOCK {
        return Ok(nodes);
    }
    let mut candidates: Vec<u64> = std::iter::once(obj.header.inode_chain)
        .chain(obj.header.chain_replicas.iter().copied())
        .collect();
    let mut expected_csum = obj.header.chain_csum;
    loop {
        let node = if copies == 1 {
            let block = candidates[0];
            let buf = read_decrypted(fs, keys, block)?;
            let parsed = InodeChainBlock::deserialize_meta(&buf, total, coded, 1);
            let plain = buf.clone();
            scratch::put(buf);
            ChainNode {
                blocks: vec![block],
                damaged: Vec::new(),
                node: parsed?,
                plain,
            }
        } else {
            let mut damaged: Vec<u64> = Vec::new();
            let mut good: Option<(InodeChainBlock, Vec<u8>)> = None;
            for &block in &candidates {
                if good.is_some() && !verify_all {
                    break;
                }
                if block == NO_BLOCK || block >= total {
                    // An implausible replica pointer cannot be read (or
                    // repaired in place); skip it.
                    continue;
                }
                let buf = read_decrypted(fs, keys, block)?;
                let live = coding::share_checksum(&buf) == expected_csum;
                if live {
                    match InodeChainBlock::deserialize_meta(&buf, total, coded, copies) {
                        Ok(parsed) => {
                            if good.is_none() {
                                good = Some((parsed, buf.clone()));
                            }
                        }
                        Err(_) => damaged.push(block),
                    }
                } else {
                    damaged.push(block);
                }
                scratch::put(buf);
            }
            let Some((parsed, plain)) = good else {
                return Err(coding::damage(format!(
                    "inode chain node has 0 live replicas of {copies}"
                )));
            };
            if !damaged.is_empty() {
                mark(health);
            }
            ChainNode {
                blocks: candidates
                    .iter()
                    .copied()
                    .filter(|&b| b != NO_BLOCK && b < total)
                    .collect(),
                damaged,
                node: parsed,
                plain,
            }
        };
        let next = node.node.next;
        let next_candidates: Vec<u64> = std::iter::once(next)
            .chain(node.node.next_replicas.iter().copied())
            .collect();
        expected_csum = node.node.next_csum;
        nodes.push(node);
        if next == NO_BLOCK {
            return Ok(nodes);
        }
        if nodes.len() as u64 > total {
            return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
                "inode chain loops".into(),
            )));
        }
        candidates = next_candidates;
    }
}

/// Read the inode chain of `obj`, returning the data blocks in logical order
/// (for coded objects: share blocks in group-major order), every chain block
/// (all replicas, node-major), and the per-share checksums (empty for plain
/// objects).
fn read_chain<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    health: Option<&ReadHealth>,
) -> StegResult<(Vec<u64>, Vec<u64>, Vec<u64>)> {
    let nodes = walk_chain(fs, keys, obj, health, false)?;
    let mut data_blocks = Vec::with_capacity(obj.header.data_block_count as usize);
    let mut share_csums = Vec::new();
    let mut chain_blocks = Vec::new();
    for node in &nodes {
        chain_blocks.extend_from_slice(&node.blocks);
        data_blocks.extend_from_slice(&node.node.pointers);
        share_csums.extend_from_slice(&node.node.csums);
    }
    Ok((data_blocks, chain_blocks, share_csums))
}

/// Decode the requested groups of a coded object, returning `m * block_size`
/// plaintext bytes per group in `groups` order (a scratch-pool buffer).
///
/// Two-phase fetch: the first `m` shares of every group come up in one
/// batched submission (the common, undamaged case reads exactly as many
/// blocks as a plain object would); any group with a checksum mismatch then
/// falls back through its remaining shares — again one batch for all
/// degraded groups — instead of erroring.  A group with fewer than `m`
/// surviving shares fails closed: the error carries no partial plaintext.
#[allow(clippy::too_many_arguments)]
fn decode_groups<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    data_blocks: &[u64],
    share_csums: &[u64],
    m: usize,
    n: usize,
    groups: &[usize],
    health: Option<&ReadHealth>,
) -> StegResult<Vec<u8>> {
    let bs = fs.block_size();
    if data_blocks.len() != share_csums.len() || !data_blocks.len().is_multiple_of(n) {
        return Err(coding::damage(
            "coded chain does not pair every share with a checksum".into(),
        ));
    }
    let primary: Vec<u64> = groups
        .iter()
        .flat_map(|&g| data_blocks[g * n..g * n + m].iter().copied())
        .collect();
    let buf = read_decrypted_many(fs, keys, &primary)?;
    let mut good: Vec<Vec<(u8, Vec<u8>)>> = vec![Vec::new(); groups.len()];
    let mut degraded: Vec<usize> = Vec::new();
    for (gi, &g) in groups.iter().enumerate() {
        for j in 0..m {
            let share = &buf[(gi * m + j) * bs..(gi * m + j + 1) * bs];
            if coding::share_checksum(share) == share_csums[g * n + j] {
                good[gi].push(((j + 1) as u8, share.to_vec()));
            }
        }
        if good[gi].len() < m {
            degraded.push(gi);
        }
    }
    scratch::put(buf);
    if !degraded.is_empty() {
        // The read will be served (or fail closed) below, but either way the
        // primary shares alone no longer carry the object.
        mark(health);
    }
    if !degraded.is_empty() && n > m {
        let extra = n - m;
        let fallback: Vec<u64> = degraded
            .iter()
            .flat_map(|&gi| {
                let g = groups[gi];
                data_blocks[g * n + m..(g + 1) * n].iter().copied()
            })
            .collect();
        let buf = read_decrypted_many(fs, keys, &fallback)?;
        for (di, &gi) in degraded.iter().enumerate() {
            let g = groups[gi];
            for j in 0..extra {
                let share = &buf[(di * extra + j) * bs..(di * extra + j + 1) * bs];
                if coding::share_checksum(share) == share_csums[g * n + m + j] {
                    good[gi].push(((m + j + 1) as u8, share.to_vec()));
                }
            }
        }
        scratch::put(buf);
    }
    let mut out = scratch::take(groups.len() * m * bs);
    for (gi, &g) in groups.iter().enumerate() {
        if good[gi].len() < m {
            scratch::put(out);
            return Err(coding::damage(format!(
                "share group {g} has {} live shares, {m} required",
                good[gi].len()
            )));
        }
        match coding::reconstruct_group(&good[gi], m, n, bs) {
            Ok(plain) => out[gi * m * bs..(gi + 1) * m * bs].copy_from_slice(&plain),
            Err(e) => {
                scratch::put(out);
                return Err(e);
            }
        }
    }
    Ok(out)
}

/// Read logical blocks `first..=last` of a coded object, serving what it can
/// from the plaintext cache (keyed by *logical index* — the share blocks
/// themselves are never cached) and decoding the missing groups.  Every
/// freshly decoded block is installed under `gen`, so a warm object costs
/// neither device reads nor Vandermonde solves.  Returns a scratch-pool
/// buffer of `(last - first + 1)` blocks.
#[allow(clippy::too_many_arguments)]
fn read_coded_range<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    gen: u64,
    extents: &ExtentList,
    m: usize,
    n: usize,
    first: usize,
    last: usize,
    cache: &ReadCache,
    health: Option<&ReadHealth>,
) -> StegResult<Vec<u8>> {
    let bs = fs.block_size();
    let logical_count = (extents.data_blocks.len() / n.max(1)) * m;
    if last >= logical_count {
        return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
            "hidden object shorter than its size field".into(),
        )));
    }
    let mut out = scratch::take((last - first + 1) * bs);
    let mut missing: Vec<usize> = Vec::new();
    for i in first..=last {
        let slot = (i - first) * bs;
        if !cache.get_block_into(gen, i as u64, &mut out[slot..slot + bs]) {
            let g = i / m;
            if missing.last() != Some(&g) {
                missing.push(g);
            }
        }
    }
    if !missing.is_empty() {
        let decoded = match decode_groups(
            fs,
            keys,
            &extents.data_blocks,
            &extents.share_csums,
            m,
            n,
            &missing,
            health,
        ) {
            Ok(d) => d,
            Err(e) => {
                scratch::put(out);
                return Err(e);
            }
        };
        for (gi, &g) in missing.iter().enumerate() {
            for k in 0..m {
                let logical = g * m + k;
                let chunk = &decoded[(gi * m + k) * bs..(gi * m + k + 1) * bs];
                cache.put_block(keys.signature(), gen, logical as u64, chunk);
                if logical >= first && logical <= last {
                    let slot = (logical - first) * bs;
                    out[slot..slot + bs].copy_from_slice(chunk);
                }
            }
        }
        scratch::put(decoded);
    }
    Ok(out)
}

/// Read the full contents of a hidden object: one chain walk, then the whole
/// extent list in one batched submission.
pub fn read<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<Vec<u8>> {
    read_cached(fs, keys, obj, ReadCache::disabled())
}

/// [`read`], served through the read cache: a warm object costs neither
/// device reads nor decryption.
pub fn read_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    cache: &ReadCache,
) -> StegResult<Vec<u8>> {
    read_cached_observed(fs, keys, obj, cache, None)
}

/// [`read_cached`] with a degradation signal: any fallback decode or chain
/// replica fallback raises `health` so the caller can queue a read-repair.
pub fn read_cached_observed<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    cache: &ReadCache,
    health: Option<&ReadHealth>,
) -> StegResult<Vec<u8>> {
    let (gen, extents) = cached_chain(fs, keys, obj, cache, health)?;
    let mut out = if let Some((m, n)) = obj.header.policy.coding() {
        if obj.header.size == 0 {
            return Ok(Vec::new());
        }
        let last = (obj.header.size as usize - 1) / fs.block_size();
        read_coded_range(fs, keys, gen, &extents, m, n, 0, last, cache, health)?
    } else {
        read_blocks_cached(fs, keys, gen, &extents.data_blocks, &[], cache)?
    };
    out.truncate(obj.header.size as usize);
    Ok(out)
}

/// Read `len` bytes starting at `offset` (clamped to the object size).
pub fn read_range<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    offset: u64,
    len: usize,
) -> StegResult<Vec<u8>> {
    read_range_cached(fs, keys, obj, offset, len, 0, ReadCache::disabled())
}

/// [`read_range`], served through the read cache, with optional streaming
/// readahead: up to `readahead_blocks` blocks past the requested range ride
/// along in the same batched submission and land in the plaintext cache, so
/// a sequential scan pays one device round-trip per readahead window
/// instead of one per request.
pub fn read_range_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    offset: u64,
    len: usize,
    readahead_blocks: usize,
    cache: &ReadCache,
) -> StegResult<Vec<u8>> {
    read_range_cached_observed(fs, keys, obj, offset, len, readahead_blocks, cache, None)
}

/// [`read_range_cached`] with a degradation signal (see
/// [`read_cached_observed`]).
#[allow(clippy::too_many_arguments)]
pub fn read_range_cached_observed<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    offset: u64,
    len: usize,
    readahead_blocks: usize,
    cache: &ReadCache,
    health: Option<&ReadHealth>,
) -> StegResult<Vec<u8>> {
    if len == 0 || offset >= obj.header.size {
        return Ok(Vec::new());
    }
    let end = (offset + len as u64).min(obj.header.size);
    let bs = fs.block_size() as u64;
    let (gen, extents) = cached_chain(fs, keys, obj, cache, health)?;
    let first = (offset / bs) as usize;
    let last = ((end - 1) / bs) as usize;
    if let Some((m, n)) = obj.header.policy.coding() {
        // Decoding already brings in whole groups of `m` blocks (which the
        // cache keeps), so there is no separate readahead window.
        let plain = read_coded_range(fs, keys, gen, &extents, m, n, first, last, cache, health)?;
        let from = (offset - first as u64 * bs) as usize;
        let to = (end - first as u64 * bs) as usize;
        let out = plain[from..to].to_vec();
        scratch::put(plain);
        return Ok(out);
    }
    let data_blocks = &extents.data_blocks;
    let span = data_blocks.get(first..=last).ok_or_else(|| {
        StegError::Fs(stegfs_fs::FsError::Corrupt(
            "hidden object shorter than its size field".into(),
        ))
    })?;
    // Readahead only pays off when the prefetched plaintext can be kept.
    let readahead = if cache.enabled() && readahead_blocks > 0 {
        let ra_end = (last + 1)
            .saturating_add(readahead_blocks)
            .min(data_blocks.len());
        &data_blocks[last + 1..ra_end]
    } else {
        &data_blocks[..0]
    };
    // One batched submission covers the whole extent of the range (plus the
    // readahead window).
    let plain = read_blocks_cached(fs, keys, gen, span, readahead, cache)?;
    let from = (offset - first as u64 * bs) as usize;
    let to = (end - first as u64 * bs) as usize;
    let out = plain[from..to].to_vec();
    scratch::put(plain);
    Ok(out)
}

/// Overwrite part of an existing hidden object in place.  The range must lie
/// within the object's current size; blocks are decrypted, patched and
/// re-encrypted individually (the multi-user experiments update files at
/// block granularity).  Takes `&mut` because a coded patch under replicated
/// metadata refreshes the header's chain checksum (see
/// `write_range_coded`); plain objects leave the header untouched.
pub fn write_range<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    offset: u64,
    data: &[u8],
) -> StegResult<()> {
    write_range_cached(fs, keys, obj, offset, data, ReadCache::disabled())
}

/// [`write_range`], accelerated by the read cache: the extent map comes
/// from the cache when warm, and since an in-place patch leaves the chain
/// untouched the *same* extent list is re-installed after the commit — only
/// the plaintext blocks drop (their generation dies with the invalidation),
/// which is exactly the set the patch made stale.  Coded objects rewrite
/// their chain nodes' checksums, so their entry is invalidated without a
/// re-install (the next operation walks cold).
pub fn write_range_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    offset: u64,
    data: &[u8],
    cache: &ReadCache,
) -> StegResult<()> {
    if data.is_empty() {
        return Ok(());
    }
    let end = offset + data.len() as u64;
    if end > obj.header.size {
        return Err(StegError::Fs(stegfs_fs::FsError::FileTooLarge {
            requested: end,
            maximum: obj.header.size,
        }));
    }
    if let Some((m, n)) = obj.header.policy.coding() {
        let result = write_range_coded(fs, keys, obj, offset, data, m, n);
        cache.invalidate(keys.signature());
        return result;
    }
    let (_, extents) = match cached_chain(fs, keys, obj, cache, None) {
        Ok(hit) => hit,
        Err(e) => {
            cache.invalidate(keys.signature());
            return Err(e);
        }
    };
    let outcome = write_range_plain(fs, keys, offset, data, &extents.data_blocks)
        .map(|()| extents.as_ref().clone());
    republish(keys, obj, outcome, cache)
}

/// The in-place patch core of [`write_range`] for plain objects, against an
/// already-resolved extent list.
fn write_range_plain<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    offset: u64,
    data: &[u8],
    data_blocks: &[u64],
) -> StegResult<()> {
    let end = offset + data.len() as u64;
    let bs = fs.block_size() as u64;
    let first = (offset / bs) as usize;
    let last = ((end - 1) / bs) as usize;
    let span = data_blocks.get(first..=last).ok_or_else(|| {
        StegError::Fs(stegfs_fs::FsError::Corrupt(
            "hidden object shorter than its size field".into(),
        ))
    })?;
    // Batched read-modify-write: only a partial head or tail block needs its
    // old contents (fully covered middle blocks are rebuilt from `data`; the
    // edge selection is the shared [`stegfs_fs::rmw`] plan), so at most two
    // edge blocks come up in one submission and the whole patched extent
    // goes back down in one submission.  The patch is one transaction: an
    // in-place update of live data is exactly the write a crash must not
    // tear.
    let span_start = first as u64 * bs;
    let bs = bs as usize;
    let plan = stegfs_fs::rmw::plan(span, offset, end, span_start, bs);
    let edge_plain = read_decrypted_many(fs, keys, &plan.edges)?;
    let mut plain = scratch::take(span.len() * bs);
    plan.seed_edges(&edge_plain, &mut plain, bs);
    scratch::put(edge_plain);
    let from = (offset - span_start) as usize;
    plain[from..from + data.len()].copy_from_slice(data);
    let mut txn = fs.begin_txn();
    write_encrypted_many(&mut txn, keys, span, plain)?;
    txn.commit()?;
    Ok(())
}

/// [`write_range`] for coded objects: decode the affected groups (with the
/// usual fall-back through surviving shares), patch the plaintext, re-encode
/// and rewrite those groups' full share extents together with every chain
/// node whose checksum entries they own — one transaction, so a crash never
/// leaves a group whose shares disagree with its recorded checksums.
///
/// Under replicated metadata a patched node's new plaintext changes the
/// checksum its *predecessor* records, so the rewrite cascades from the last
/// affected node back to the head and into the header (`chain_csum`) — which
/// is why this path takes `&mut` and refreshes the caller's header snapshot.
fn write_range_coded<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    offset: u64,
    data: &[u8],
    m: usize,
    n: usize,
) -> StegResult<()> {
    let bs = fs.block_size();
    let end = offset + data.len() as u64;
    let copies = effective_meta_copies(&obj.header);
    let mut nodes = walk_chain(fs, keys, obj, None, false)?;
    let data_blocks: Vec<u64> = nodes
        .iter()
        .flat_map(|nd| nd.node.pointers.iter().copied())
        .collect();
    let share_csums: Vec<u64> = nodes
        .iter()
        .flat_map(|nd| nd.node.csums.iter().copied())
        .collect();
    let group_bytes = (m * bs) as u64;
    let g0 = (offset / group_bytes) as usize;
    let g1 = ((end - 1) / group_bytes) as usize;
    if g1 >= data_blocks.len() / n.max(1) {
        return Err(StegError::Fs(stegfs_fs::FsError::Corrupt(
            "hidden object shorter than its size field".into(),
        )));
    }
    let groups: Vec<usize> = (g0..=g1).collect();
    let mut plain = decode_groups(fs, keys, &data_blocks, &share_csums, m, n, &groups, None)?;
    let from = (offset - g0 as u64 * group_bytes) as usize;
    plain[from..from + data.len()].copy_from_slice(data);
    let (payload, new_csums) = coding::encode_groups(&plain, bs, m, n);
    scratch::put(plain);

    let first_entry = g0 * n;
    let last_entry = (g1 + 1) * n - 1;
    let span = &data_blocks[first_entry..=last_entry];
    let mut txn = fs.begin_txn();
    write_encrypted_many(&mut txn, keys, span, payload)?;
    let cap = InodeChainBlock::capacity_meta(bs, true, copies).max(1);
    let first_node = first_entry / cap;
    let last_node = last_entry / cap;
    for (node_idx, nd) in nodes
        .iter_mut()
        .enumerate()
        .take(last_node + 1)
        .skip(first_node)
    {
        let node_start = node_idx * cap;
        for (i, csum) in nd.node.csums.iter_mut().enumerate() {
            let e = node_start + i;
            if e >= first_entry && e <= last_entry {
                *csum = new_csums[e - first_entry];
            }
        }
    }
    if copies == 1 {
        for nd in nodes.iter().take(last_node + 1).skip(first_node) {
            write_encrypted(
                &mut txn,
                keys,
                nd.blocks[0],
                &nd.node.serialize_meta(bs, true, 1),
            )?;
        }
    } else {
        // Cascade: rewrite nodes `last_node..=0` back to front so each
        // predecessor records its successor's fresh checksum, then republish
        // the header with the head node's checksum.  Every replica of a
        // rewritten node gets the identical plaintext (which also heals any
        // replica that had silently rotted).
        let mut child_csum: Option<u64> = None;
        let mut plains: Vec<Vec<u8>> = vec![Vec::new(); last_node + 1];
        for (node_idx, p) in plains.iter_mut().enumerate().rev() {
            if let Some(c) = child_csum {
                nodes[node_idx].node.next_csum = c;
            }
            *p = nodes[node_idx].node.serialize_meta(bs, true, copies);
            child_csum = Some(coding::share_checksum(p));
        }
        for (node_idx, p) in plains.iter().enumerate() {
            for &b in &nodes[node_idx].blocks {
                write_encrypted(&mut txn, keys, b, p)?;
            }
        }
        let mut header = obj.header.clone();
        header.chain_csum = child_csum.expect("coded patch touches at least one node");
        publish_header(&mut txn, keys, obj.header_block, &header)?;
        txn.commit()?;
        obj.header = header;
        return Ok(());
    }
    txn.commit()?;
    Ok(())
}

/// Take one block for new data: prefer the internal free pool (choosing a
/// random member, per §3.1), then a fresh random block, and only under space
/// pressure a block the current operation is recycling from the object's
/// previous incarnation.
///
/// Preferring fresh blocks keeps rewrites *churning the bitmap* — dummy-file
/// maintenance depends on rewrites allocating new random blocks and freeing
/// old ones, so snapshot differencing cannot attribute deltas to real data.
/// Recycled blocks stay marked allocated in the bitmap throughout (they are
/// never freed mid-operation), so a failing rewrite can never leave the
/// object's still-current header pointing at blocks another thread has been
/// handed; on a nearly full volume they are consumed in place, which is what
/// lets a rewrite or truncation succeed without double the footprint.
/// Blocks drawn fresh from the volume are tracked by the transaction, which
/// returns them to the volume if the operation fails before committing
/// (with the shared-reference API a concurrent writer can consume the space
/// between our capacity check and the allocations).
fn take_block<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    header: &mut HiddenHeader,
    rng: &mut DeterministicRng,
    recycled: &mut Vec<u64>,
) -> StegResult<u64> {
    if !header.free_pool.is_empty() {
        let idx = rng.next_below(header.free_pool.len() as u64) as usize;
        return Ok(header.free_pool.swap_remove(idx));
    }
    match txn.allocate_random_block() {
        Ok(block) => Ok(block),
        Err(stegfs_fs::FsError::NoSpace) if !recycled.is_empty() => {
            Ok(recycled.pop().expect("checked non-empty"))
        }
        Err(e) => Err(e.into()),
    }
}

/// Replace the entire contents of a hidden object with `data`.
///
/// This is the write path the experiments exercise (whole-file writes, as in
/// the paper's workload).  Old data and chain blocks are recycled through the
/// free pool; new blocks are drawn from the pool first and then from random
/// free space.
pub fn write<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    data: &[u8],
    params: &StegParams,
    rng: &mut DeterministicRng,
) -> StegResult<()> {
    write_cached(fs, keys, obj, data, params, rng, ReadCache::disabled())
}

/// [`write()`], accelerated by the read cache: the old incarnation's extent
/// map — the chain walk every rewrite starts with — comes from the cache
/// when warm, so a warm rewrite does **zero chain-walk I/O**.  After the
/// commit the object's entry is invalidated and the *new* header + extent
/// list are installed in its place (invalidate-on-publish: plaintext blocks
/// of the old incarnation die with its generation), so the next read *or*
/// write of the object is warm too.  A failed write only invalidates.
pub fn write_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    data: &[u8],
    params: &StegParams,
    rng: &mut DeterministicRng,
    cache: &ReadCache,
) -> StegResult<()> {
    let (old_data, old_chain) = match chain_for_update(fs, keys, obj, cache) {
        Ok(chain) => chain,
        Err(e) => {
            cache.invalidate(keys.signature());
            return Err(e);
        }
    };
    let outcome = write_with_extents(fs, keys, obj, data, params, rng, old_data, old_chain);
    republish(keys, obj, outcome, cache)
}

/// The old chain of an object about to be rewritten: from the extent cache
/// when warm (zero chain-walk I/O), from the disk walk otherwise.
fn chain_for_update<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    cache: &ReadCache,
) -> StegResult<(Vec<u64>, Vec<u64>)> {
    let (_, extents) = cached_chain(fs, keys, obj, cache, None)?;
    Ok((extents.data_blocks.clone(), extents.chain_blocks.clone()))
}

/// Publish a mutation's outcome to the cache: the old incarnation's entry
/// (and its plaintext blocks) is dropped unconditionally, and on success the
/// freshly committed header + extent list are installed in its place.  On a
/// failed mutation the entry is only dropped — on an unjournaled volume the
/// failure may have torn the object, and even on a journaled one the header
/// snapshot in `obj` is no longer vouched for.
fn republish(
    keys: &ObjectKeys,
    obj: &HiddenObject,
    outcome: StegResult<ExtentList>,
    cache: &ReadCache,
) -> StegResult<()> {
    cache.invalidate(keys.signature());
    let extents = outcome?;
    let started = cache.begin();
    cache.store_extents(
        keys.signature(),
        started,
        obj.header_block,
        obj.header.clone(),
        Arc::new(extents),
    );
    Ok(())
}

/// The rewrite core of [`write()`] / [`write_cached`], against an
/// already-resolved old chain (`old_data`, `old_chain`).  Returns the new
/// incarnation's extent list on success (with `obj.header` updated).
#[allow(clippy::too_many_arguments)]
fn write_with_extents<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    data: &[u8],
    params: &StegParams,
    rng: &mut DeterministicRng,
    old_data: Vec<u64>,
    old_chain: Vec<u64>,
) -> StegResult<ExtentList> {
    let bs = fs.block_size();
    let total = fs.superblock().total_blocks;
    let coded = obj.header.policy.is_coded();

    // Encode first: a coded object stores `groups * n` share blocks, a plain
    // one `ceil(len / bs)` data blocks (the zero tail pads the final block
    // or group either way).
    let (payload, csums) = match obj.header.policy.coding() {
        Some((m, n)) => coding::encode_groups(data, bs, m, n),
        None => {
            let mut padded = scratch::take(data.len().div_ceil(bs) * bs);
            padded[..data.len()].copy_from_slice(data);
            (padded, Vec::new())
        }
    };
    let needed = (payload.len() / bs) as u64;

    // Make sure the volume can hold the new contents *before* recycling
    // anything: refusing up front leaves the object untouched, whereas the
    // old freed-then-checked order let a refused update return the object's
    // own data blocks to the volume.  The check counts the recycled blocks
    // as available because they come back to us below.
    let copies = effective_meta_copies(&obj.header);
    let chain_capacity = InodeChainBlock::capacity_meta(bs, coded, copies) as u64;
    let chain_needed = needed.div_ceil(chain_capacity.max(1)) * copies as u64;
    let available = fs.free_data_blocks()
        + obj.header.free_pool.len() as u64
        + old_data.len() as u64
        + old_chain.len() as u64;
    if available < needed + chain_needed {
        scratch::put(payload);
        return Err(StegError::NoSpace);
    }

    // The old blocks are *recycled in place*: they stay allocated in the
    // bitmap and are consumed directly as new data/chain blocks, never freed
    // mid-operation.  The capacity check above is advisory once other
    // writers run in parallel, so every fresh allocation is tracked by the
    // transaction, which hands it back if the operation fails part-way.  On
    // such a failure the object's previous header stays current and every
    // block it names is still allocated — on a journaled volume even the
    // recycled blocks' *contents* survive, because nothing reaches the
    // device before commit; write-through volumes keep the old caveat that
    // consumed recycled blocks may already be overwritten.
    let mut header = obj.header.clone();
    let mut recycled: Vec<u64> = old_data.into_iter().chain(old_chain).collect();
    let mut txn = fs.begin_txn();

    // Claim every data block first — every share of a coded object gets its
    // own independently drawn block — then push the whole extent list down
    // as one batched submission.
    let mut data_blocks = Vec::with_capacity(needed as usize);
    for _ in 0..needed {
        data_blocks.push(take_block(&mut txn, &mut header, rng, &mut recycled)?);
    }
    write_encrypted_many(&mut txn, keys, &data_blocks, payload)?;

    // Build the inode chain (allocate chain blocks the same way).
    let chain_blocks = build_chain(
        &mut txn,
        keys,
        &mut header,
        &data_blocks,
        &csums,
        rng,
        &mut recycled,
    )?;

    // Absorb surplus recycled blocks into the pool (a pure header-local
    // move — nothing is freed yet) and top the pool back up if it is
    // still below the lower bound.
    while header.free_pool.len() < params.free_blocks_max {
        match recycled.pop() {
            Some(b) => header.free_pool.push(b),
            None => break,
        }
    }
    top_up_pool(&mut txn, &mut header, params)?;

    // Publish the new header, release the old incarnation's surplus, and
    // commit.  The frees ride in the same transaction (deferred to its
    // commit on a journaled volume), so the surplus returns to the volume
    // only together with the header that stops referencing it; a failure
    // anywhere above drops the transaction and leaves every block the old
    // header names allocated.
    header.size = data.len() as u64;
    header.data_block_count = data_blocks.len() as u64;
    header.inode_chain = chain_blocks.first().copied().unwrap_or(NO_BLOCK);
    debug_assert!(header.inode_chain == NO_BLOCK || header.inode_chain < total);
    publish_header(&mut txn, keys, obj.header_block, &header)?;
    for b in recycled {
        txn.free_block(b)?;
    }
    txn.commit()?;
    let coding = header.policy.coding();
    obj.header = header;
    Ok(ExtentList {
        data_blocks,
        chain_blocks,
        share_csums: csums,
        coding,
    })
}

/// Serialise `data_blocks` (paired with `csums` for coded objects) into a
/// fresh inode chain, drawing chain blocks from the pool / free space;
/// returns the chain blocks in walk order (empty for an empty object — the
/// head is `first().copied().unwrap_or(NO_BLOCK)`).
///
/// Under a redundant [`Policy`] every chain node is written to
/// [`effective_meta_copies`] independently located blocks (the returned list
/// is node-major: node 0's primary and replicas, then node 1's, …), and the
/// nodes are serialised back to front so each can carry its successor's
/// plaintext checksum; the head node's checksum lands in
/// `header.chain_csum`, anchoring the whole chain to the header.
fn build_chain<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    keys: &ObjectKeys,
    header: &mut HiddenHeader,
    data_blocks: &[u64],
    csums: &[u64],
    rng: &mut DeterministicRng,
    recycled: &mut Vec<u64>,
) -> StegResult<Vec<u64>> {
    let copies = effective_meta_copies(header);
    if data_blocks.is_empty() {
        header.chain_replicas.clear();
        header.chain_csum = 0;
        return Ok(Vec::new());
    }
    let coded = header.policy.is_coded();
    debug_assert_eq!(csums.len(), if coded { data_blocks.len() } else { 0 });
    let bs = txn.block_size();
    let chain_capacity = InodeChainBlock::capacity_meta(bs, coded, copies).max(1);
    let chunks: Vec<&[u64]> = data_blocks.chunks(chain_capacity).collect();
    let mut chain_block_numbers = Vec::with_capacity(chunks.len() * copies);
    for _ in 0..chunks.len() * copies {
        chain_block_numbers.push(take_block(txn, header, rng, recycled)?);
    }
    // Serialise every chain node (back to front, so each node records its
    // successor's checksum), then write the whole chain — every replica of a
    // node carrying the identical plaintext — in one batched submission.
    let mut plain = scratch::take(chunks.len() * copies * bs);
    let mut succ_csum = 0u64;
    for (i, chunk) in chunks.iter().enumerate().rev() {
        let succ_start = (i + 1) * copies;
        let (next, next_replicas) = if i + 1 < chunks.len() {
            (
                chain_block_numbers[succ_start],
                chain_block_numbers[succ_start + 1..succ_start + copies].to_vec(),
            )
        } else {
            (NO_BLOCK, vec![NO_BLOCK; copies - 1])
        };
        let start = i * chain_capacity;
        let chain = InodeChainBlock {
            next,
            next_replicas: if copies > 1 {
                next_replicas
            } else {
                Vec::new()
            },
            next_csum: if copies > 1 { succ_csum } else { 0 },
            pointers: chunk.to_vec(),
            csums: if coded {
                csums[start..start + chunk.len()].to_vec()
            } else {
                Vec::new()
            },
        };
        let node_plain = chain.serialize_meta(bs, coded, copies);
        succ_csum = coding::share_checksum(&node_plain);
        for r in 0..copies {
            let slot = i * copies + r;
            plain[slot * bs..(slot + 1) * bs].copy_from_slice(&node_plain);
        }
    }
    write_encrypted_many(txn, keys, &chain_block_numbers, plain)?;
    header.chain_replicas = if copies > 1 {
        chain_block_numbers[1..copies].to_vec()
    } else {
        Vec::new()
    };
    header.chain_csum = if copies > 1 { succ_csum } else { 0 };
    Ok(chain_block_numbers)
}

/// Refill the internal free pool to `FB_max` once it has dropped below
/// `FB_min` (§3.1).  Newly allocated pool blocks are tracked by the
/// transaction: until the header naming them commits they exist only in a
/// local clone, so a failure returns them to the volume automatically.
fn top_up_pool<D: BlockDevice>(
    txn: &mut FsTxn<'_, D>,
    header: &mut HiddenHeader,
    params: &StegParams,
) -> StegResult<()> {
    if header.free_pool.len() < params.free_blocks_min {
        while header.free_pool.len() < params.free_blocks_max {
            match txn.allocate_random_block() {
                Ok(b) => header.free_pool.push(b),
                Err(stegfs_fs::FsError::NoSpace) => break,
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}

/// Set the object's size to `new_len` at block granularity.
///
/// Unlike [`write()`](self::write), the cost is proportional to the *change* (plus the
/// chain rebuild), not to the object's total size: shrinking recycles only
/// the surplus blocks through the free pool and zeroes the cut tail of the
/// last kept block; growing appends zero-filled blocks.  Existing data
/// blocks are never rewritten, which is what makes appending through the
/// VFS O(append) instead of O(file).
///
/// Invariant maintained (and relied on): within the last data block, every
/// byte beyond `size` is zero — [`write()`](self::write) pads with zeros and the shrink
/// path below re-zeroes, so a later extension exposes zeros, never stale
/// plaintext.
pub fn resize<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    new_len: u64,
    params: &StegParams,
    rng: &mut DeterministicRng,
) -> StegResult<()> {
    resize_cached(fs, keys, obj, new_len, params, rng, ReadCache::disabled())
}

/// [`resize`], accelerated by the read cache: the old chain comes from the
/// cache when warm, and the new header + extent list are installed after
/// the commit (same invalidate-on-publish contract as [`write_cached`]).
pub fn resize_cached<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    new_len: u64,
    params: &StegParams,
    rng: &mut DeterministicRng,
    cache: &ReadCache,
) -> StegResult<()> {
    let old_len = obj.header.size;
    if new_len == old_len {
        return Ok(());
    }
    if obj.header.policy.is_coded() {
        // Re-encodes through the full write path, which republishes itself.
        return resize_coded(fs, keys, obj, new_len, params, rng, cache);
    }
    let (old_data, old_chain) = match chain_for_update(fs, keys, obj, cache) {
        Ok(chain) => chain,
        Err(e) => {
            cache.invalidate(keys.signature());
            return Err(e);
        }
    };
    let outcome = resize_with_extents(fs, keys, obj, new_len, params, rng, old_data, old_chain);
    republish(keys, obj, outcome, cache)
}

/// The plain-object core of [`resize`], against an already-resolved old
/// chain.  Returns the new incarnation's extent list on success.
#[allow(clippy::too_many_arguments)]
fn resize_with_extents<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    new_len: u64,
    params: &StegParams,
    rng: &mut DeterministicRng,
    old_data: Vec<u64>,
    old_chain: Vec<u64>,
) -> StegResult<ExtentList> {
    let old_len = obj.header.size;
    let bs = fs.block_size() as u64;
    let new_count = new_len.div_ceil(bs);
    let mut data_blocks = old_data;
    let mut header = obj.header.clone();
    // As in [`write()`](self::write): surplus blocks are recycled in place
    // (still allocated, consumed before fresh space, released only with the
    // commit), so a mid-operation failure never frees blocks the
    // still-current header references, and the transaction returns fresh
    // allocations to the volume on failure.
    let mut recycled: Vec<u64> = old_chain;
    let mut txn = fs.begin_txn();

    if new_len < old_len {
        recycled.extend(data_blocks.drain(new_count as usize..));
        // Zero the cut tail of the last kept block so the truncated bytes
        // cannot resurface on a later extension.
        let tail = (new_len % bs) as usize;
        if tail != 0 {
            let last = *data_blocks.last().expect("tail implies a kept block");
            let mut plain = read_decrypted(fs, keys, last)?;
            plain[tail..].fill(0);
            let result = write_encrypted(&mut txn, keys, last, &plain);
            scratch::put(plain);
            result?;
        }
    } else {
        // Capacity check before taking anything: the recycled chain
        // blocks come back to us, so count them as available.
        let extra = new_count.saturating_sub(data_blocks.len() as u64);
        let copies = effective_meta_copies(&header) as u64;
        let chain_capacity =
            InodeChainBlock::capacity_meta(fs.block_size(), false, copies as usize).max(1) as u64;
        let chain_needed = new_count.div_ceil(chain_capacity) * copies;
        let available =
            fs.free_data_blocks() + header.free_pool.len() as u64 + recycled.len() as u64;
        if available < extra + chain_needed {
            return Err(StegError::NoSpace);
        }
        // Claim the new tail blocks, then zero-fill them all in one
        // batched submission.
        let mut grown = Vec::with_capacity(extra as usize);
        for _ in 0..extra {
            grown.push(take_block(&mut txn, &mut header, rng, &mut recycled)?);
        }
        let zeros = scratch::take(grown.len() * fs.block_size());
        write_encrypted_many(&mut txn, keys, &grown, zeros)?;
        data_blocks.extend(grown);
    }

    // Rebuild the chain from the recycled blocks first, absorb surplus
    // into the pool (header-local; nothing freed yet), and top up.
    let chain_blocks = build_chain(
        &mut txn,
        keys,
        &mut header,
        &data_blocks,
        &[],
        rng,
        &mut recycled,
    )?;
    while header.free_pool.len() < params.free_blocks_max {
        match recycled.pop() {
            Some(b) => header.free_pool.push(b),
            None => break,
        }
    }
    top_up_pool(&mut txn, &mut header, params)?;

    header.size = new_len;
    header.data_block_count = data_blocks.len() as u64;
    header.inode_chain = chain_blocks.first().copied().unwrap_or(NO_BLOCK);
    publish_header(&mut txn, keys, obj.header_block, &header)?;
    // The surplus returns to the volume with the commit that publishes the
    // header which stops referencing it; see [`write()`](self::write).
    for b in recycled {
        txn.free_block(b)?;
    }
    txn.commit()?;
    obj.header = header;
    Ok(ExtentList::plain(data_blocks, chain_blocks))
}

/// [`resize`] for coded objects: groups couple `m` logical blocks, so a
/// size change re-encodes the whole object — cost `O(size)`, unlike the
/// plain path's `O(change)`.  The capacity pre-check runs before any
/// plaintext is materialised, so an absurd growth request fails cleanly.
fn resize_coded<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &mut HiddenObject,
    new_len: u64,
    params: &StegParams,
    rng: &mut DeterministicRng,
    cache: &ReadCache,
) -> StegResult<()> {
    let bs = fs.block_size() as u64;
    let (m, n) = obj.header.policy.shares();
    let groups = new_len.div_ceil(bs * m as u64);
    let needed = groups.saturating_mul(n as u64);
    let copies = effective_meta_copies(&obj.header) as u64;
    let cap = InodeChainBlock::capacity_meta(fs.block_size(), true, copies as usize).max(1) as u64;
    let chain_needed = needed.div_ceil(cap) * copies;
    let (old_data, old_chain) = chain_for_update(fs, keys, obj, cache)?;
    let available = fs.free_data_blocks()
        + obj.header.free_pool.len() as u64
        + old_data.len() as u64
        + old_chain.len() as u64;
    if available < needed + chain_needed {
        return Err(StegError::NoSpace);
    }
    let mut data = read_cached(fs, keys, obj, cache)?;
    data.resize(new_len as usize, 0);
    write_cached(fs, keys, obj, &data, params, rng, cache)
}

/// Outcome of an offline [`repair`] pass over one hidden object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// Every share verified against its checksum; nothing was written.
    Intact,
    /// Damage was found and reversed: the listed number of share blocks
    /// were reconstructed from surviving shares and rewritten in place.
    Repaired {
        /// Share blocks rebuilt and rewritten.
        shares_rebuilt: usize,
    },
    /// At least one group has fewer than `m` surviving shares.  The object
    /// is unrecoverable and **nothing was written** — repair fails closed
    /// rather than committing a partial reconstruction.
    Lost {
        /// Groups that cannot be reconstructed.
        groups_lost: usize,
    },
}

/// Verify every share of a coded object against its recorded checksum and
/// rewrite the damaged ones from the survivors.
///
/// Splitting is deterministic and the per-block cipher is keyed by block
/// number, so a rebuilt share re-encrypts to the byte-identical ciphertext
/// the volume originally held — a repaired image is indistinguishable from
/// one that was never damaged.  The same holds for replicated metadata:
/// every header and chain replica is verified against the surviving copy's
/// plaintext and damaged replicas are rewritten byte-identically (their
/// count folds into `shares_rebuilt`).  Plain objects carry no redundancy
/// and report [`RepairOutcome::Intact`] untouched.  All rewrites ride in one
/// transaction; an unrecoverable object writes nothing at all.
pub fn repair<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<RepairOutcome> {
    let Some((m, n)) = obj.header.policy.coding() else {
        return Ok(RepairOutcome::Intact);
    };
    let bs = fs.block_size();

    // Metadata sweep first: a full chain walk that visits *every* replica
    // (not just the first live one) and records the rotten ones.  An
    // unreadable chain fails closed here, before anything is written.
    let nodes = walk_chain(fs, keys, obj, None, true)?;
    let data_blocks: Vec<u64> = nodes
        .iter()
        .flat_map(|nd| nd.node.pointers.iter().copied())
        .collect();
    let share_csums: Vec<u64> = nodes
        .iter()
        .flat_map(|nd| nd.node.csums.iter().copied())
        .collect();
    let mut meta_rewrites: Vec<(u64, Vec<u8>)> = Vec::new();
    for nd in &nodes {
        for &b in &nd.damaged {
            meta_rewrites.push((b, nd.plain.clone()));
        }
    }
    // Header replicas: intact iff the replica decrypts to exactly the bytes
    // the surviving header serialises to (serialisation is canonical, so the
    // comparison is byte-for-byte).
    if !obj.header.header_replicas.is_empty() {
        let expected = obj.header.serialize(bs);
        for &b in &obj.header.header_replicas {
            let found = read_decrypted(fs, keys, b)?;
            let intact = found[..] == expected[..];
            scratch::put(found);
            if !intact {
                meta_rewrites.push((b, expected.clone()));
            }
        }
    }

    if data_blocks.is_empty() && meta_rewrites.is_empty() {
        return Ok(RepairOutcome::Intact);
    }
    if data_blocks.len() != share_csums.len() || !data_blocks.len().is_multiple_of(n) {
        return Err(coding::damage(
            "coded chain does not pair every share with a checksum".into(),
        ));
    }
    let buf = read_decrypted_many(fs, keys, &data_blocks)?;
    let groups = data_blocks.len() / n;
    let mut good: Vec<Vec<(u8, Vec<u8>)>> = vec![Vec::new(); groups];
    let mut bad: Vec<Vec<usize>> = vec![Vec::new(); groups];
    for g in 0..groups {
        for j in 0..n {
            let idx = g * n + j;
            let share = &buf[idx * bs..(idx + 1) * bs];
            if coding::share_checksum(share) == share_csums[idx] {
                good[g].push(((j + 1) as u8, share.to_vec()));
            } else {
                bad[g].push(j);
            }
        }
    }
    scratch::put(buf);
    let groups_lost = good.iter().filter(|g| g.len() < m).count();
    if groups_lost > 0 {
        return Ok(RepairOutcome::Lost { groups_lost });
    }
    let shares_rebuilt: usize = bad.iter().map(|b| b.len()).sum::<usize>() + meta_rewrites.len();
    if shares_rebuilt == 0 {
        return Ok(RepairOutcome::Intact);
    }
    let mut txn = fs.begin_txn();
    for (b, plain) in &meta_rewrites {
        write_encrypted(&mut txn, keys, *b, plain)?;
    }
    for g in 0..groups {
        if bad[g].is_empty() {
            continue;
        }
        let plain = coding::reconstruct_group(&good[g], m, n, bs)?;
        let shares = coding::split_group(&plain, m, n);
        for &j in &bad[g] {
            write_encrypted(&mut txn, keys, data_blocks[g * n + j], &shares[j].data)?;
        }
    }
    txn.commit()?;
    Ok(RepairOutcome::Repaired { shares_rebuilt })
}

/// Last-resort teardown for an object whose chain can no longer be walked:
/// scrub and free the header replicas and pool blocks the header itself
/// names, leaving the unreachable chain/data blocks allocated.  The
/// scavenger uses this before re-creating a lost directory in place — the
/// bounded leak is preferable to freeing blocks we cannot prove are the
/// object's.
pub fn destroy_unreadable<D: BlockDevice>(
    fs: &PlainFs<D>,
    obj: &HiddenObject,
    rng: &mut DeterministicRng,
) -> StegResult<()> {
    let mut txn = fs.begin_txn();
    for b in obj.header.free_pool.iter().copied() {
        txn.free_block(b)?;
    }
    let header_blocks: Vec<u64> = if obj.header.header_replicas.is_empty() {
        vec![obj.header_block]
    } else {
        obj.header.header_replicas.clone()
    };
    for &hb in &header_blocks {
        let noise = rng.bytes(fs.block_size());
        txn.write_raw_block(hb, &noise)?;
        txn.free_block(hb)?;
    }
    txn.commit()?;
    Ok(())
}

/// The object's data blocks chunked per coding group: `n` share blocks per
/// group (plain objects report each block as its own single-entry group).
/// The corruption experiments and the survival smoke use this map to
/// destroy a chosen number of shares per group.
pub fn share_extents<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<Vec<Vec<u64>>> {
    let (_, n) = obj.header.policy.shares();
    let (data_blocks, _, _) = read_chain(fs, keys, obj, None)?;
    Ok(data_blocks.chunks(n.max(1)).map(|c| c.to_vec()).collect())
}

/// Delete a hidden object: every block it holds (data, chain, pool, header)
/// is returned to the file system, and the header block is overwritten with
/// fresh pseudorandom fill so no stale signature survives on disk.
pub fn delete<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
    rng: &mut DeterministicRng,
) -> StegResult<()> {
    // One transaction: the header scrub and every free commit together, so a
    // crash mid-delete leaves the object either whole or entirely gone —
    // never a findable header whose blocks have been handed out.
    let mut txn = fs.begin_txn();
    let (data_blocks, chain_blocks, _) = read_chain(fs, keys, obj, None)?;
    for b in data_blocks
        .into_iter()
        .chain(chain_blocks)
        .chain(obj.header.free_pool.iter().copied())
    {
        txn.free_block(b)?;
    }
    // Scrub every header replica so the signature cannot be found again,
    // then free them.  Legacy single-copy objects scrub just `header_block`.
    let header_blocks: Vec<u64> = if obj.header.header_replicas.is_empty() {
        vec![obj.header_block]
    } else {
        obj.header.header_replicas.clone()
    };
    for &hb in &header_blocks {
        let noise = rng.bytes(fs.block_size());
        txn.write_raw_block(hb, &noise)?;
        txn.free_block(hb)?;
    }
    txn.commit()?;
    Ok(())
}

/// All blocks currently owned by the object (header, chain, data, pool).
/// Used by the space accounting in the experiments.
pub fn owned_blocks<D: BlockDevice>(
    fs: &PlainFs<D>,
    keys: &ObjectKeys,
    obj: &HiddenObject,
) -> StegResult<Vec<u64>> {
    let (data_blocks, chain_blocks, _) = read_chain(fs, keys, obj, None)?;
    let mut all = if obj.header.header_replicas.is_empty() {
        vec![obj.header_block]
    } else {
        obj.header.header_replicas.clone()
    };
    all.extend(data_blocks);
    all.extend(chain_blocks);
    all.extend(obj.header.free_pool.iter().copied());
    all.sort_unstable();
    all.dedup();
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stegfs_blockdev::MemBlockDevice;
    use stegfs_fs::{FormatOptions, PlainFs};

    fn fixture() -> (
        PlainFs<MemBlockDevice>,
        ObjectKeys,
        StegParams,
        DeterministicRng,
    ) {
        let fs =
            PlainFs::format(MemBlockDevice::new(1024, 8192), FormatOptions::default()).unwrap();
        let keys = ObjectKeys::derive("u1:/secret/budget.xls", b"file access key");
        let params = StegParams::for_tests();
        let rng = DeterministicRng::new(b"hidden-tests");
        (fs, keys, params, rng)
    }

    #[test]
    fn create_open_roundtrip() {
        let (fs, keys, params, _) = fixture();
        let created = create(
            &fs,
            "u1:/secret/budget.xls",
            &keys,
            ObjectKind::File,
            &params,
        )
        .unwrap();
        assert_eq!(created.header.free_pool.len(), params.free_blocks_max);
        let opened = open(&fs, "u1:/secret/budget.xls", &keys, &params).unwrap();
        assert_eq!(opened.header_block, created.header_block);
        assert_eq!(opened.header, created.header);
        assert_eq!(opened.kind(), ObjectKind::File);
        assert_eq!(opened.size(), 0);
    }

    #[test]
    fn empty_object_reads_empty() {
        let (fs, keys, params, _) = fixture();
        let obj = create(&fs, "n", &keys, ObjectKind::File, &params).unwrap();
        assert_eq!(read(&fs, &keys, &obj).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_read_roundtrip_small() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "n", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            b"hello hidden world",
            &params,
            &mut rng,
        )
        .unwrap();
        assert_eq!(obj.size(), 18);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), b"hello hidden world");
        // And through a fresh open.
        let reopened = open(&fs, "n", &keys, &params).unwrap();
        assert_eq!(read(&fs, &keys, &reopened).unwrap(), b"hello hidden world");
    }

    #[test]
    fn write_read_roundtrip_multi_chain() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "big", &keys, ObjectKind::File, &params).unwrap();
        // 400 KB needs 400 data blocks -> 4 chain blocks at 1 KB block size.
        let data: Vec<u8> = (0..400 * 1024u32).map(|i| (i % 251) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        assert_eq!(read(&fs, &keys, &obj).unwrap(), data);
        assert_eq!(obj.header.data_block_count, 400);
    }

    #[test]
    fn read_range_matches_full_read() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "r", &keys, ObjectKind::File, &params).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        assert_eq!(read_range(&fs, &keys, &obj, 0, 100).unwrap(), &data[..100]);
        assert_eq!(
            read_range(&fs, &keys, &obj, 1020, 10).unwrap(),
            &data[1020..1030]
        );
        assert_eq!(
            read_range(&fs, &keys, &obj, 9_990, 100).unwrap(),
            &data[9_990..]
        );
        assert!(read_range(&fs, &keys, &obj, 20_000, 5).unwrap().is_empty());
        // Zero-length reads are empty, not an underflow (offset 0 included).
        assert!(read_range(&fs, &keys, &obj, 0, 0).unwrap().is_empty());
        assert!(read_range(&fs, &keys, &obj, 1024, 0).unwrap().is_empty());
    }

    #[test]
    fn write_range_patches_in_place() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "patch", &keys, ObjectKind::File, &params).unwrap();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let free_before = fs.free_data_blocks();

        write_range(&fs, &keys, &mut obj, 1000, &[0xaa; 200]).unwrap();
        let mut expected = data.clone();
        expected[1000..1200].copy_from_slice(&[0xaa; 200]);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), expected);
        assert_eq!(fs.free_data_blocks(), free_before, "no allocation");
        // Past-EOF patches rejected, empty patches allowed.
        assert!(write_range(&fs, &keys, &mut obj, 4990, &[0u8; 20]).is_err());
        write_range(&fs, &keys, &mut obj, 0, &[]).unwrap();
    }

    #[test]
    fn rewrite_replaces_contents_without_leaking_blocks() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "w", &keys, ObjectKind::File, &params).unwrap();
        let free_before = fs.free_data_blocks();

        write(
            &fs,
            &keys,
            &mut obj,
            &vec![1u8; 100 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![2u8; 50 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        write(&fs, &keys, &mut obj, b"tiny", &params, &mut rng).unwrap();
        assert_eq!(read(&fs, &keys, &obj).unwrap(), b"tiny");

        // Blocks used now: header + <=1 data + <=1 chain + pool (bounded by
        // FB_max).  Everything else must have been returned to the volume.
        // header + 1 data block + 1 chain block + pool (bounded by FB_max).
        let used_now = free_before - fs.free_data_blocks();
        assert!(
            used_now <= 3 + params.free_blocks_max as u64,
            "object retains {used_now} blocks"
        );
    }

    #[test]
    fn free_pool_absorbs_truncation_up_to_fb_max() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "p", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![7u8; 3 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        // Shrink to zero: the freed blocks flow into the pool, capped at FB_max.
        write(&fs, &keys, &mut obj, b"", &params, &mut rng).unwrap();
        assert!(obj.header.free_pool.len() <= params.free_blocks_max);
        assert!(!obj.header.free_pool.is_empty());
        assert_eq!(obj.header.data_block_count, 0);
        assert_eq!(obj.header.inode_chain, NO_BLOCK);
    }

    #[test]
    fn pool_topped_up_when_below_minimum() {
        let (fs, keys, mut params, mut rng) = fixture();
        params.free_blocks_min = 3;
        params.free_blocks_max = 4;
        let mut obj = create(&fs, "t", &keys, ObjectKind::File, &params).unwrap();
        assert_eq!(obj.header.free_pool.len(), 4);
        // Writing 6 blocks of data consumes the whole pool (4) and more, so
        // afterwards the pool must be topped back up to FB_max.
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![1u8; 6 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        assert_eq!(obj.header.free_pool.len(), 4);
    }

    #[test]
    fn resize_preserves_prefix_and_zero_fills() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "rz", &keys, ObjectKind::File, &params).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();

        // Shrink to a non-block boundary.
        resize(&fs, &keys, &mut obj, 2500, &params, &mut rng).unwrap();
        assert_eq!(obj.size(), 2500);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), &data[..2500]);

        // Grow again: the cut region must come back as zeros, not as the
        // old plaintext.
        resize(&fs, &keys, &mut obj, 6000, &params, &mut rng).unwrap();
        let got = read(&fs, &keys, &obj).unwrap();
        assert_eq!(&got[..2500], &data[..2500]);
        assert!(
            got[2500..].iter().all(|&b| b == 0),
            "stale bytes resurfaced"
        );

        // Reopen sees the resized state.
        let reopened = open(&fs, "rz", &keys, &params).unwrap();
        assert_eq!(reopened.size(), 6000);
    }

    #[test]
    fn resize_does_not_move_existing_data_blocks() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "stable", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![9u8; 8 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        let before: std::collections::HashSet<u64> = owned_blocks(&fs, &keys, &obj)
            .unwrap()
            .into_iter()
            .collect();

        resize(&fs, &keys, &mut obj, 64 * 1024, &params, &mut rng).unwrap();
        let after: std::collections::HashSet<u64> = owned_blocks(&fs, &keys, &obj)
            .unwrap()
            .into_iter()
            .collect();
        // Growing only adds blocks; the original data blocks stay put (the
        // old chain blocks may be recycled, so compare data coverage via a
        // read instead of set inclusion for them).
        let mut expected = vec![9u8; 8 * 1024];
        expected.extend(vec![0u8; 56 * 1024]);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), expected);
        assert!(after.len() > before.len());
    }

    #[test]
    fn resize_to_zero_and_no_space() {
        let (fs, keys, params, mut rng) = fixture();
        let free_start = fs.free_data_blocks();
        let mut obj = create(&fs, "z", &keys, ObjectKind::File, &params).unwrap();
        write(&fs, &keys, &mut obj, &vec![1u8; 5000], &params, &mut rng).unwrap();

        resize(&fs, &keys, &mut obj, 0, &params, &mut rng).unwrap();
        assert_eq!(obj.size(), 0);
        assert_eq!(obj.header.data_block_count, 0);
        assert_eq!(obj.header.inode_chain, NO_BLOCK);
        assert!(read(&fs, &keys, &obj).unwrap().is_empty());

        // An absurd growth request fails cleanly without touching the object.
        assert!(matches!(
            resize(&fs, &keys, &mut obj, u64::MAX / 2, &params, &mut rng),
            Err(StegError::NoSpace)
        ));
        assert_eq!(obj.size(), 0);

        // Deleting returns every block.
        delete(&fs, &keys, &obj, &mut rng).unwrap();
        assert_eq!(fs.free_data_blocks(), free_start);
    }

    #[test]
    fn wrong_key_cannot_open_or_read() {
        let (fs, keys, params, mut rng) = fixture();
        let mut obj = create(&fs, "s", &keys, ObjectKind::File, &params).unwrap();
        write(&fs, &keys, &mut obj, b"classified", &params, &mut rng).unwrap();
        let wrong = ObjectKeys::derive("s", b"wrong key");
        assert!(open(&fs, "s", &wrong, &params).unwrap_err().is_not_found());
    }

    #[test]
    fn delete_returns_all_blocks_and_scrubs_header() {
        let (fs, keys, params, mut rng) = fixture();
        let free_before = fs.free_data_blocks();
        let mut obj = create(&fs, "d", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![5u8; 40 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        assert!(fs.free_data_blocks() < free_before);

        delete(&fs, &keys, &obj, &mut rng).unwrap();
        assert_eq!(fs.free_data_blocks(), free_before, "all blocks returned");
        // The object can no longer be found.
        assert!(open(&fs, "d", &keys, &params).unwrap_err().is_not_found());
    }

    #[test]
    fn owned_blocks_accounts_for_everything() {
        let (fs, keys, params, mut rng) = fixture();
        let free_start = fs.free_data_blocks();
        let mut obj = create(&fs, "o", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![9u8; 20 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        let owned = owned_blocks(&fs, &keys, &obj).unwrap();
        let consumed = free_start - fs.free_data_blocks();
        assert_eq!(owned.len() as u64, consumed);
        assert!(owned.contains(&obj.header_block));
    }

    #[test]
    fn hidden_blocks_never_appear_in_central_directory() {
        let (fs, keys, params, mut rng) = fixture();
        fs.write_file("/plain.txt", b"visible data").unwrap();
        let mut obj = create(&fs, "h", &keys, ObjectKind::File, &params).unwrap();
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![3u8; 30 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();

        let plain_blocks = fs.plain_object_blocks().unwrap();
        let hidden = owned_blocks(&fs, &keys, &obj).unwrap();
        for b in &hidden {
            assert!(
                !plain_blocks.contains(b),
                "hidden block {b} leaked into the central directory"
            );
            assert!(
                fs.is_block_allocated(*b),
                "hidden block {b} must be marked in the bitmap"
            );
        }
    }

    #[test]
    fn no_space_write_fails_cleanly() {
        // Small volume: fill most of it with a plain file, then try to write
        // a hidden object that cannot fit.
        let fs = PlainFs::format(MemBlockDevice::new(1024, 512), FormatOptions::default()).unwrap();
        let keys = ObjectKeys::derive("x", b"k");
        let params = StegParams::for_tests();
        let mut rng = DeterministicRng::new(b"r");
        let mut obj = create(&fs, "x", &keys, ObjectKind::File, &params).unwrap();
        let free = fs.free_data_blocks();
        let too_big = vec![0u8; ((free + 16) * 1024) as usize];
        assert!(matches!(
            write(&fs, &keys, &mut obj, &too_big, &params, &mut rng),
            Err(StegError::NoSpace)
        ));
    }

    #[test]
    fn two_objects_do_not_interfere() {
        let (fs, _, params, mut rng) = fixture();
        let ka = ObjectKeys::derive("a", b"key-a");
        let kb = ObjectKeys::derive("b", b"key-b");
        let mut a = create(&fs, "a", &ka, ObjectKind::File, &params).unwrap();
        let mut b = create(&fs, "b", &kb, ObjectKind::File, &params).unwrap();
        write(&fs, &ka, &mut a, &vec![0xaa; 10_000], &params, &mut rng).unwrap();
        write(&fs, &kb, &mut b, &vec![0xbb; 20_000], &params, &mut rng).unwrap();
        assert_eq!(read(&fs, &ka, &a).unwrap(), vec![0xaa; 10_000]);
        assert_eq!(read(&fs, &kb, &b).unwrap(), vec![0xbb; 20_000]);
        let blocks_a = owned_blocks(&fs, &ka, &a).unwrap();
        let blocks_b = owned_blocks(&fs, &kb, &b).unwrap();
        assert!(blocks_a.iter().all(|x| !blocks_b.contains(x)));
    }

    /// Overwrite `block` with junk, leaving it allocated — the damage a
    /// failing sector or a hostile overwrite inflicts.
    fn smash(fs: &PlainFs<MemBlockDevice>, block: u64, seed: u8) {
        let junk: Vec<u8> = (0..fs.block_size())
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        let mut txn = fs.begin_txn();
        txn.write_raw_block(block, &junk).unwrap();
        txn.commit().unwrap();
    }

    fn coded_fixture(
        policy: Policy,
        name: &str,
    ) -> (
        PlainFs<MemBlockDevice>,
        ObjectKeys,
        StegParams,
        DeterministicRng,
        HiddenObject,
    ) {
        let (fs, _, params, rng) = fixture();
        let keys = ObjectKeys::derive(name, b"coded key");
        let obj = create_with_policy(&fs, name, &keys, ObjectKind::File, policy, &params).unwrap();
        (fs, keys, params, rng, obj)
    }

    #[test]
    fn coded_write_read_roundtrip() {
        for policy in [
            Policy::Replicate(3),
            Policy::Disperse { m: 2, n: 3 },
            Policy::Disperse { m: 3, n: 5 },
        ] {
            let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "coded");
            let data: Vec<u8> = (0..7 * 1024 + 123u32).map(|i| (i % 253) as u8).collect();
            write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
            let (_, n) = policy.shares();
            assert_eq!(obj.header.data_block_count % n as u64, 0);
            assert_eq!(read(&fs, &keys, &obj).unwrap(), data);
            // Through a fresh open too (exercises the coded chain parse).
            let reopened = open(&fs, "coded", &keys, &params).unwrap();
            assert_eq!(reopened.header.policy, policy);
            assert_eq!(read(&fs, &keys, &reopened).unwrap(), data);
            assert_eq!(
                read_range(&fs, &keys, &reopened, 1000, 3000).unwrap(),
                &data[1000..4000]
            );
        }
    }

    #[test]
    fn coded_read_survives_n_minus_m_losses_per_group() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "lossy");
        let data: Vec<u8> = (0..6 * 1024u32).map(|i| (i % 241) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        // Destroy n - m = 2 shares in *every* group.
        for (g, group) in share_extents(&fs, &keys, &obj).unwrap().iter().enumerate() {
            assert_eq!(group.len(), 4);
            smash(&fs, group[0], g as u8);
            smash(&fs, group[2], g as u8 ^ 0x5a);
        }
        assert_eq!(read(&fs, &keys, &obj).unwrap(), data, "fallback decode");
        assert_eq!(
            read_range(&fs, &keys, &obj, 2048, 100).unwrap(),
            &data[2048..2148]
        );
    }

    #[test]
    fn coded_read_fails_closed_beyond_tolerance() {
        let policy = Policy::Disperse { m: 2, n: 3 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "gone");
        let data = vec![0x42u8; 5 * 1024];
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let groups = share_extents(&fs, &keys, &obj).unwrap();
        // Kill n - m + 1 = 2 shares of group 0: unrecoverable.
        smash(&fs, groups[0][0], 1);
        smash(&fs, groups[0][1], 2);
        let err = read(&fs, &keys, &obj).unwrap_err();
        assert!(
            err.to_string().contains("live shares"),
            "clean error: {err}"
        );
        // No partial plaintext: a range read inside the dead group fails too.
        assert!(read_range(&fs, &keys, &obj, 0, 10).is_err());
        // Other groups remain readable on their own.
        assert_eq!(
            read_range(&fs, &keys, &obj, 2 * 1024, 1024).unwrap(),
            &data[2 * 1024..3 * 1024]
        );
    }

    #[test]
    fn repair_restores_byte_identical_ciphertext() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "fixme");
        let data: Vec<u8> = (0..5 * 1024u32).map(|i| (i % 199) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        assert_eq!(repair(&fs, &keys, &obj).unwrap(), RepairOutcome::Intact);

        let groups = share_extents(&fs, &keys, &obj).unwrap();
        let victims = [groups[0][1], groups[0][3], groups[1][0]];
        let bs = fs.block_size();
        let mut before = vec![0u8; victims.len() * bs];
        fs.read_raw_blocks_into(&victims, &mut before).unwrap();
        for (i, &v) in victims.iter().enumerate() {
            smash(&fs, v, i as u8);
        }
        assert_eq!(
            repair(&fs, &keys, &obj).unwrap(),
            RepairOutcome::Repaired { shares_rebuilt: 3 }
        );
        let mut after = vec![0u8; victims.len() * bs];
        fs.read_raw_blocks_into(&victims, &mut after).unwrap();
        assert_eq!(before, after, "rebuilt shares must be byte-identical");
        assert_eq!(read(&fs, &keys, &obj).unwrap(), data);
        assert_eq!(repair(&fs, &keys, &obj).unwrap(), RepairOutcome::Intact);
    }

    #[test]
    fn repair_fails_closed_when_unrecoverable() {
        let policy = Policy::Disperse { m: 2, n: 3 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "dead");
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![9u8; 3 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        let groups = share_extents(&fs, &keys, &obj).unwrap();
        smash(&fs, groups[0][0], 1);
        smash(&fs, groups[0][1], 2);
        smash(&fs, groups[0][2], 3);
        let bs = fs.block_size();
        let mut before = vec![0u8; 3 * bs];
        fs.read_raw_blocks_into(&groups[0], &mut before).unwrap();
        assert_eq!(
            repair(&fs, &keys, &obj).unwrap(),
            RepairOutcome::Lost { groups_lost: 1 }
        );
        // Fail closed: a lost object is left exactly as found.
        let mut after = vec![0u8; 3 * bs];
        fs.read_raw_blocks_into(&groups[0], &mut after).unwrap();
        assert_eq!(before, after, "lost repair must not write");
    }

    #[test]
    fn coded_write_range_patches_and_updates_checksums() {
        let policy = Policy::Disperse { m: 2, n: 3 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "patch2");
        let data: Vec<u8> = (0..8 * 1024u32).map(|i| (i % 256) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let free_before = fs.free_data_blocks();
        // Patch across a group boundary (groups are m * bs = 2 KB here).
        write_range(&fs, &keys, &mut obj, 1500, &[0xcc; 2000]).unwrap();
        let mut expected = data.clone();
        expected[1500..3500].copy_from_slice(&[0xcc; 2000]);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), expected);
        assert_eq!(fs.free_data_blocks(), free_before, "no allocation");
        // The checksums the chain now records match the new shares: repair
        // sees an intact object, and damage within tolerance still heals.
        assert_eq!(repair(&fs, &keys, &obj).unwrap(), RepairOutcome::Intact);
        let groups = share_extents(&fs, &keys, &obj).unwrap();
        smash(&fs, groups[0][1], 7);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), expected);
    }

    #[test]
    fn coded_resize_roundtrip() {
        let policy = Policy::Disperse { m: 2, n: 3 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "rz2");
        let data: Vec<u8> = (0..5 * 1024u32).map(|i| (i % 251) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        resize(&fs, &keys, &mut obj, 1500, &params, &mut rng).unwrap();
        assert_eq!(read(&fs, &keys, &obj).unwrap(), &data[..1500]);
        resize(&fs, &keys, &mut obj, 4000, &params, &mut rng).unwrap();
        let got = read(&fs, &keys, &obj).unwrap();
        assert_eq!(&got[..1500], &data[..1500]);
        assert!(got[1500..].iter().all(|&b| b == 0));
        // An absurd growth request fails cleanly before materialising.
        assert!(matches!(
            resize(&fs, &keys, &mut obj, u64::MAX / 4, &params, &mut rng),
            Err(StegError::NoSpace)
        ));
        assert_eq!(obj.size(), 4000);
    }

    #[test]
    fn coded_cached_reads_survive_damage_after_invalidation() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "warm");
        let data: Vec<u8> = (0..4 * 1024u32).map(|i| (i % 239) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let cache = ReadCache::new(64);
        assert_eq!(read_cached(&fs, &keys, &obj, &cache).unwrap(), data);
        // Damage within tolerance, then serve warm: the cache still holds
        // the decoded logical blocks, so the read never sees the damage.
        let groups = share_extents(&fs, &keys, &obj).unwrap();
        for (g, group) in groups.iter().enumerate() {
            smash(&fs, group[0], g as u8);
        }
        assert_eq!(read_cached(&fs, &keys, &obj, &cache).unwrap(), data);
        // Cold again: the decode path falls back through surviving shares.
        cache.invalidate(keys.signature());
        assert_eq!(read_cached(&fs, &keys, &obj, &cache).unwrap(), data);
    }

    #[test]
    fn coded_delete_returns_all_blocks() {
        let policy = Policy::Disperse { m: 3, n: 5 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "bye");
        // The object holds its pool plus one header block per metadata copy
        // (n - m + 1 = 3 for this policy); all of them must come back.
        let free_before =
            fs.free_data_blocks() + params.free_blocks_max as u64 + policy.meta_copies() as u64;
        write(
            &fs,
            &keys,
            &mut obj,
            &vec![4u8; 9 * 1024],
            &params,
            &mut rng,
        )
        .unwrap();
        delete(&fs, &keys, &obj, &mut rng).unwrap();
        assert_eq!(fs.free_data_blocks(), free_before);
        assert!(open(&fs, "bye", &keys, &params).unwrap_err().is_not_found());
    }

    #[test]
    fn header_survives_replica_losses_and_flags_degraded() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "hdr");
        let data: Vec<u8> = (0..4 * 1024u32).map(|i| (i % 251) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let replicas = obj.header.header_replicas.clone();
        assert_eq!(replicas.len(), policy.meta_copies());
        assert_eq!(replicas[0], obj.header_block);

        // Kill the primary and one replica: n - m = 2 losses, still open.
        smash(&fs, replicas[0], 1);
        smash(&fs, replicas[1], 2);
        let health = ReadHealth::new();
        let found = open_observed(&fs, "hdr", &keys, &params, Some(&health)).unwrap();
        assert_eq!(found.header_block, replicas[2], "served by the survivor");
        assert!(health.is_degraded());
        assert_eq!(read(&fs, &keys, &found).unwrap(), data);

        // One more loss kills the object: no replica left to probe.
        smash(&fs, replicas[2], 3);
        assert!(open(&fs, "hdr", &keys, &params).unwrap_err().is_not_found());
    }

    #[test]
    fn chain_survives_replica_losses_and_fails_closed_beyond() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "chn");
        let data: Vec<u8> = (0..6 * 1024u32).map(|i| (i % 239) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let head = obj.header.inode_chain;
        let spares = obj.header.chain_replicas.clone();
        assert_eq!(spares.len(), policy.meta_copies() - 1);

        smash(&fs, head, 1);
        smash(&fs, spares[0], 2);
        let health = ReadHealth::new();
        let cache = ReadCache::disabled();
        assert_eq!(
            read_cached_observed(&fs, &keys, &obj, cache, Some(&health)).unwrap(),
            data,
            "chain served by its last replica"
        );
        assert!(health.is_degraded());

        smash(&fs, spares[1], 3);
        let err = read(&fs, &keys, &obj).unwrap_err();
        assert!(err.to_string().contains("live"), "fails closed: {err}");
    }

    #[test]
    fn healthy_reads_do_not_flag_degraded() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "ok");
        let data = vec![7u8; 3 * 1024];
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let health = ReadHealth::new();
        let found = open_observed(&fs, "ok", &keys, &params, Some(&health)).unwrap();
        let cache = ReadCache::disabled();
        assert_eq!(
            read_cached_observed(&fs, &keys, &found, cache, Some(&health)).unwrap(),
            data
        );
        assert!(!health.is_degraded());
    }

    #[test]
    fn repair_rebuilds_metadata_replicas_byte_identically() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "meta-fix");
        let data: Vec<u8> = (0..5 * 1024u32).map(|i| (i % 211) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        let groups = share_extents(&fs, &keys, &obj).unwrap();
        let victims = [
            obj.header.header_replicas[1],
            obj.header.chain_replicas[0],
            groups[0][2],
        ];
        let bs = fs.block_size();
        let mut before = vec![0u8; victims.len() * bs];
        fs.read_raw_blocks_into(&victims, &mut before).unwrap();
        for (i, &v) in victims.iter().enumerate() {
            smash(&fs, v, 0x40 + i as u8);
        }
        assert_eq!(
            repair(&fs, &keys, &obj).unwrap(),
            RepairOutcome::Repaired { shares_rebuilt: 3 }
        );
        let mut after = vec![0u8; victims.len() * bs];
        fs.read_raw_blocks_into(&victims, &mut after).unwrap();
        assert_eq!(before, after, "metadata rebuilds must be byte-identical");
        assert_eq!(repair(&fs, &keys, &obj).unwrap(), RepairOutcome::Intact);
        assert_eq!(read(&fs, &keys, &obj).unwrap(), data);
    }

    #[test]
    fn coded_patch_keeps_replicated_chain_consistent() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "patch-r");
        let data: Vec<u8> = (0..9 * 1024u32).map(|i| (i % 223) as u8).collect();
        write(&fs, &keys, &mut obj, &data, &params, &mut rng).unwrap();
        write_range(&fs, &keys, &mut obj, 4000, &[0xbe; 1500]).unwrap();
        let mut expected = data.clone();
        expected[4000..5500].fill(0xbe);
        // The handle's refreshed header and a fresh keyed open must both walk
        // the cascaded chain cleanly.
        assert_eq!(read(&fs, &keys, &obj).unwrap(), expected);
        let reopened = open(&fs, "patch-r", &keys, &params).unwrap();
        assert_eq!(read(&fs, &keys, &reopened).unwrap(), expected);
        assert_eq!(
            repair(&fs, &keys, &reopened).unwrap(),
            RepairOutcome::Intact
        );
        // And the patch still tolerates losing any chain replica afterwards.
        smash(&fs, reopened.header.inode_chain, 9);
        assert_eq!(read(&fs, &keys, &reopened).unwrap(), expected);
    }

    #[test]
    fn owned_blocks_cover_every_metadata_replica() {
        let policy = Policy::Disperse { m: 2, n: 4 };
        let (fs, keys, params, mut rng, mut obj) = coded_fixture(policy, "own");
        write(&fs, &keys, &mut obj, &[5u8; 4096], &params, &mut rng).unwrap();
        let owned = owned_blocks(&fs, &keys, &obj).unwrap();
        for &b in obj
            .header
            .header_replicas
            .iter()
            .chain(obj.header.chain_replicas.iter())
            .chain(std::iter::once(&obj.header.inode_chain))
        {
            assert!(owned.contains(&b), "replica {b} missing from owned set");
        }
    }
}
