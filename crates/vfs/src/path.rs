//! The unified VFS namespace.
//!
//! One rooted path space covers both worlds:
//!
//! ```text
//! /                  the namespace root (two fixed entries)
//! /plain/...         the central directory — what every user (and the
//!                    adversary) sees
//! /hidden/...        the hidden objects registered under the *session's*
//!                    user access key — a different tree for every session,
//!                    and empty for a session whose key matches nothing
//! ```
//!
//! The split is load-bearing: the paper's driver grafts connected hidden
//! objects into the user's working directory, and the equivalent here is
//! that `/hidden` resolves against per-session state, never against any
//! shared structure.

use crate::error::{VfsError, VfsResult};

/// A parsed VFS path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsPath {
    /// `/` — the namespace root.
    Root,
    /// `/plain` or `/plain/...` — the carried plain-file-system path,
    /// normalised to start with `/` (`/plain` itself carries `/`).
    Plain(String),
    /// `/hidden` — the root of the session's hidden tree.
    HiddenRoot,
    /// `/hidden/a/b/...` — the hidden-object component chain.
    Hidden(Vec<String>),
}

impl VfsPath {
    /// Parse a string into a [`VfsPath`].
    pub fn parse(path: &str) -> VfsResult<VfsPath> {
        let invalid = || VfsError::InvalidPath(path.to_string());
        if !path.starts_with('/') || path.contains('\0') {
            return Err(invalid());
        }
        let comps: Vec<&str> = path.split('/').skip(1).filter(|c| !c.is_empty()).collect();
        if path.split('/').skip(1).any(|c| c == "." || c == "..") {
            // No dot-navigation: every path is absolute and canonical.
            return Err(invalid());
        }
        match comps.split_first() {
            None => Ok(VfsPath::Root),
            Some((&"plain", rest)) => {
                let mut p = String::from("/");
                p.push_str(&rest.join("/"));
                Ok(VfsPath::Plain(p))
            }
            Some((&"hidden", rest)) => {
                if rest.is_empty() {
                    Ok(VfsPath::HiddenRoot)
                } else {
                    Ok(VfsPath::Hidden(
                        rest.iter().map(|s| s.to_string()).collect(),
                    ))
                }
            }
            Some(_) => Err(invalid()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_regions() {
        assert_eq!(VfsPath::parse("/").unwrap(), VfsPath::Root);
        assert_eq!(
            VfsPath::parse("/plain").unwrap(),
            VfsPath::Plain("/".into())
        );
        assert_eq!(
            VfsPath::parse("/plain/docs/report.txt").unwrap(),
            VfsPath::Plain("/docs/report.txt".into())
        );
        assert_eq!(VfsPath::parse("/hidden").unwrap(), VfsPath::HiddenRoot);
        assert_eq!(
            VfsPath::parse("/hidden/vault/passwords").unwrap(),
            VfsPath::Hidden(vec!["vault".into(), "passwords".into()])
        );
    }

    #[test]
    fn normalises_redundant_slashes() {
        assert_eq!(
            VfsPath::parse("/plain//a///b").unwrap(),
            VfsPath::Plain("/a/b".into())
        );
        assert_eq!(VfsPath::parse("/hidden/").unwrap(), VfsPath::HiddenRoot);
    }

    #[test]
    fn rejects_bad_paths() {
        for bad in [
            "",
            "plain/x",
            "/elsewhere",
            "/plain/../etc",
            "/hidden/.",
            "/pl\0ain",
        ] {
            assert!(VfsPath::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
