//! # stegfs-vfs
//!
//! A concurrent, handle-based virtual file system front-end over
//! [`stegfs_core::StegFs`].
//!
//! The paper's StegFS is a kernel driver under the Linux VFS (Figure 5),
//! serving many users at once through open-file handles and per-user
//! sessions.  This crate supplies that missing layer for the user-space
//! reproduction:
//!
//! * **A unified namespace.**  `/plain/...` maps onto the central directory
//!   everyone shares; `/hidden/...` resolves against the calling session's
//!   User Access Key, so the same path names a different (or no) object per
//!   session.  See [`path::VfsPath`].
//! * **An open-file table.**  [`Vfs::open`] yields [`VfsHandle`]s with
//!   per-handle stream offsets and positional `read_at` / `write_at` /
//!   `seek` / `truncate` — the file-descriptor surface the paper's driver
//!   gets from the kernel.  The table is sharded ([`table::SHARD_COUNT`])
//!   and never locked across I/O.
//! * **Sign-on sessions.**  [`Vfs::signon`] is deliberately infallible —
//!   there is no key registry to check, which *is* the hiding property; a
//!   wrong key sees an empty `/hidden`.  [`Vfs::connect`] mirrors
//!   `steg_connect`, caching an object (and a directory's offspring) in the
//!   session.
//! * **Concurrency.**  There is no global volume lock: the core underneath
//!   is fully shared-reference (sharded allocator, namespaces and device),
//!   sessions resolve under a shared read guard, and every open object has
//!   its own lock in an `Arc`-based registry — all handles to one hidden
//!   object share a single cached [`stegfs_core::HiddenHandle`] behind that
//!   lock, so no handle ever observes a stale block map while handles to
//!   *different* objects overlap their block I/O.  N threads interleaving
//!   plain reads with hidden writes on one shared volume is the scenario of
//!   the paper's Figure 7 experiment; see [`vfs`]'s module docs for the
//!   locking architecture and the lock order, and the `fig7_vfs_concurrency`
//!   bench for the thread-scaling sweep it enables.
//!
//! ```
//! use stegfs_blockdev::{MemBlockDevice, SharedDevice};
//! use stegfs_core::StegParams;
//! use stegfs_vfs::{OpenOptions, Vfs};
//!
//! let dev = SharedDevice::new(MemBlockDevice::new(1024, 8192));
//! let vfs = Vfs::format(dev, StegParams::for_tests()).unwrap();
//!
//! // Alice hides a file; the adversary's session cannot even stat it.
//! let alice = vfs.signon("alice's access key");
//! let h = vfs
//!     .open(alice, "/hidden/budget", OpenOptions::read_write())
//!     .unwrap();
//! vfs.write_at(h, 0, b"the real numbers").unwrap();
//! vfs.close(h).unwrap();
//!
//! let snoop = vfs.signon("guessed key");
//! assert!(vfs.readdir(snoop, "/hidden").unwrap().is_empty());
//! assert!(vfs.stat(snoop, "/hidden/budget").unwrap_err().is_not_found());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod path;
pub mod table;
pub mod vfs;

pub use error::{VfsError, VfsResult};
pub use path::VfsPath;
pub use table::{OpenOptions, VfsHandle};
pub use vfs::{NodeKind, SessionId, Vfs, VfsDirEntry, VfsStat};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::SeekFrom;
    use stegfs_blockdev::{MemBlockDevice, SharedDevice};
    use stegfs_core::StegParams;

    fn small_vfs() -> Vfs<SharedDevice> {
        let dev = SharedDevice::new(MemBlockDevice::new(1024, 8192));
        Vfs::format(dev, StegParams::for_tests()).unwrap()
    }

    #[test]
    fn root_namespace_is_fixed() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let names: Vec<String> = vfs
            .readdir(s, "/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["plain", "hidden"]);
        assert_eq!(vfs.stat(s, "/").unwrap().kind, NodeKind::Directory);
        assert_eq!(vfs.stat(s, "/hidden").unwrap().kind, NodeKind::Directory);
    }

    #[test]
    fn plain_files_through_handles() {
        let vfs = small_vfs();
        let s = vfs.signon("any");
        vfs.mkdir(s, "/plain/docs").unwrap();
        let h = vfs
            .open(s, "/plain/docs/a.txt", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"hello plain world").unwrap();
        assert_eq!(vfs.read_at(h, 6, 5).unwrap(), b"plain");
        assert_eq!(vfs.handle_size(h).unwrap(), 17);

        // Streaming I/O with seek.
        vfs.seek(h, SeekFrom::Start(0)).unwrap();
        assert_eq!(vfs.read(h, 5).unwrap(), b"hello");
        assert_eq!(vfs.read(h, 1).unwrap(), b" ");
        vfs.seek(h, SeekFrom::End(-5)).unwrap();
        assert_eq!(vfs.read(h, 100).unwrap(), b"world");
        vfs.close(h).unwrap();

        let listed = vfs.readdir(s, "/plain/docs").unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "a.txt");
        assert_eq!(listed[0].kind, NodeKind::File);
    }

    #[test]
    fn hidden_files_visible_only_with_the_key() {
        let vfs = small_vfs();
        let alice = vfs.signon("alice key");
        let bob = vfs.signon("bob key");

        let h = vfs
            .open(alice, "/hidden/secret", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"alice's data").unwrap();
        vfs.close(h).unwrap();

        // Alice sees it.
        assert_eq!(vfs.readdir(alice, "/hidden").unwrap().len(), 1);
        assert_eq!(vfs.stat(alice, "/hidden/secret").unwrap().size, 12);

        // Bob's view of the same volume: nothing, and indistinguishably so.
        assert!(vfs.readdir(bob, "/hidden").unwrap().is_empty());
        assert!(vfs.stat(bob, "/hidden/secret").unwrap_err().is_not_found());
        assert!(vfs
            .open(bob, "/hidden/secret", OpenOptions::read_only())
            .unwrap_err()
            .is_not_found());
        // And the plain tree never mentions it.
        assert!(vfs
            .readdir(bob, "/plain")
            .unwrap()
            .iter()
            .all(|e| !e.name.contains("secret")));
    }

    #[test]
    fn two_handles_share_one_object_state() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let a = vfs
            .open(s, "/hidden/shared", OpenOptions::read_write())
            .unwrap();
        let b = vfs
            .open(s, "/hidden/shared", OpenOptions::read_write())
            .unwrap();
        // A full rewrite through `a` relocates blocks; `b` must see the new
        // state, not a stale block map.
        vfs.write_at(a, 0, &vec![1u8; 5000]).unwrap();
        vfs.write_at(b, 0, &[2u8; 100]).unwrap();
        let through_a = vfs.read_at(a, 0, 5000).unwrap();
        assert_eq!(&through_a[..100], &[2u8; 100][..]);
        assert_eq!(&through_a[100..], &[1u8; 4900][..]);
        vfs.close(a).unwrap();
        assert_eq!(vfs.read_at(b, 4999, 10).unwrap(), vec![1u8]);
        vfs.close(b).unwrap();
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn truncate_and_append_semantics() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let h = vfs
            .open(s, "/hidden/log", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"0123456789").unwrap();
        vfs.truncate(h, 4).unwrap();
        assert_eq!(vfs.handle_size(h).unwrap(), 4);
        assert_eq!(vfs.read_at(h, 0, 100).unwrap(), b"0123");
        vfs.close(h).unwrap();

        let log = vfs
            .open(s, "/hidden/log", OpenOptions::read_write().append(true))
            .unwrap();
        vfs.write(log, b"-appended").unwrap();
        assert_eq!(vfs.read_at(log, 0, 100).unwrap(), b"0123-appended");
        vfs.close(log).unwrap();

        // Opening with truncate resets the file.
        let h = vfs
            .open(s, "/hidden/log", OpenOptions::read_write().truncate(true))
            .unwrap();
        assert_eq!(vfs.handle_size(h).unwrap(), 0);
        vfs.close(h).unwrap();
    }

    #[test]
    fn hidden_directories_nest_in_the_namespace() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        vfs.mkdir(s, "/hidden/vault").unwrap();
        let h = vfs
            .open(s, "/hidden/vault/passwords", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"hunter2").unwrap();
        vfs.close(h).unwrap();

        let listed = vfs.readdir(s, "/hidden/vault").unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "passwords");
        assert_eq!(vfs.stat(s, "/hidden/vault/passwords").unwrap().size, 7);

        // connect() pulls the offspring into the session view.
        vfs.connect(s, "vault").unwrap();
        let names: Vec<String> = vfs
            .readdir(s, "/hidden")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(names.contains(&"passwords".to_string()));
        // ...which makes the child openable at top level, as after
        // steg_connect in the paper.
        let h = vfs
            .open(s, "/hidden/passwords", OpenOptions::read_only())
            .unwrap();
        assert_eq!(vfs.read_at(h, 0, 100).unwrap(), b"hunter2");
        vfs.close(h).unwrap();
    }

    #[test]
    fn unlink_and_rename_inside_hidden_directories() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        vfs.mkdir(s, "/hidden/vault").unwrap();
        let h = vfs
            .open(s, "/hidden/vault/secrets", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"keep me moving").unwrap();
        vfs.close(h).unwrap();

        // Rename within the directory: contents follow the new name.
        vfs.rename(s, "/hidden/vault/secrets", "/hidden/vault/renamed")
            .unwrap();
        assert!(vfs
            .stat(s, "/hidden/vault/secrets")
            .unwrap_err()
            .is_not_found());
        assert_eq!(vfs.stat(s, "/hidden/vault/renamed").unwrap().size, 14);

        // Moving between hidden directories (or to top level) is refused.
        vfs.mkdir(s, "/hidden/other").unwrap();
        assert!(matches!(
            vfs.rename(s, "/hidden/vault/renamed", "/hidden/other/renamed"),
            Err(VfsError::Unsupported(_))
        ));
        assert!(matches!(
            vfs.rename(s, "/hidden/vault/renamed", "/hidden/renamed"),
            Err(VfsError::Unsupported(_))
        ));

        // An open handle goes stale when the child is unlinked underneath it.
        let h = vfs
            .open(s, "/hidden/vault/renamed", OpenOptions::read_write())
            .unwrap();
        vfs.unlink(s, "/hidden/vault/renamed").unwrap();
        assert!(vfs.read_at(h, 0, 4).unwrap_err().is_not_found());
        vfs.close(h).unwrap();
        assert!(vfs.readdir(s, "/hidden/vault").unwrap().is_empty());
        assert!(vfs
            .unlink(s, "/hidden/vault/renamed")
            .unwrap_err()
            .is_not_found());

        // A non-empty hidden subdirectory cannot be unlinked; empty can.
        let h = vfs
            .open(s, "/hidden/vault/again", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"x").unwrap();
        vfs.close(h).unwrap();
        assert!(vfs.unlink(s, "/hidden/vault").is_err());
        vfs.unlink(s, "/hidden/vault/again").unwrap();
        vfs.unlink(s, "/hidden/vault").unwrap();
        assert!(vfs.stat(s, "/hidden/vault").unwrap_err().is_not_found());
    }

    #[test]
    fn rename_and_unlink() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let h = vfs.open(s, "/plain/a", OpenOptions::read_write()).unwrap();
        vfs.write_at(h, 0, b"plain").unwrap();
        vfs.close(h).unwrap();
        let h = vfs.open(s, "/hidden/x", OpenOptions::read_write()).unwrap();
        vfs.write_at(h, 0, b"hidden").unwrap();
        vfs.close(h).unwrap();

        vfs.rename(s, "/plain/a", "/plain/b").unwrap();
        assert!(vfs.stat(s, "/plain/a").unwrap_err().is_not_found());
        vfs.rename(s, "/hidden/x", "/hidden/y").unwrap();
        assert!(vfs.stat(s, "/hidden/x").unwrap_err().is_not_found());
        assert_eq!(vfs.stat(s, "/hidden/y").unwrap().size, 6);

        assert!(matches!(
            vfs.rename(s, "/plain/b", "/hidden/b"),
            Err(VfsError::CrossNamespace { .. })
        ));

        vfs.unlink(s, "/plain/b").unwrap();
        vfs.unlink(s, "/hidden/y").unwrap();
        assert!(vfs.readdir(s, "/hidden").unwrap().is_empty());
    }

    #[test]
    fn unlink_makes_open_handles_stale() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let h = vfs
            .open(s, "/hidden/doomed", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"short-lived").unwrap();
        vfs.unlink(s, "/hidden/doomed").unwrap();
        // The stale handle reports the same not-found family as a wrong key.
        assert!(vfs.read_at(h, 0, 10).unwrap_err().is_not_found());
        assert!(vfs.write_at(h, 0, b"x").unwrap_err().is_not_found());
    }

    #[test]
    fn stale_handle_cannot_unref_a_recreated_object() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        // Open, unlink, then recreate under the same name (same deterministic
        // physical name).
        let stale = vfs
            .open(s, "/hidden/phoenix", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(stale, 0, b"first life").unwrap();
        vfs.unlink(s, "/hidden/phoenix").unwrap();
        let live = vfs
            .open(s, "/hidden/phoenix", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(live, 0, b"second life").unwrap();

        // Closing the stale handle must not decrement the new object's
        // refcount out from under the live handle...
        vfs.close(stale).unwrap();
        assert_eq!(vfs.read_at(live, 0, 100).unwrap(), b"second life");
        // ...and the stale handle's I/O stays in the not-found family.
        let stale2 = vfs
            .open(s, "/hidden/ghost2", OpenOptions::read_write())
            .unwrap();
        vfs.unlink(s, "/hidden/ghost2").unwrap();
        assert!(vfs.read_at(stale2, 0, 4).unwrap_err().is_not_found());
        vfs.close(live).unwrap();
    }

    #[test]
    fn stale_session_cache_falls_back_to_disk() {
        let vfs = small_vfs();
        // Two sessions, same key: A's connected cache can go stale when B
        // changes the world.
        let a = vfs.signon("shared key");
        let b = vfs.signon("shared key");
        let h = vfs
            .open(a, "/hidden/doc", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"v1").unwrap();
        vfs.close(h).unwrap(); // A now has "doc" cached.

        vfs.unlink(b, "/hidden/doc").unwrap();

        // A's open-with-create must see through its stale cache and create a
        // fresh object instead of failing NotFound.
        let h = vfs
            .open(a, "/hidden/doc", OpenOptions::read_write())
            .unwrap();
        assert_eq!(vfs.handle_size(h).unwrap(), 0, "fresh object, not v1");
        vfs.write_at(h, 0, b"v2").unwrap();
        vfs.close(h).unwrap();
        assert_eq!(vfs.stat(b, "/hidden/doc").unwrap().size, 2);

        // After B renames it, A's cached (connected) entry still reaches the
        // object under the old name — connected objects persist for the
        // session like an open fd across a rename, as with steg_connect in
        // the paper.  Once A disconnects, the old name resolves from disk
        // and is gone.
        vfs.rename(b, "/hidden/doc", "/hidden/moved").unwrap();
        assert_eq!(vfs.stat(a, "/hidden/doc").unwrap().size, 2);
        vfs.disconnect(a, "doc").unwrap();
        assert!(vfs.stat(a, "/hidden/doc").unwrap_err().is_not_found());
        assert_eq!(vfs.stat(a, "/hidden/moved").unwrap().size, 2);
    }

    #[test]
    fn plain_handles_pin_the_inode_across_rename() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let h = vfs
            .open(s, "/plain/journal", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"entry one").unwrap();

        // Rename under the open handle: the handle follows the file, like a
        // POSIX fd.
        vfs.rename(s, "/plain/journal", "/plain/journal.old")
            .unwrap();
        vfs.write_at(h, 0, b"ENTRY").unwrap();
        assert_eq!(vfs.read_at(h, 0, 100).unwrap(), b"ENTRY one");

        // A new file at the old path is a different file; the handle must
        // not silently retarget to it.
        let fresh = vfs
            .open(s, "/plain/journal", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(fresh, 0, b"new file").unwrap();
        assert_eq!(vfs.read_at(h, 0, 100).unwrap(), b"ENTRY one");
        assert_eq!(vfs.read_at(fresh, 0, 100).unwrap(), b"new file");
        vfs.close(fresh).unwrap();

        // Unlinking the renamed file makes the handle stale, in the same
        // not-found family as everything else.
        vfs.unlink(s, "/plain/journal.old").unwrap();
        assert!(vfs.read_at(h, 0, 1).unwrap_err().is_not_found());
        vfs.close(h).unwrap();
    }

    #[test]
    fn absurd_offsets_report_no_space_not_oom() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        for path in ["/hidden/sparse", "/plain/sparse"] {
            let h = vfs.open(s, path, OpenOptions::read_write()).unwrap();
            vfs.write_at(h, 0, b"tiny").unwrap();
            // A write far past EOF must fail cleanly, not materialise
            // terabytes of zero-fill.
            vfs.seek(h, SeekFrom::Start(1 << 40)).unwrap();
            let e = vfs.write(h, b"x").unwrap_err();
            assert!(matches!(e, VfsError::Steg(_)), "{path}: {e}");
            // Same for truncate.
            assert!(vfs.truncate(h, 1 << 45).is_err(), "{path}");
            // Offset arithmetic at the u64 edge must not overflow-panic.
            assert!(vfs.write_at(h, u64::MAX - 1, b"xx").is_err(), "{path}");
            // The file is intact afterwards.
            assert_eq!(vfs.read_at(h, 0, 10).unwrap(), b"tiny", "{path}");
            vfs.close(h).unwrap();
        }
    }

    #[test]
    fn signoff_sweeps_session_handles() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let keep = vfs.signon("k");
        let _a = vfs
            .open(s, "/hidden/f1", OpenOptions::read_write())
            .unwrap();
        let _b = vfs.open(s, "/plain/p1", OpenOptions::read_write()).unwrap();
        let c = vfs
            .open(keep, "/hidden/f2", OpenOptions::read_write())
            .unwrap();
        assert_eq!(vfs.open_handles(), 3);
        vfs.signoff(s).unwrap();
        assert_eq!(vfs.open_handles(), 1);
        assert_eq!(vfs.session_count(), 1);
        // The surviving session's handle still works.
        vfs.write_at(c, 0, b"still alive").unwrap();
        assert!(vfs.stat(s, "/plain/p1").is_err(), "session is gone");
    }

    #[test]
    fn sessions_with_same_key_share_the_view() {
        let vfs = small_vfs();
        let s1 = vfs.signon("shared key");
        let s2 = vfs.signon("shared key");
        let h = vfs
            .open(s1, "/hidden/ours", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"both see this").unwrap();
        vfs.close(h).unwrap();
        let h = vfs
            .open(s2, "/hidden/ours", OpenOptions::read_only())
            .unwrap();
        assert_eq!(vfs.read_at(h, 0, 100).unwrap(), b"both see this");
        vfs.close(h).unwrap();
    }

    #[test]
    fn survives_unmount_and_remount() {
        let vfs = small_vfs();
        let s = vfs.signon("key");
        let h = vfs
            .open(s, "/hidden/persist", OpenOptions::read_write())
            .unwrap();
        vfs.write_at(h, 0, b"across remount").unwrap();
        vfs.close(h).unwrap();
        let dev = vfs.unmount().unwrap();

        let vfs = Vfs::mount(dev, StegParams::for_tests()).unwrap();
        let s = vfs.signon("key");
        let h = vfs
            .open(s, "/hidden/persist", OpenOptions::read_only())
            .unwrap();
        assert_eq!(vfs.read_at(h, 0, 100).unwrap(), b"across remount");
        vfs.close(h).unwrap();
    }

    #[test]
    fn concurrent_appends_from_two_handles_never_collide() {
        use std::sync::{Arc, Barrier};
        let vfs = Arc::new(small_vfs());
        let threads = 2usize;
        let per_thread = 16usize;
        let chunk = 64usize;
        let barrier = Arc::new(Barrier::new(threads));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let vfs = Arc::clone(&vfs);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let s = vfs.signon("append key");
                    let h = vfs
                        .open(s, "/hidden/ledger", OpenOptions::read_write().append(true))
                        .unwrap();
                    barrier.wait();
                    for _ in 0..per_thread {
                        // Each append is one tagged chunk; the size lookup and
                        // the write must be atomic, or two appends land on the
                        // same offset and one chunk is lost.
                        vfs.write(h, &vec![b'A' + t as u8; chunk]).unwrap();
                    }
                    vfs.close(h).unwrap();
                    vfs.signoff(s).unwrap();
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let s = vfs.signon("append key");
        let h = vfs
            .open(s, "/hidden/ledger", OpenOptions::read_only())
            .unwrap();
        let size = vfs.handle_size(h).unwrap() as usize;
        assert_eq!(
            size,
            threads * per_thread * chunk,
            "appends collided and lost data"
        );
        let all = vfs.read_at(h, 0, size).unwrap();
        // Every chunk is whole (no interleaving within a chunk) and each
        // writer's full count survived.
        let mut counts = [0usize; 2];
        for c in all.chunks(chunk) {
            let tag = c[0];
            assert!(c.iter().all(|&b| b == tag), "torn append chunk");
            counts[(tag - b'A') as usize] += 1;
        }
        assert_eq!(counts, [per_thread, per_thread]);
        vfs.close(h).unwrap();
    }

    #[test]
    fn open_access_modes_are_enforced() {
        let vfs = small_vfs();
        let s = vfs.signon("k");
        let h = vfs.open(s, "/plain/f", OpenOptions::read_write()).unwrap();
        vfs.write_at(h, 0, b"data").unwrap();
        vfs.close(h).unwrap();

        let ro = vfs.open(s, "/plain/f", OpenOptions::read_only()).unwrap();
        assert!(matches!(
            vfs.write_at(ro, 0, b"x"),
            Err(VfsError::NotWritable)
        ));
        vfs.close(ro).unwrap();

        let wo = vfs
            .open(s, "/plain/f", OpenOptions::new().write(true))
            .unwrap();
        assert!(matches!(vfs.read_at(wo, 0, 1), Err(VfsError::NotReadable)));
        vfs.close(wo).unwrap();

        // Directories cannot be opened; files cannot be readdir'd.
        assert!(vfs.open(s, "/plain", OpenOptions::read_only()).is_err());
        assert!(matches!(vfs.readdir(s, "/plain/f"), Err(VfsError::Steg(_))));
        // Access must be requested.
        assert!(vfs.open(s, "/plain/f", OpenOptions::new()).is_err());
    }
}
