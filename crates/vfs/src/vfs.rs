//! The [`Vfs`] front-end proper.
//!
//! # Locking architecture
//!
//! The pre-redesign `Vfs` funnelled every operation through one
//! `RwLock<StegFs>` write guard because the core API took `&mut self`.  The
//! core is now fully shared-reference with its own internal sharding, so the
//! VFS keeps only the state the core cannot know about — sessions, the open
//! file table, and the shared-object registry — each behind its own small
//! lock:
//!
//! * **table shards** ([`crate::table`]) — handle bookkeeping only, never
//!   held across I/O.
//! * **per-handle offset lock** — each open file's stream offset sits behind
//!   its own mutex; streaming ops hold it across the object I/O so the
//!   shared offset consumes atomically, while a parked streaming handle
//!   stalls nobody but itself (positional I/O never touches it).
//! * **object registry** — `Mutex<HashMap<ObjectKey, Arc<ObjectEntry>>>`,
//!   touched only by open / close / unlink.  Positional I/O goes straight
//!   from the handle's `Arc` to the object lock without looking anything up.
//! * **per-object lock** — one mutex inside each `ObjectEntry`,
//!   serialising I/O on *that* object (and, for hidden objects, guarding the
//!   shared [`HiddenHandle`] whose cached block map a rewrite refreshes).
//!   Two handles on different objects never contend here.
//! * **session table** — `RwLock<HashMap<u64, Arc<SessionState>>>`; lookups
//!   clone the `Arc` under the shared read guard, so sign-ons do not stall
//!   running I/O and I/O never blocks sign-ons.
//!
//! Lock order (outer to inner): `table shard < per-handle offset lock <
//! object registry < per-object
//! lock <` the core's locks (`UAK shard < object shard < namespace <
//! inode-stripe < allocator < device`).  Unlink resolves its path first
//! (registry untouched), pins the victim's entry, then holds only that
//! entry's object lock across the O(file-size) core delete, so in-flight I/O
//! drains first and unrelated opens never stall behind it.  The entry stays
//! registered (alive) until the delete succeeds — a racing open of the same
//! object reuses it and goes stale with everyone else once the entry is
//! marked dead (stale handles report [`VfsError::BadHandle`], which is in
//! the deniable not-found family) and evicted.

use crate::error::{VfsError, VfsResult};
use crate::path::VfsPath;
use crate::table::{OpenFile, OpenFileTable, OpenOptions, StreamPos, VfsHandle};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::SeekFrom;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use stegfs_blockdev::BlockDevice;
use stegfs_core::session::{ConnectedObject, Session};
use stegfs_core::{
    CacheStats, DirectoryEntry, HiddenHandle, ObjectKind, SpaceReport, StegFs, StegParams,
    StegResult,
};
use stegfs_fs::{FileKind, InodeId};

/// Blocks prefetched past a sequential streaming read.  The prefetch rides
/// the *same* batched device submission as the demand blocks and lands in
/// the core's plaintext cache, so the next chunk of the scan is served from
/// RAM.  Armed only once a handle's streaming reads prove back-to-back
/// (see [`StreamPos`]); positional reads never prefetch.
const READAHEAD_BLOCKS: usize = 8;

/// A signed-on user session, identified by an opaque id.
///
/// A session wraps one User Access Key plus a [`stegfs_core::session::Session`]
/// of connected objects; `/hidden` resolves against exactly this state, so
/// hidden objects are visible only to the sessions holding their key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw session number.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Kind of a namespace node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular file (plain or hidden).
    File,
    /// A directory (plain, hidden, or one of the fixed namespace roots).
    Directory,
}

/// Result of [`Vfs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfsStat {
    /// File or directory.
    pub kind: NodeKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
}

/// One entry returned by [`Vfs::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsDirEntry {
    /// Component name.
    pub name: String,
    /// File or directory.
    pub kind: NodeKind,
}

/// Key of an entry in the shared-object registry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum ObjectKey {
    /// A plain file, pinned by inode id.  Pinning the inode (not the path)
    /// keeps handles on the same file across renames.
    Plain(InodeId),
    /// A hidden object, by physical (locator) name.
    Hidden(String),
}

/// What the per-object lock protects.
pub(crate) enum TargetState {
    /// Plain files keep their state (the inode) in the file system; the lock
    /// only serialises content read-modify-write cycles.
    Plain { inode: InodeId },
    /// Hidden objects share one core handle so a rewrite through any VFS
    /// handle (which relocates blocks through the free pool) is immediately
    /// visible — never stale — through every other.
    Hidden { handle: Box<HiddenHandle> },
}

/// One live object in the registry.  All VFS handles to the same object hold
/// the same `Arc`; `dead` flips exactly once, when the object is unlinked,
/// after which every handle still holding the entry is stale.
pub(crate) struct ObjectEntry {
    key: ObjectKey,
    refs: AtomicUsize,
    dead: AtomicBool,
    io: Mutex<TargetState>,
}

impl ObjectEntry {
    fn new(key: ObjectKey, state: TargetState) -> Self {
        ObjectEntry {
            key,
            refs: AtomicUsize::new(1),
            dead: AtomicBool::new(false),
            io: Mutex::new(state),
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Test-only constructor used by the open-file-table unit tests.
    #[cfg(test)]
    pub(crate) fn test_plain(inode: InodeId) -> Self {
        ObjectEntry::new(ObjectKey::Plain(inode), TargetState::Plain { inode })
    }
}

/// Where a write lands: a fixed position, or end-of-file resolved under the
/// object lock (append handles must read the size and write in one hold, or
/// two appending handles would land on the same offset).
#[derive(Clone, Copy)]
enum WriteOffset {
    At(u64),
    End,
}

struct SessionState {
    uak: String,
    connected: Mutex<Session>,
}

/// A concurrent, handle-based virtual file system over a StegFS volume.
///
/// `Vfs` puts the missing kernel half of the paper's Figure 5 in front of
/// [`StegFs`]: a unified path namespace (`/plain/...` shared by everyone,
/// `/hidden/...` per session), an open-file table with positional and
/// streaming I/O, and sign-on sessions.  There is no global volume lock any
/// more: sessions resolve under a shared read guard, every open object has
/// its own lock, and the core underneath shards the allocator, the
/// namespaces and the device — so threads working on different files overlap
/// their block I/O and only allocator and directory mutations contend.  See
/// the module docs for the full lock order.
///
/// Deniability is preserved through the new layer: signing on never validates
/// the key (there is nothing to validate against), a wrong-key session simply
/// sees an empty `/hidden`, and every "no such object / wrong key / stale
/// handle" case reports through the same [`VfsError::is_not_found`] family.
pub struct Vfs<D: BlockDevice> {
    fs: StegFs<D>,
    /// Open shared objects, keyed by inode (plain) or physical name (hidden).
    objects: Mutex<HashMap<ObjectKey, Arc<ObjectEntry>>>,
    sessions: RwLock<HashMap<u64, Arc<SessionState>>>,
    table: OpenFileTable,
    next_session: AtomicU64,
}

impl<D: BlockDevice> Vfs<D> {
    // ------------------------------------------------------------------
    // Construction / teardown
    // ------------------------------------------------------------------

    /// Wrap an already mounted [`StegFs`].
    pub fn new(fs: StegFs<D>) -> Self {
        Vfs {
            fs,
            objects: Mutex::new(HashMap::new()),
            sessions: RwLock::new(HashMap::new()),
            table: OpenFileTable::new(),
            next_session: AtomicU64::new(1),
        }
    }

    /// Format `dev` as a fresh StegFS volume and serve it.  With
    /// [`StegParams::checkpoint_daemon`] set (and a journal configured),
    /// the background checkpoint daemon is started so foreground commits
    /// rarely pay for ring reclamation; unmount drains and stops it.
    pub fn format(dev: D, params: StegParams) -> VfsResult<Self>
    where
        D: Send + Sync + 'static,
    {
        let mut fs = StegFs::format(dev, params)?;
        if fs.params().checkpoint_daemon {
            fs.start_checkpoint_daemon();
        }
        Ok(Vfs::new(fs))
    }

    /// Mount an existing StegFS volume and serve it (checkpoint daemon as
    /// in [`Self::format`]).
    pub fn mount(dev: D, params: StegParams) -> VfsResult<Self>
    where
        D: Send + Sync + 'static,
    {
        let mut fs = StegFs::mount(dev, params)?;
        if fs.params().checkpoint_daemon {
            fs.start_checkpoint_daemon();
        }
        Ok(Vfs::new(fs))
    }

    /// Tear the front-end down, recovering the [`StegFs`] underneath.
    pub fn into_stegfs(self) -> StegFs<D> {
        self.fs
    }

    /// Flush everything and return the underlying device.
    pub fn unmount(self) -> StegResult<D> {
        self.into_stegfs().unmount()
    }

    /// Flush metadata to the device.  Runs concurrently with ordinary I/O —
    /// no exclusive volume guard is needed any more.
    ///
    /// This is the `PlainFs::sync` path surfaced at the top of the stack: on
    /// a journaled volume it is also the **checkpoint** (dirty cache blocks
    /// flush, the journal tail advances, and a crash afterwards replays
    /// nothing), so callers outside the engine can force durability without
    /// submitting a request.
    pub fn sync(&self) -> VfsResult<()> {
        Ok(self.fs.sync()?)
    }

    /// Flush the state behind an open handle to stable storage.
    ///
    /// On a journaled volume this is a **durability barrier, not a
    /// checkpoint**: it waits for one device flush covering every commit
    /// staged so far (after which replay redoes anything still in flight)
    /// but does not advance the journal tail, write an anchor or flush the
    /// bitmap — so one busy object's `fsync` never pays for checkpointing
    /// the whole ring.  Use [`Self::sync`] for the full checkpoint.  On an
    /// unjournaled volume it is the classic best-effort metadata flush.
    /// Concurrent `fsync`s share one device barrier (group commit), which
    /// is what keeps it cheap under many engine workers.
    pub fn fsync(&self, handle: VfsHandle) -> VfsResult<()> {
        // Validate the handle (stale handles report the deniable not-found
        // family, like every other use).
        self.table.get(handle)?;
        Ok(self.fs.fsync_barrier()?)
    }

    /// Aggregate block accounting of the served volume.
    pub fn space_report(&self) -> VfsResult<SpaceReport> {
        Ok(self.fs.space_report()?)
    }

    /// Number of currently open handles across all sessions.
    pub fn open_handles(&self) -> usize {
        self.table.len()
    }

    // ------------------------------------------------------------------
    // Sessions
    // ------------------------------------------------------------------

    /// Sign a user on with a User Access Key and get a session.
    ///
    /// Deliberately infallible: there is no key registry to check against —
    /// that absence is the hiding property.  A key that matches nothing
    /// yields a session whose `/hidden` is empty, indistinguishable from a
    /// correct key with no hidden objects.
    pub fn signon(&self, uak: &str) -> SessionId {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions.write().insert(
            id,
            Arc::new(SessionState {
                uak: uak.to_string(),
                connected: Mutex::new(Session::new()),
            }),
        );
        SessionId(id)
    }

    /// Sign a session off: every handle it still holds is closed, its
    /// connected-object table is dropped (the paper disconnects all objects
    /// at logoff), and every read-cache entry the session's keys could
    /// reach is **purged and zeroed** — no decrypted byte may outlive a
    /// session that could read it, while entries other live sessions
    /// resolved through their own keys stay warm (see
    /// `stegfs_core::readcache`).  The RAM-only observability trace ring is
    /// zeroed as well, so no record of the departing session's activity
    /// pattern survives it.
    pub fn signoff(&self, session: SessionId) -> VfsResult<()> {
        let state = self
            .sessions
            .write()
            .remove(&session.0)
            .ok_or(VfsError::BadSession(session.0))?;
        for file in self.table.remove_session(session.0) {
            self.release_ref(&file.object);
        }
        self.fs.purge_session_caches(&state.uak);
        // Session-scoped observability state that could outline hidden
        // activity (op-labelled trace entries, captured span trees) dies
        // with the session; the digit-normalized *shape* stays identical.
        self.fs.obs().trace.zeroize();
        self.fs.obs().slow.zeroize();
        self.fs.obs().capture.zeroize();
        Ok(())
    }

    /// Counters of the core's read-path cache (hits, misses, evictions,
    /// resident plaintext), surfaced next to the device `IoStats` by the
    /// benches.
    pub fn cache_stats(&self) -> CacheStats {
        self.fs.cache_stats()
    }

    /// The volume's observability registry (histograms, contention
    /// counters, trace ring).  RAM only; see `stegfs-obs` for the
    /// deniability contract.
    pub fn obs(&self) -> &std::sync::Arc<stegfs_obs::Obs> {
        self.fs.obs()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// `steg_connect` through the VFS: resolve `name` under the session's key
    /// and cache it (and, for a directory, its offspring) in the session, so
    /// subsequent opens skip the UAK-directory walk and the objects appear in
    /// the session's `/hidden` listing.
    pub fn connect(&self, session: SessionId, name: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        let entry = self.fs.lookup_entry(name, &uak)?;
        let mut gathered = Vec::new();
        self.collect_offspring(&entry, &mut gathered)?;
        let state = self.session_state(session)?;
        let mut connected = state.connected.lock();
        for e in &gathered {
            connected.connect(ConnectedObject::from(e));
        }
        Ok(())
    }

    /// Remove `name` from the session's connected set.  Returns true if it
    /// was connected.
    pub fn disconnect(&self, session: SessionId, name: &str) -> VfsResult<bool> {
        let state = self.session_state(session)?;
        let mut connected = state.connected.lock();
        Ok(connected.disconnect(name))
    }

    /// Names of the session's connected objects.
    pub fn connected_objects(&self, session: SessionId) -> VfsResult<Vec<String>> {
        let state = self.session_state(session)?;
        let connected = state.connected.lock();
        Ok(connected.connected_names())
    }

    fn session_state(&self, session: SessionId) -> VfsResult<Arc<SessionState>> {
        self.sessions
            .read()
            .get(&session.0)
            .cloned()
            .ok_or(VfsError::BadSession(session.0))
    }

    fn session_uak(&self, session: SessionId) -> VfsResult<String> {
        Ok(self.session_state(session)?.uak.clone())
    }

    fn cached_entry(&self, session: SessionId, name: &str) -> Option<DirectoryEntry> {
        let state = self.sessions.read().get(&session.0).cloned()?;
        let connected = state.connected.lock();
        let obj = connected.get(name)?;
        Some(DirectoryEntry {
            name: obj.name.clone(),
            physical_name: obj.physical_name.clone(),
            fak: obj.fak,
            kind: obj.kind,
        })
    }

    fn cache_entry(&self, session: SessionId, entry: &DirectoryEntry) {
        if let Ok(state) = self.session_state(session) {
            state.connected.lock().connect(ConnectedObject::from(entry));
        }
    }

    /// Resolve a hidden component chain and run `f` on the result.
    ///
    /// The session's connected cache is a *hint*, never truth: another
    /// session holding the same key may have unlinked or renamed the object
    /// since it was cached.  So when a cache-assisted resolution (or `f`
    /// itself, e.g. the object open) reports not-found, the cached entry is
    /// dropped and the walk retried from disk before the error is believed.
    fn with_hidden_entry<R>(
        &self,
        session: SessionId,
        uak: &str,
        comps: &[String],
        mut f: impl FnMut(&DirectoryEntry) -> VfsResult<R>,
    ) -> VfsResult<R> {
        let mut cached = self.cached_entry(session, &comps[0]);
        loop {
            let used_cache = cached.is_some();
            let result = self
                .resolve_hidden(uak, comps, cached.take())
                .and_then(|entry| f(&entry));
            match result {
                Err(e) if e.is_not_found() && used_cache => {
                    let _ = self.disconnect(session, &comps[0]);
                    // `cached` is now None: the next pass walks from disk.
                }
                other => return other,
            }
        }
    }

    /// Resolve a `/hidden` component chain to its final directory entry.
    ///
    /// The first component resolves through the session cache (if `cached`)
    /// or the UAK directory; every further component resolves through the
    /// listing of the hidden directory above it — each listing carries full
    /// `(physical name, FAK)` entries, so offspring need no extra key
    /// material, exactly as in the paper's `steg_connect`.
    fn resolve_hidden(
        &self,
        uak: &str,
        comps: &[String],
        cached: Option<DirectoryEntry>,
    ) -> VfsResult<DirectoryEntry> {
        let mut entry = match cached {
            Some(e) => e,
            None => self.fs.lookup_entry(&comps[0], uak)?,
        };
        for comp in &comps[1..] {
            if entry.kind != ObjectKind::Directory {
                return Err(VfsError::NotADirectory(comps.join("/")));
            }
            let children = self.fs.read_hidden_dir_listing(&entry)?;
            entry = children
                .find(comp)
                .cloned()
                .ok_or_else(|| stegfs_core::StegError::NotFound(comp.clone()))?;
        }
        Ok(entry)
    }

    /// Collect `entry` and, recursively, the offspring of hidden directories
    /// — the connect set of the paper's `steg_connect`.
    fn collect_offspring(
        &self,
        entry: &DirectoryEntry,
        out: &mut Vec<DirectoryEntry>,
    ) -> VfsResult<()> {
        out.push(entry.clone());
        if entry.kind == ObjectKind::Directory {
            let children = self.fs.read_hidden_dir_listing(entry)?;
            for child in &children.entries {
                self.collect_offspring(child, out)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shared-object registry
    // ------------------------------------------------------------------

    /// Pin the registry entry for a plain inode, creating it on first open.
    fn acquire_plain(&self, inode: InodeId) -> Arc<ObjectEntry> {
        let mut map = self.objects.lock();
        let key = ObjectKey::Plain(inode);
        if let Some(e) = map.get(&key) {
            if !e.is_dead() {
                e.refs.fetch_add(1, Ordering::AcqRel);
                return Arc::clone(e);
            }
        }
        let e = Arc::new(ObjectEntry::new(key.clone(), TargetState::Plain { inode }));
        map.insert(key, Arc::clone(&e));
        e
    }

    /// Pin the registry entry for a hidden object, opening it through the
    /// core on first use.  The locator walk is real device I/O, so it runs
    /// *outside* the registry lock; a double-checked insert resolves racing
    /// first-opens (the loser drops its redundant handle and joins the
    /// winner's entry).  An unlink racing a first-open is serialised by the
    /// core object shard and swept by unlink's post-delete registry pass.
    fn acquire_hidden(&self, entry: &DirectoryEntry) -> VfsResult<Arc<ObjectEntry>> {
        let key = ObjectKey::Hidden(entry.physical_name.clone());
        {
            let map = self.objects.lock();
            if let Some(e) = map.get(&key) {
                if !e.is_dead() {
                    e.refs.fetch_add(1, Ordering::AcqRel);
                    return Ok(Arc::clone(e));
                }
            }
        }
        let handle = Box::new(self.fs.open_hidden_entry(entry)?);
        let mut map = self.objects.lock();
        if let Some(e) = map.get(&key) {
            if !e.is_dead() {
                e.refs.fetch_add(1, Ordering::AcqRel);
                return Ok(Arc::clone(e));
            }
        }
        let e = Arc::new(ObjectEntry::new(
            key.clone(),
            TargetState::Hidden { handle },
        ));
        map.insert(key, Arc::clone(&e));
        Ok(e)
    }

    /// Drop one pin; the last pin evicts the entry from the registry (unless
    /// unlink already replaced or removed it — the `Arc` identity check keeps
    /// a stale close from evicting a recreated object of the same name).
    fn release_ref(&self, obj: &Arc<ObjectEntry>) {
        let mut map = self.objects.lock();
        if obj.refs.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(current) = map.get(&obj.key) {
                if Arc::ptr_eq(current, obj) {
                    map.remove(&obj.key);
                }
            }
        }
    }

    /// Remove `obj` from the registry if it is still the registered entry
    /// for its key (unlink's post-delete cleanup; `Arc` identity guards a
    /// recreated object of the same name).
    fn evict_entry(&self, obj: &Arc<ObjectEntry>) {
        let mut map = self.objects.lock();
        if let Some(current) = map.get(&obj.key) {
            if Arc::ptr_eq(current, obj) {
                map.remove(&obj.key);
            }
        }
    }

    /// Apply open-time `truncate` / `append` under the object lock, returning
    /// the handle's initial offset.
    fn setup_handle(&self, obj: &Arc<ObjectEntry>, truncate: bool, append: bool) -> VfsResult<u64> {
        if !truncate && !append {
            return Ok(0);
        }
        let mut io = obj.io.lock();
        // An unlink may have completed while we waited for the lock (it
        // holds this lock across the delete); the object is then gone.
        if obj.is_dead() {
            return Err(VfsError::BadHandle(0));
        }
        match &mut *io {
            TargetState::Plain { inode } => {
                let inode = *inode;
                if truncate {
                    plain_rewrite(&self.fs, inode, 0, None)?;
                }
                if append {
                    Ok(self.fs.plain_fs().inode_file_size(inode)?)
                } else {
                    Ok(0)
                }
            }
            TargetState::Hidden { handle } => {
                if truncate {
                    self.fs.truncate_handle(handle, 0)?;
                }
                if append {
                    Ok(handle.size())
                } else {
                    Ok(0)
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Namespace operations
    // ------------------------------------------------------------------

    /// Stat a path in the unified namespace.
    pub fn stat(&self, session: SessionId, path: &str) -> VfsResult<VfsStat> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Ok(VfsStat {
                kind: NodeKind::Directory,
                size: 0,
            }),
            VfsPath::Plain(p) => {
                let (kind, size) = self.fs.plain_fs().stat(&p)?;
                Ok(VfsStat {
                    kind: plain_kind(kind, &p)?,
                    size,
                })
            }
            VfsPath::Hidden(comps) => {
                self.with_hidden_entry(session, &uak, &comps, |entry| match entry.kind {
                    ObjectKind::Directory => Ok(VfsStat {
                        kind: NodeKind::Directory,
                        size: 0,
                    }),
                    ObjectKind::File => {
                        // Prefer the live cached handle (it reflects
                        // in-flight growth); fall back to a fresh open.
                        let cached = self
                            .objects
                            .lock()
                            .get(&ObjectKey::Hidden(entry.physical_name.clone()))
                            .cloned();
                        let size = match cached {
                            Some(obj) if !obj.is_dead() => {
                                let io = obj.io.lock();
                                match &*io {
                                    TargetState::Hidden { handle } => handle.size(),
                                    TargetState::Plain { .. } => {
                                        unreachable!("hidden key always maps to a hidden target")
                                    }
                                }
                            }
                            _ => self.fs.open_hidden_entry(entry)?.size(),
                        };
                        Ok(VfsStat {
                            kind: NodeKind::File,
                            size,
                        })
                    }
                })
            }
        }
    }

    /// List a directory in the unified namespace.
    ///
    /// `/` always shows exactly `plain` and `hidden`; what `/hidden` shows
    /// depends entirely on the session's key (its UAK directory plus any
    /// connected objects), so two sessions see two different trees over the
    /// same volume.
    pub fn readdir(&self, session: SessionId, path: &str) -> VfsResult<Vec<VfsDirEntry>> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root => Ok(vec![
                VfsDirEntry {
                    name: "plain".into(),
                    kind: NodeKind::Directory,
                },
                VfsDirEntry {
                    name: "hidden".into(),
                    kind: NodeKind::Directory,
                },
            ]),
            VfsPath::Plain(p) => {
                let entries = self.fs.plain_fs().list_dir(&p)?;
                Ok(entries
                    .into_iter()
                    .map(|e| VfsDirEntry {
                        name: e.name,
                        kind: match e.kind {
                            FileKind::Directory => NodeKind::Directory,
                            _ => NodeKind::File,
                        },
                    })
                    .collect())
            }
            VfsPath::HiddenRoot => {
                let mut out: Vec<VfsDirEntry> = self
                    .fs
                    .list_hidden(&uak)?
                    .into_iter()
                    .map(|(name, kind)| VfsDirEntry {
                        name,
                        kind: object_kind(kind),
                    })
                    .collect();
                // Connected objects (e.g. offspring of a connected directory,
                // or shared entries) are part of the session's view too.
                let state = self.session_state(session)?;
                let connected = state.connected.lock();
                for name in connected.connected_names() {
                    if !out.iter().any(|e| e.name == name) {
                        if let Some(obj) = connected.get(&name) {
                            out.push(VfsDirEntry {
                                name,
                                kind: object_kind(obj.kind),
                            });
                        }
                    }
                }
                drop(connected);
                out.sort_by(|a, b| a.name.cmp(&b.name));
                Ok(out)
            }
            VfsPath::Hidden(comps) => self.with_hidden_entry(session, &uak, &comps, |entry| {
                if entry.kind != ObjectKind::Directory {
                    return Err(VfsError::NotADirectory(path.to_string()));
                }
                let children = self.fs.read_hidden_dir_listing(entry)?;
                Ok(children
                    .entries
                    .iter()
                    .map(|e| VfsDirEntry {
                        name: e.name.clone(),
                        kind: object_kind(e.kind),
                    })
                    .collect())
            }),
        }
    }

    /// Create a directory.
    ///
    /// Hidden directories nest at **arbitrary depth**: the parent chain of
    /// `/hidden/a/b/c` resolves through the per-directory listings (each
    /// listing carries full `(physical name, FAK)` entries), and the new
    /// child is registered in its immediate parent alone.
    pub fn mkdir(&self, session: SessionId, path: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Err(VfsError::from(
                stegfs_core::StegError::AlreadyExists(path.to_string()),
            )),
            VfsPath::Plain(p) => {
                self.fs.create_plain_dir(&p)?;
                Ok(())
            }
            VfsPath::Hidden(comps) => {
                self.create_hidden(session, &uak, &comps, ObjectKind::Directory)?;
                Ok(())
            }
        }
    }

    /// Create a hidden object at any depth of `comps` (the component chain
    /// under `/hidden`): top level goes through the UAK directory, deeper
    /// levels resolve the parent chain and register the child in its parent
    /// listing.
    fn create_hidden(
        &self,
        session: SessionId,
        uak: &str,
        comps: &[String],
        kind: ObjectKind,
    ) -> VfsResult<()> {
        match comps {
            [] => Err(VfsError::InvalidPath("/hidden".into())),
            [name] => Ok(self.fs.steg_create(name, uak, kind)?),
            [parents @ .., child] => self.with_hidden_entry(session, uak, parents, |entry| {
                Ok(self.fs.create_dir_child(entry, child, kind)?)
            }),
        }
    }

    /// Remove a file or empty directory.
    ///
    /// The deletion itself is O(file size); the registry lock is held only
    /// long enough to pin the victim's entry, *not* across the delete — so
    /// opens and closes of unrelated objects are never stalled behind a
    /// large unlink.  The pinned entry stays in the registry (alive) until
    /// the delete succeeds, so a racing open of the same object reuses it
    /// and simply goes stale (`BadHandle`, in the not-found family) with
    /// everyone else.  Only an open racing the delete on an object *nobody*
    /// had open can slip through the core and briefly hold a handle to freed
    /// blocks; its reads fail or return noise until it is closed.
    pub fn unlink(&self, session: SessionId, path: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Err(VfsError::InvalidPath(path.to_string())),
            VfsPath::Plain(p) => {
                // Resolve before touching the registry — path resolution is
                // I/O and must not stall unrelated opens.  Pin the victim's
                // object lock so in-flight handle I/O drains before its
                // blocks are freed.
                let inode = self.fs.plain_fs().resolve_file(&p).ok();
                let cached =
                    inode.and_then(|id| self.objects.lock().get(&ObjectKey::Plain(id)).cloned());
                let io = cached.as_ref().map(|c| c.io.lock());
                self.fs.delete_plain(&p)?;
                if let Some(c) = &cached {
                    c.mark_dead();
                }
                drop(io);
                if let Some(c) = &cached {
                    self.evict_entry(c);
                }
                // As in the hidden branch: an open racing this unlink may
                // have registered a fresh entry for the inode while the
                // delete ran.  The inode slot is free now and its id can be
                // recycled by the next create, so that entry must die too or
                // its handles would silently retarget.
                if let Some(id) = inode {
                    let late = self.objects.lock().get(&ObjectKey::Plain(id)).cloned();
                    if let Some(late) = late {
                        if !cached.as_ref().is_some_and(|c| Arc::ptr_eq(c, &late)) {
                            late.mark_dead();
                            self.evict_entry(&late);
                        }
                    }
                }
                Ok(())
            }
            VfsPath::Hidden(comps) => {
                let [name] = comps.as_slice() else {
                    // A child inside a hidden directory: resolve the parent
                    // chain, then remove through the core's child API.
                    return self.unlink_hidden_child(session, &uak, &comps);
                };
                // Resolve the physical name first (outside the registry
                // lock: it is a full UAK-directory walk) so the cached
                // object can be pinned before its blocks are freed.  The
                // physical name is stable for the object's lifetime, so the
                // binding cannot change between the walk and the pin.
                let physical = self
                    .fs
                    .lookup_entry(name, &uak)
                    .ok()
                    .map(|e| e.physical_name);
                let cached =
                    physical.and_then(|p| self.objects.lock().get(&ObjectKey::Hidden(p)).cloned());
                let io = cached.as_ref().map(|c| c.io.lock());
                let deleted = self.fs.delete_hidden(name, &uak)?;
                if let Some(c) = &cached {
                    c.mark_dead();
                }
                drop(io);
                if let Some(c) = &cached {
                    self.evict_entry(c);
                }
                // A first-open may have slipped a fresh entry into the
                // registry while the delete ran (it won the core object
                // shard before the delete freed the blocks).  Its object is
                // gone now, so kill that entry too; a legitimate
                // recreate-after-delete that lands in the same window is
                // simply forced to reopen.
                let late = self
                    .objects
                    .lock()
                    .get(&ObjectKey::Hidden(deleted.physical_name.clone()))
                    .cloned();
                if let Some(late) = late {
                    if !cached.as_ref().is_some_and(|c| Arc::ptr_eq(c, &late)) {
                        late.mark_dead();
                        self.evict_entry(&late);
                    }
                }
                if let Ok(state) = self.session_state(session) {
                    state.connected.lock().disconnect(name);
                }
                Ok(())
            }
        }
    }

    /// Unlink `comps` (length >= 2): a child inside a hidden directory.
    /// Mirrors the single-level branch: pin the child's registry entry so
    /// in-flight handle I/O drains before the core frees its blocks, then
    /// sweep any entry a racing open slipped in during the delete.
    fn unlink_hidden_child(
        &self,
        session: SessionId,
        uak: &str,
        comps: &[String],
    ) -> VfsResult<()> {
        let (parent_comps, child) = comps.split_at(comps.len() - 1);
        let child = &child[0];
        self.with_hidden_entry(session, uak, parent_comps, |parent_entry| {
            let listing = self.fs.read_hidden_dir_listing(parent_entry)?;
            let child_entry = listing
                .find(child)
                .cloned()
                .ok_or_else(|| stegfs_core::StegError::NotFound(child.clone()))?;
            let cached = self
                .objects
                .lock()
                .get(&ObjectKey::Hidden(child_entry.physical_name.clone()))
                .cloned();
            let io = cached.as_ref().map(|c| c.io.lock());
            let deleted = self.fs.remove_dir_child(parent_entry, child)?;
            if let Some(c) = &cached {
                c.mark_dead();
            }
            drop(io);
            if let Some(c) = &cached {
                self.evict_entry(c);
            }
            let late = self
                .objects
                .lock()
                .get(&ObjectKey::Hidden(deleted.physical_name.clone()))
                .cloned();
            if let Some(late) = late {
                if !cached.as_ref().is_some_and(|c| Arc::ptr_eq(c, &late)) {
                    late.mark_dead();
                    self.evict_entry(&late);
                }
            }
            Ok(())
        })?;
        // The child may also be connected at top level (steg_connect pulls
        // offspring into the session); drop that cache entry.
        if let Ok(state) = self.session_state(session) {
            state.connected.lock().disconnect(child);
        }
        Ok(())
    }

    /// Rename within a namespace (`/plain` to `/plain`, a top-level
    /// `/hidden` name to another, or a child of a hidden directory to a new
    /// name *within the same directory*).  Crossing the plain/hidden
    /// boundary is refused — that conversion is the explicit, deliberate
    /// `steg_hide` / `steg_unhide` — and so is moving a hidden object
    /// between directories (the physical name encodes the parent chain).
    pub fn rename(&self, session: SessionId, from: &str, to: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        match (VfsPath::parse(from)?, VfsPath::parse(to)?) {
            (VfsPath::Plain(a), VfsPath::Plain(b)) => {
                self.fs.plain_fs().rename(&a, &b)?;
                Ok(())
            }
            (VfsPath::Hidden(a), VfsPath::Hidden(b)) => {
                if let ([old], [new]) = (a.as_slice(), b.as_slice()) {
                    self.fs.rename_hidden(old, new, &uak)?;
                    if let Ok(state) = self.session_state(session) {
                        state.connected.lock().disconnect(old);
                    }
                    return Ok(());
                }
                if a.len() == b.len() && a.len() >= 2 && a[..a.len() - 1] == b[..b.len() - 1] {
                    let parent_comps = &a[..a.len() - 1];
                    let old = a.last().expect("len >= 2");
                    let new = b.last().expect("len >= 2");
                    self.with_hidden_entry(session, &uak, parent_comps, |parent_entry| {
                        Ok(self.fs.rename_dir_child(parent_entry, old, new)?)
                    })?;
                    if let Ok(state) = self.session_state(session) {
                        state.connected.lock().disconnect(old);
                    }
                    return Ok(());
                }
                Err(VfsError::Unsupported(format!(
                    "hidden renames must stay within one directory: {from} -> {to}"
                )))
            }
            (VfsPath::Plain(_), VfsPath::Hidden(_)) | (VfsPath::Hidden(_), VfsPath::Plain(_)) => {
                Err(VfsError::CrossNamespace {
                    from: from.to_string(),
                    to: to.to_string(),
                })
            }
            _ => Err(VfsError::InvalidPath(format!("{from} -> {to}"))),
        }
    }

    // ------------------------------------------------------------------
    // Handle operations
    // ------------------------------------------------------------------

    /// Open a file and get a handle.
    pub fn open(&self, session: SessionId, path: &str, opts: OpenOptions) -> VfsResult<VfsHandle> {
        if !opts.read && !opts.write {
            return Err(VfsError::Unsupported(
                "open requires read or write access".into(),
            ));
        }
        if (opts.create || opts.truncate || opts.append) && !opts.write {
            return Err(VfsError::NotWritable);
        }
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Err(VfsError::IsDirectory(path.to_string())),
            VfsPath::Plain(p) if p == "/" => Err(VfsError::IsDirectory(path.to_string())),
            VfsPath::Plain(p) => {
                match self.fs.plain_fs().stat(&p) {
                    Ok((FileKind::Directory, _)) => {
                        return Err(VfsError::IsDirectory(path.to_string()))
                    }
                    Ok(_) => {}
                    Err(e) if e.is_not_found() && opts.create => {
                        // Create-only, never truncate: losing the create race
                        // to a concurrent opener means the file exists now,
                        // possibly already carrying the winner's data.
                        match self.fs.plain_fs().create_file(&p) {
                            Ok(_) => {}
                            Err(stegfs_fs::FsError::AlreadyExists(_)) => {}
                            Err(err) => return Err(err.into()),
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
                // Pin the inode, not the path: the handle must keep following
                // this file across renames and go stale on delete, never
                // silently retarget to whatever later occupies the path.
                let inode = self.fs.plain_fs().resolve_file(&p)?;
                let obj = self.acquire_plain(inode);
                // Re-validate after the pin: an unlink+create racing between
                // the resolve and the registry insert can recycle the inode
                // id for a *different* path.  Once our entry is registered,
                // any later unlink of this inode finds and kills it, so a
                // stable recheck here closes the silent-retarget window.
                match self.fs.plain_fs().resolve_file(&p) {
                    Ok(again) if again == inode => {}
                    _ => {
                        self.release_ref(&obj);
                        return Err(VfsError::from(stegfs_fs::FsError::NotFound(p)));
                    }
                }
                let offset = match self.setup_handle(&obj, opts.truncate, opts.append) {
                    Ok(o) => o,
                    Err(e) => {
                        self.release_ref(&obj);
                        return Err(e);
                    }
                };
                self.finish_open(
                    session,
                    OpenFile {
                        session: session.0,
                        object: obj,
                        offset: Arc::new(Mutex::new(StreamPos::new(offset))),
                        read: opts.read,
                        write: opts.write,
                        append: opts.append,
                    },
                )
            }
            VfsPath::Hidden(comps) => {
                // Resolve and pin the shared object.  Runs under
                // `with_hidden_entry`, so a stale session cache falls back to
                // a from-disk walk.
                let mut ensure =
                    |entry: &DirectoryEntry| -> VfsResult<(Arc<ObjectEntry>, DirectoryEntry)> {
                        if entry.kind != ObjectKind::File {
                            return Err(VfsError::IsDirectory(path.to_string()));
                        }
                        Ok((self.acquire_hidden(entry)?, entry.clone()))
                    };

                let resolved = match self.with_hidden_entry(session, &uak, &comps, &mut ensure) {
                    Ok(v) => Ok(v),
                    Err(e) if e.is_not_found() && opts.create => {
                        // Create at any depth; the parent chain must exist.
                        match self.create_hidden(session, &uak, &comps, ObjectKind::File) {
                            Ok(()) => {}
                            // Raced another creator: the object exists now,
                            // which is all we wanted.
                            Err(VfsError::Steg(stegfs_core::StegError::AlreadyExists(_))) => {}
                            Err(err) => return Err(err),
                        }
                        self.with_hidden_entry(session, &uak, &comps, &mut ensure)
                    }
                    Err(e) => Err(e),
                };
                let (obj, entry) = resolved?;
                let offset = match self.setup_handle(&obj, opts.truncate, opts.append) {
                    Ok(o) => o,
                    Err(e) => {
                        self.release_ref(&obj);
                        return Err(e);
                    }
                };

                // Cache the resolution in the session (the `steg_connect`
                // fast path for the next open).
                if comps.len() == 1 {
                    self.cache_entry(session, &entry);
                }
                self.finish_open(
                    session,
                    OpenFile {
                        session: session.0,
                        object: obj,
                        offset: Arc::new(Mutex::new(StreamPos::new(offset))),
                        read: opts.read,
                        write: opts.write,
                        append: opts.append,
                    },
                )
            }
        }
    }

    /// Insert the open file and re-validate the session.  A signoff racing
    /// the open may have swept the table *before* our insert landed; its
    /// handle would then leak (and pin a shared object's refcount) forever.
    /// Re-checking after the insert closes the window: whichever side runs
    /// last cleans up.
    fn finish_open(&self, session: SessionId, file: OpenFile) -> VfsResult<VfsHandle> {
        let handle = self.table.insert(file);
        if !self.sessions.read().contains_key(&session.0) {
            let _ = self.close(handle);
            return Err(VfsError::BadSession(session.0));
        }
        Ok(handle)
    }

    /// Close a handle.  Idempotence is not offered: closing twice reports the
    /// same stale-handle error as any other use-after-close.
    pub fn close(&self, handle: VfsHandle) -> VfsResult<()> {
        let file = self.table.remove(handle)?;
        self.release_ref(&file.object);
        Ok(())
    }

    /// Positional read: `len` bytes at `offset`, without touching the
    /// handle's stream position.  Reads past end-of-file return the available
    /// prefix (possibly empty).
    pub fn read_at(&self, handle: VfsHandle, offset: u64, len: usize) -> VfsResult<Vec<u8>> {
        let file = self.table.get(handle)?;
        if !file.read {
            return Err(VfsError::NotReadable);
        }
        self.object_read(handle, &file, offset, len)
    }

    /// Positional write at `offset`, extending the file as needed, without
    /// touching the handle's stream position.
    pub fn write_at(&self, handle: VfsHandle, offset: u64, data: &[u8]) -> VfsResult<()> {
        let file = self.table.get(handle)?;
        if !file.write {
            return Err(VfsError::NotWritable);
        }
        self.object_write(handle, &file, WriteOffset::At(offset), data)
            .map(|_| ())
    }

    /// Streaming read from the handle's current offset, advancing it.
    /// Atomic per handle: two threads streaming on one handle each consume a
    /// distinct range, as with a shared POSIX file description.  The offset
    /// lives behind its own per-handle lock, held across the object I/O —
    /// so a slow stream parks only this handle, never the table shard other
    /// handles hash to.
    pub fn read(&self, handle: VfsHandle, len: usize) -> VfsResult<Vec<u8>> {
        let file = self.table.get(handle)?;
        if !file.read {
            return Err(VfsError::NotReadable);
        }
        let mut sp = file.offset.lock();
        // Readahead arms once this handle's streaming reads are proven
        // back-to-back: this read starts exactly where the previous one
        // ended.  Seeks and writes break the streak.
        let readahead = if sp.pos == sp.last_read_end {
            READAHEAD_BLOCKS
        } else {
            0
        };
        let out = self.object_read_ahead(handle, &file, sp.pos, len, readahead)?;
        sp.pos += out.len() as u64;
        sp.last_read_end = sp.pos;
        Ok(out)
    }

    /// Streaming write at the handle's current offset (or at end-of-file for
    /// append handles), advancing it.  Atomic per handle, like [`Self::read`];
    /// for append handles the end-of-file lookup and the write happen under
    /// one hold of the object lock, so appends through different handles
    /// never land on the same offset.
    pub fn write(&self, handle: VfsHandle, data: &[u8]) -> VfsResult<()> {
        let file = self.table.get(handle)?;
        if !file.write {
            return Err(VfsError::NotWritable);
        }
        let mut sp = file.offset.lock();
        let at = if file.append {
            WriteOffset::End
        } else {
            WriteOffset::At(sp.pos)
        };
        sp.pos = self.object_write(handle, &file, at, data)?;
        // A write through the handle ends any read streak.
        sp.last_read_end = u64::MAX;
        Ok(())
    }

    /// Reposition the handle's stream offset; returns the new offset.
    /// Seeking past end-of-file is allowed (a later write zero-fills the
    /// gap, as on POSIX).  Takes only the per-handle offset lock — a parked
    /// streaming handle elsewhere in the table never delays a seek here.
    pub fn seek(&self, handle: VfsHandle, pos: SeekFrom) -> VfsResult<u64> {
        let file = self.table.get(handle)?;
        let mut sp = file.offset.lock();
        let base: i128 = match pos {
            SeekFrom::Start(_) => 0,
            SeekFrom::Current(_) => sp.pos as i128,
            SeekFrom::End(_) => self.target_size(handle, &file)? as i128,
        };
        let delta: i128 = match pos {
            SeekFrom::Start(n) => n as i128,
            SeekFrom::Current(n) | SeekFrom::End(n) => n as i128,
        };
        let target = base + delta;
        if !(0..=u64::MAX as i128).contains(&target) {
            return Err(VfsError::Unsupported(format!(
                "seek to negative or overflowing offset {target}"
            )));
        }
        sp.pos = target as u64;
        // Repositioning breaks the sequential streak (a seek back to the
        // streak's end re-arms on the next read anyway).
        if sp.pos != sp.last_read_end {
            sp.last_read_end = u64::MAX;
        }
        Ok(target as u64)
    }

    /// Set the file's length, truncating or zero-extending.
    pub fn truncate(&self, handle: VfsHandle, new_len: u64) -> VfsResult<()> {
        let file = self.table.get(handle)?;
        if !file.write {
            return Err(VfsError::NotWritable);
        }
        let obj = &file.object;
        let mut io = obj.io.lock();
        if obj.is_dead() {
            return Err(VfsError::BadHandle(handle.0));
        }
        match &mut *io {
            TargetState::Plain { inode } => plain_rewrite(&self.fs, *inode, new_len, None),
            TargetState::Hidden { handle: h } => Ok(self.fs.truncate_handle(h, new_len)?),
        }
    }

    /// Current size of the file behind `handle`.
    pub fn handle_size(&self, handle: VfsHandle) -> VfsResult<u64> {
        let file = self.table.get(handle)?;
        self.target_size(handle, &file)
    }

    // ------------------------------------------------------------------
    // Internal I/O plumbing
    // ------------------------------------------------------------------

    fn object_read(
        &self,
        handle: VfsHandle,
        file: &OpenFile,
        offset: u64,
        len: usize,
    ) -> VfsResult<Vec<u8>> {
        self.object_read_ahead(handle, file, offset, len, 0)
    }

    /// [`Self::object_read`] with a readahead hint for hidden objects: the
    /// hinted blocks past the range ride the same batched submission into
    /// the plaintext cache.  Plain files already sit behind the buffer
    /// cache, so the hint only applies to the hidden path.
    fn object_read_ahead(
        &self,
        handle: VfsHandle,
        file: &OpenFile,
        offset: u64,
        len: usize,
        readahead: usize,
    ) -> VfsResult<Vec<u8>> {
        let obj = &file.object;
        let io = obj.io.lock();
        if obj.is_dead() {
            return Err(VfsError::BadHandle(handle.0));
        }
        match &*io {
            TargetState::Plain { inode } => {
                Ok(self.fs.plain_fs().read_inode_range(*inode, offset, len)?)
            }
            TargetState::Hidden { handle: h } => Ok(self
                .fs
                .read_range_at_with_readahead(h, offset, len, readahead)?),
        }
    }

    /// Perform a write under one hold of the object lock, resolving
    /// [`WriteOffset::End`] against the size *inside* that hold (append
    /// atomicity across handles).  Returns the end position of the write,
    /// which streaming callers adopt as the new stream offset.
    fn object_write(
        &self,
        handle: VfsHandle,
        file: &OpenFile,
        at: WriteOffset,
        data: &[u8],
    ) -> VfsResult<u64> {
        let obj = &file.object;
        let mut io = obj.io.lock();
        if obj.is_dead() {
            return Err(VfsError::BadHandle(handle.0));
        }
        match &mut *io {
            TargetState::Plain { inode } => {
                let inode = *inode;
                let size = self.fs.plain_fs().inode_file_size(inode)?;
                let offset = match at {
                    WriteOffset::At(o) => o,
                    WriteOffset::End => size,
                };
                if data.is_empty() {
                    return Ok(offset);
                }
                let end = offset
                    .checked_add(data.len() as u64)
                    .ok_or(stegfs_core::StegError::NoSpace)?;
                if end <= size {
                    // In place: no reallocation, no rewrite.
                    self.fs.plain_fs().write_inode_range(inode, offset, data)?;
                } else {
                    plain_rewrite(&self.fs, inode, end, Some((offset, data)))?;
                }
                Ok(end)
            }
            TargetState::Hidden { handle: h } => {
                let offset = match at {
                    WriteOffset::At(o) => o,
                    WriteOffset::End => h.size(),
                };
                if data.is_empty() {
                    return Ok(offset);
                }
                self.fs.write_at_handle(h, offset, data)?;
                Ok(offset + data.len() as u64)
            }
        }
    }

    fn target_size(&self, handle: VfsHandle, file: &OpenFile) -> VfsResult<u64> {
        let obj = &file.object;
        let io = obj.io.lock();
        if obj.is_dead() {
            return Err(VfsError::BadHandle(handle.0));
        }
        match &*io {
            TargetState::Plain { inode } => Ok(self.fs.plain_fs().inode_file_size(*inode)?),
            TargetState::Hidden { handle: h } => Ok(h.size()),
        }
    }
}

// ----------------------------------------------------------------------
// Free helpers
// ----------------------------------------------------------------------

/// The one read-resize-splice-rewrite implementation for plain files, shared
/// by extending writes and truncate.  Refuses lengths beyond the volume's
/// capacity *before* materialising anything, so a seek to 1 TB followed by a
/// 1-byte write reports `NoSpace` instead of attempting a 1 TB allocation.
/// Callers hold the object lock of the inode, which serialises the
/// read-modify-write.
fn plain_rewrite<D: BlockDevice>(
    fs: &StegFs<D>,
    inode: InodeId,
    new_len: u64,
    patch: Option<(u64, &[u8])>,
) -> VfsResult<()> {
    let sb = fs.plain_fs().superblock();
    let capacity = sb.total_blocks * sb.block_size as u64;
    if new_len > capacity {
        return Err(stegfs_core::StegError::NoSpace.into());
    }
    let size = fs.plain_fs().inode_file_size(inode)?;
    let mut contents = fs.plain_fs().read_inode_range(inode, 0, size as usize)?;
    contents.resize(new_len as usize, 0);
    if let Some((offset, data)) = patch {
        contents[offset as usize..offset as usize + data.len()].copy_from_slice(data);
    }
    fs.plain_fs().write_inode_file(inode, &contents)?;
    Ok(())
}

fn plain_kind(kind: FileKind, path: &str) -> VfsResult<NodeKind> {
    match kind {
        FileKind::Directory => Ok(NodeKind::Directory),
        FileKind::File => Ok(NodeKind::File),
        _ => Err(VfsError::InvalidPath(path.to_string())),
    }
}

fn object_kind(kind: ObjectKind) -> NodeKind {
    match kind {
        ObjectKind::Directory => NodeKind::Directory,
        ObjectKind::File => NodeKind::File,
    }
}
