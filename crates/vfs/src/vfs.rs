//! The [`Vfs`] front-end proper.

use crate::error::{VfsError, VfsResult};
use crate::path::VfsPath;
use crate::table::{OpenFile, OpenFileTable, OpenOptions, Target, VfsHandle};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::SeekFrom;
use std::sync::atomic::{AtomicU64, Ordering};
use stegfs_blockdev::BlockDevice;
use stegfs_core::session::{ConnectedObject, Session};
use stegfs_core::{
    DirectoryEntry, HiddenHandle, ObjectKind, SpaceReport, StegFs, StegParams, StegResult,
    UakDirectory,
};
use stegfs_fs::FileKind;

/// A signed-on user session, identified by an opaque id.
///
/// A session wraps one User Access Key plus a [`stegfs_core::session::Session`]
/// of connected objects; `/hidden` resolves against exactly this state, so
/// hidden objects are visible only to the sessions holding their key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw session number.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Kind of a namespace node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular file (plain or hidden).
    File,
    /// A directory (plain, hidden, or one of the fixed namespace roots).
    Directory,
}

/// Result of [`Vfs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfsStat {
    /// File or directory.
    pub kind: NodeKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
}

/// One entry returned by [`Vfs::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsDirEntry {
    /// Component name.
    pub name: String,
    /// File or directory.
    pub kind: NodeKind,
}

struct SharedObject {
    handle: HiddenHandle,
    refs: usize,
    /// Incarnation tag: every insertion into the cache gets a fresh value,
    /// and handles carry the value they opened against.  A stale handle
    /// (whose object was unlinked, even if an object of the same name — and
    /// therefore the same deterministic physical name — was created since)
    /// can then never read, write or un-refcount the new incarnation.
    gen: u64,
}

struct VfsCore<D: BlockDevice> {
    fs: StegFs<D>,
    /// Open hidden objects, keyed by physical name.  All VFS handles to the
    /// same object share one [`HiddenHandle`], so a rewrite through one
    /// handle (which relocates blocks through the free pool) is immediately
    /// visible — never stale — through every other.
    objects: HashMap<String, SharedObject>,
    next_gen: u64,
}

impl<D: BlockDevice> VfsCore<D> {
    /// Look up the shared object a hidden handle refers to, treating a
    /// generation mismatch exactly like a missing entry (stale handle).
    fn object(&self, physical: &str, gen: u64) -> Option<&SharedObject> {
        self.objects.get(physical).filter(|so| so.gen == gen)
    }

    fn object_mut(&mut self, physical: &str, gen: u64) -> Option<&mut SharedObject> {
        self.objects.get_mut(physical).filter(|so| so.gen == gen)
    }
}

struct SessionState {
    uak: String,
    connected: Session,
}

/// A concurrent, handle-based virtual file system over a StegFS volume.
///
/// `Vfs` puts the missing kernel half of the paper's Figure 5 in front of
/// [`StegFs`]: a unified path namespace (`/plain/...` shared by everyone,
/// `/hidden/...` per session), an open-file table with positional and
/// streaming I/O, and sign-on sessions.  The volume sits behind a
/// [`parking_lot::RwLock`] and handle bookkeeping behind a sharded table, so
/// any number of threads can interleave plain and hidden operations on one
/// shared volume — the workload of the paper's Figure 7 concurrency
/// experiment.
///
/// Deniability is preserved through the new layer: signing on never validates
/// the key (there is nothing to validate against), a wrong-key session simply
/// sees an empty `/hidden`, and every "no such object / wrong key / stale
/// handle" case reports through the same [`VfsError::is_not_found`] family.
pub struct Vfs<D: BlockDevice> {
    core: RwLock<VfsCore<D>>,
    sessions: RwLock<HashMap<u64, SessionState>>,
    table: OpenFileTable,
    next_session: AtomicU64,
}

impl<D: BlockDevice> Vfs<D> {
    // ------------------------------------------------------------------
    // Construction / teardown
    // ------------------------------------------------------------------

    /// Wrap an already mounted [`StegFs`].
    pub fn new(fs: StegFs<D>) -> Self {
        Vfs {
            core: RwLock::new(VfsCore {
                fs,
                objects: HashMap::new(),
                next_gen: 0,
            }),
            sessions: RwLock::new(HashMap::new()),
            table: OpenFileTable::new(),
            next_session: AtomicU64::new(1),
        }
    }

    /// Format `dev` as a fresh StegFS volume and serve it.
    pub fn format(dev: D, params: StegParams) -> VfsResult<Self> {
        Ok(Vfs::new(StegFs::format(dev, params)?))
    }

    /// Mount an existing StegFS volume and serve it.
    pub fn mount(dev: D, params: StegParams) -> VfsResult<Self> {
        Ok(Vfs::new(StegFs::mount(dev, params)?))
    }

    /// Tear the front-end down, recovering the [`StegFs`] underneath.
    pub fn into_stegfs(self) -> StegFs<D> {
        self.core.into_inner().fs
    }

    /// Flush everything and return the underlying device.
    pub fn unmount(self) -> StegResult<D> {
        self.into_stegfs().unmount()
    }

    /// Flush metadata to the device.
    pub fn sync(&self) -> VfsResult<()> {
        Ok(self.core.write().fs.sync()?)
    }

    /// Aggregate block accounting of the served volume.
    pub fn space_report(&self) -> VfsResult<SpaceReport> {
        Ok(self.core.write().fs.space_report()?)
    }

    /// Number of currently open handles across all sessions.
    pub fn open_handles(&self) -> usize {
        self.table.len()
    }

    // ------------------------------------------------------------------
    // Sessions
    // ------------------------------------------------------------------

    /// Sign a user on with a User Access Key and get a session.
    ///
    /// Deliberately infallible: there is no key registry to check against —
    /// that absence is the hiding property.  A key that matches nothing
    /// yields a session whose `/hidden` is empty, indistinguishable from a
    /// correct key with no hidden objects.
    pub fn signon(&self, uak: &str) -> SessionId {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions.write().insert(
            id,
            SessionState {
                uak: uak.to_string(),
                connected: Session::new(),
            },
        );
        SessionId(id)
    }

    /// Sign a session off: every handle it still holds is closed and its
    /// connected-object table is dropped (the paper disconnects all objects
    /// at logoff).
    pub fn signoff(&self, session: SessionId) -> VfsResult<()> {
        self.sessions
            .write()
            .remove(&session.0)
            .ok_or(VfsError::BadSession(session.0))?;
        let swept = self.table.remove_session(session.0);
        let mut core = self.core.write();
        for file in swept {
            if let Target::Hidden { physical, gen } = file.target {
                release_object(&mut core, &physical, gen);
            }
        }
        Ok(())
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// `steg_connect` through the VFS: resolve `name` under the session's key
    /// and cache it (and, for a directory, its offspring) in the session, so
    /// subsequent opens skip the UAK-directory walk and the objects appear in
    /// the session's `/hidden` listing.
    pub fn connect(&self, session: SessionId, name: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        let mut core = self.core.write();
        let entry = core.fs.lookup_entry(name, &uak)?;
        let mut gathered = Vec::new();
        collect_offspring(&mut core.fs, &entry, &mut gathered)?;
        drop(core);
        let mut sessions = self.sessions.write();
        let state = sessions
            .get_mut(&session.0)
            .ok_or(VfsError::BadSession(session.0))?;
        for e in &gathered {
            state.connected.connect(ConnectedObject::from(e));
        }
        Ok(())
    }

    /// Remove `name` from the session's connected set.  Returns true if it
    /// was connected.
    pub fn disconnect(&self, session: SessionId, name: &str) -> VfsResult<bool> {
        let mut sessions = self.sessions.write();
        let state = sessions
            .get_mut(&session.0)
            .ok_or(VfsError::BadSession(session.0))?;
        Ok(state.connected.disconnect(name))
    }

    /// Names of the session's connected objects.
    pub fn connected_objects(&self, session: SessionId) -> VfsResult<Vec<String>> {
        let sessions = self.sessions.read();
        let state = sessions
            .get(&session.0)
            .ok_or(VfsError::BadSession(session.0))?;
        Ok(state.connected.connected_names())
    }

    fn session_uak(&self, session: SessionId) -> VfsResult<String> {
        self.sessions
            .read()
            .get(&session.0)
            .map(|s| s.uak.clone())
            .ok_or(VfsError::BadSession(session.0))
    }

    fn cached_entry(&self, session: SessionId, name: &str) -> Option<DirectoryEntry> {
        let sessions = self.sessions.read();
        let obj = sessions.get(&session.0)?.connected.get(name)?;
        Some(DirectoryEntry {
            name: obj.name.clone(),
            physical_name: obj.physical_name.clone(),
            fak: obj.fak,
            kind: obj.kind,
        })
    }

    fn cache_entry(&self, session: SessionId, entry: &DirectoryEntry) {
        if let Some(state) = self.sessions.write().get_mut(&session.0) {
            state.connected.connect(ConnectedObject::from(entry));
        }
    }

    /// Resolve a hidden component chain and run `f` on the result.
    ///
    /// The session's connected cache is a *hint*, never truth: another
    /// session holding the same key may have unlinked or renamed the object
    /// since it was cached.  So when a cache-assisted resolution (or `f`
    /// itself, e.g. the object open) reports not-found, the cached entry is
    /// dropped and the walk retried from disk before the error is believed.
    fn with_hidden_entry<R>(
        &self,
        session: SessionId,
        uak: &str,
        comps: &[String],
        mut f: impl FnMut(&mut VfsCore<D>, &DirectoryEntry) -> VfsResult<R>,
    ) -> VfsResult<R> {
        let mut cached = self.cached_entry(session, &comps[0]);
        loop {
            let used_cache = cached.is_some();
            let mut core = self.core.write();
            let result = resolve_hidden(&mut core, uak, comps, cached.take())
                .and_then(|entry| f(&mut core, &entry));
            match result {
                Err(e) if e.is_not_found() && used_cache => {
                    drop(core);
                    let _ = self.disconnect(session, &comps[0]);
                    // `cached` is now None: the next pass walks from disk.
                }
                other => return other,
            }
        }
    }

    // ------------------------------------------------------------------
    // Namespace operations
    // ------------------------------------------------------------------

    /// Stat a path in the unified namespace.
    pub fn stat(&self, session: SessionId, path: &str) -> VfsResult<VfsStat> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Ok(VfsStat {
                kind: NodeKind::Directory,
                size: 0,
            }),
            VfsPath::Plain(p) => {
                let mut core = self.core.write();
                let (kind, size) = core.fs.plain_fs_mut().stat(&p)?;
                Ok(VfsStat {
                    kind: plain_kind(kind, &p)?,
                    size,
                })
            }
            VfsPath::Hidden(comps) => {
                self.with_hidden_entry(session, &uak, &comps, |core, entry| match entry.kind {
                    ObjectKind::Directory => Ok(VfsStat {
                        kind: NodeKind::Directory,
                        size: 0,
                    }),
                    ObjectKind::File => {
                        let size = match core.objects.get(&entry.physical_name) {
                            Some(so) => so.handle.size(),
                            None => core.fs.open_hidden_entry(entry)?.size(),
                        };
                        Ok(VfsStat {
                            kind: NodeKind::File,
                            size,
                        })
                    }
                })
            }
        }
    }

    /// List a directory in the unified namespace.
    ///
    /// `/` always shows exactly `plain` and `hidden`; what `/hidden` shows
    /// depends entirely on the session's key (its UAK directory plus any
    /// connected objects), so two sessions see two different trees over the
    /// same volume.
    pub fn readdir(&self, session: SessionId, path: &str) -> VfsResult<Vec<VfsDirEntry>> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root => Ok(vec![
                VfsDirEntry {
                    name: "plain".into(),
                    kind: NodeKind::Directory,
                },
                VfsDirEntry {
                    name: "hidden".into(),
                    kind: NodeKind::Directory,
                },
            ]),
            VfsPath::Plain(p) => {
                let mut core = self.core.write();
                let entries = core.fs.plain_fs_mut().list_dir(&p)?;
                Ok(entries
                    .into_iter()
                    .map(|e| VfsDirEntry {
                        name: e.name,
                        kind: match e.kind {
                            FileKind::Directory => NodeKind::Directory,
                            _ => NodeKind::File,
                        },
                    })
                    .collect())
            }
            VfsPath::HiddenRoot => {
                let mut core = self.core.write();
                let mut out: Vec<VfsDirEntry> = core
                    .fs
                    .list_hidden(&uak)?
                    .into_iter()
                    .map(|(name, kind)| VfsDirEntry {
                        name,
                        kind: object_kind(kind),
                    })
                    .collect();
                drop(core);
                // Connected objects (e.g. offspring of a connected directory,
                // or shared entries) are part of the session's view too.
                let sessions = self.sessions.read();
                if let Some(state) = sessions.get(&session.0) {
                    for name in state.connected.connected_names() {
                        if !out.iter().any(|e| e.name == name) {
                            if let Some(obj) = state.connected.get(&name) {
                                out.push(VfsDirEntry {
                                    name,
                                    kind: object_kind(obj.kind),
                                });
                            }
                        }
                    }
                }
                out.sort_by(|a, b| a.name.cmp(&b.name));
                Ok(out)
            }
            VfsPath::Hidden(comps) => {
                self.with_hidden_entry(session, &uak, &comps, |core, entry| {
                    if entry.kind != ObjectKind::Directory {
                        return Err(VfsError::NotADirectory(path.to_string()));
                    }
                    let children = read_hidden_directory(&mut core.fs, entry)?;
                    Ok(children
                        .entries
                        .iter()
                        .map(|e| VfsDirEntry {
                            name: e.name.clone(),
                            kind: object_kind(e.kind),
                        })
                        .collect())
                })
            }
        }
    }

    /// Create a directory.
    ///
    /// In the hidden namespace this supports the depths the core API can
    /// express: a top-level hidden directory, or a child of one.
    pub fn mkdir(&self, session: SessionId, path: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Err(VfsError::from(
                stegfs_core::StegError::AlreadyExists(path.to_string()),
            )),
            VfsPath::Plain(p) => {
                let mut core = self.core.write();
                core.fs.create_plain_dir(&p)?;
                Ok(())
            }
            VfsPath::Hidden(comps) => {
                let mut core = self.core.write();
                match comps.as_slice() {
                    [name] => core.fs.steg_create(name, &uak, ObjectKind::Directory)?,
                    [parent, child] => {
                        core.fs
                            .create_in_hidden_dir(parent, child, &uak, ObjectKind::Directory)?
                    }
                    _ => {
                        return Err(VfsError::Unsupported(format!(
                            "hidden directories nest at most two levels deep: {path}"
                        )))
                    }
                }
                Ok(())
            }
        }
    }

    /// Remove a file or empty directory.
    pub fn unlink(&self, session: SessionId, path: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Err(VfsError::InvalidPath(path.to_string())),
            VfsPath::Plain(p) => {
                let mut core = self.core.write();
                core.fs.delete_plain(&p)?;
                Ok(())
            }
            VfsPath::Hidden(comps) => {
                let [name] = comps.as_slice() else {
                    return Err(VfsError::Unsupported(format!(
                        "unlink inside a hidden directory is not yet supported: {path}"
                    )));
                };
                let mut core = self.core.write();
                let entry = core.fs.delete_hidden(name, &uak)?;
                // Outstanding handles to the object go stale: dropping the
                // shared object makes every later access report the same
                // not-found family an adversary already sees.
                core.objects.remove(&entry.physical_name);
                drop(core);
                if let Some(state) = self.sessions.write().get_mut(&session.0) {
                    state.connected.disconnect(name);
                }
                Ok(())
            }
        }
    }

    /// Rename within a namespace (`/plain` to `/plain`, or a top-level
    /// `/hidden` name to another).  Crossing the boundary is refused — that
    /// conversion is the explicit, deliberate `steg_hide` / `steg_unhide`.
    pub fn rename(&self, session: SessionId, from: &str, to: &str) -> VfsResult<()> {
        let uak = self.session_uak(session)?;
        match (VfsPath::parse(from)?, VfsPath::parse(to)?) {
            (VfsPath::Plain(a), VfsPath::Plain(b)) => {
                let mut core = self.core.write();
                core.fs.plain_fs_mut().rename(&a, &b)?;
                Ok(())
            }
            (VfsPath::Hidden(a), VfsPath::Hidden(b)) => {
                let ([old], [new]) = (a.as_slice(), b.as_slice()) else {
                    return Err(VfsError::Unsupported(format!(
                        "rename inside hidden directories is not yet supported: {from} -> {to}"
                    )));
                };
                let mut core = self.core.write();
                core.fs.rename_hidden(old, new, &uak)?;
                drop(core);
                if let Some(state) = self.sessions.write().get_mut(&session.0) {
                    state.connected.disconnect(old);
                }
                Ok(())
            }
            (VfsPath::Plain(_), VfsPath::Hidden(_)) | (VfsPath::Hidden(_), VfsPath::Plain(_)) => {
                Err(VfsError::CrossNamespace {
                    from: from.to_string(),
                    to: to.to_string(),
                })
            }
            _ => Err(VfsError::InvalidPath(format!("{from} -> {to}"))),
        }
    }

    // ------------------------------------------------------------------
    // Handle operations
    // ------------------------------------------------------------------

    /// Open a file and get a handle.
    pub fn open(&self, session: SessionId, path: &str, opts: OpenOptions) -> VfsResult<VfsHandle> {
        if !opts.read && !opts.write {
            return Err(VfsError::Unsupported(
                "open requires read or write access".into(),
            ));
        }
        if (opts.create || opts.truncate || opts.append) && !opts.write {
            return Err(VfsError::NotWritable);
        }
        let uak = self.session_uak(session)?;
        match VfsPath::parse(path)? {
            VfsPath::Root | VfsPath::HiddenRoot => Err(VfsError::IsDirectory(path.to_string())),
            VfsPath::Plain(p) if p == "/" => Err(VfsError::IsDirectory(path.to_string())),
            VfsPath::Plain(p) => {
                let mut core = self.core.write();
                match core.fs.plain_fs_mut().stat(&p) {
                    Ok((FileKind::Directory, _)) => {
                        return Err(VfsError::IsDirectory(path.to_string()))
                    }
                    Ok(_) => {
                        if opts.truncate {
                            core.fs.write_plain(&p, &[])?;
                        }
                    }
                    Err(e) if e.is_not_found() && opts.create => {
                        core.fs.write_plain(&p, &[])?;
                    }
                    Err(e) => return Err(e.into()),
                }
                // Pin the inode, not the path: the handle must keep following
                // this file across renames and go stale on delete, never
                // silently retarget to whatever later occupies the path.
                let inode = core.fs.plain_fs_mut().resolve_file(&p)?;
                let offset = if opts.append {
                    core.fs.plain_fs_mut().inode_file_size(inode)?
                } else {
                    0
                };
                drop(core);
                self.finish_open(
                    session,
                    OpenFile {
                        session: session.0,
                        target: Target::Plain { inode },
                        offset,
                        read: opts.read,
                        write: opts.write,
                        append: opts.append,
                    },
                )
            }
            VfsPath::Hidden(comps) => {
                // Resolve and pin the shared object; returns everything the
                // open-file entry needs.  Runs under `with_hidden_entry`, so
                // a stale session cache falls back to a from-disk walk.
                let mut ensure = |core: &mut VfsCore<D>,
                                  entry: &DirectoryEntry|
                 -> VfsResult<(String, u64, u64, DirectoryEntry)> {
                    if entry.kind != ObjectKind::File {
                        return Err(VfsError::IsDirectory(path.to_string()));
                    }
                    let physical = entry.physical_name.clone();
                    core.next_gen += 1;
                    let fresh_gen = core.next_gen;
                    let VfsCore { fs, objects, .. } = &mut *core;
                    if !objects.contains_key(&physical) {
                        let handle = fs.open_hidden_entry(entry)?;
                        objects.insert(
                            physical.clone(),
                            SharedObject {
                                handle,
                                refs: 0,
                                gen: fresh_gen,
                            },
                        );
                    }
                    if opts.truncate {
                        let so = objects.get_mut(&physical).expect("just ensured");
                        let result = fs.truncate_handle(&mut so.handle, 0);
                        if result.is_err() && so.refs == 0 {
                            objects.remove(&physical);
                        }
                        result?;
                    }
                    let so = objects.get_mut(&physical).expect("just ensured");
                    so.refs += 1;
                    let offset = if opts.append { so.handle.size() } else { 0 };
                    Ok((physical, so.gen, offset, entry.clone()))
                };

                let resolved = match self.with_hidden_entry(session, &uak, &comps, &mut ensure) {
                    Ok(v) => Ok(v),
                    Err(e) if e.is_not_found() && opts.create => {
                        {
                            let mut core = self.core.write();
                            let created = match comps.as_slice() {
                                [name] => core.fs.steg_create(name, &uak, ObjectKind::File),
                                [parent, child] => core.fs.create_in_hidden_dir(
                                    parent,
                                    child,
                                    &uak,
                                    ObjectKind::File,
                                ),
                                _ => return Err(e),
                            };
                            match created {
                                Ok(()) => {}
                                // Raced another creator: the object exists
                                // now, which is all we wanted.
                                Err(stegfs_core::StegError::AlreadyExists(_)) => {}
                                Err(err) => return Err(err.into()),
                            }
                        }
                        self.with_hidden_entry(session, &uak, &comps, &mut ensure)
                    }
                    Err(e) => Err(e),
                };
                let (physical, gen, offset, entry) = resolved?;

                // Cache the resolution in the session (the `steg_connect`
                // fast path for the next open).
                if comps.len() == 1 {
                    self.cache_entry(session, &entry);
                }
                self.finish_open(
                    session,
                    OpenFile {
                        session: session.0,
                        target: Target::Hidden { physical, gen },
                        offset,
                        read: opts.read,
                        write: opts.write,
                        append: opts.append,
                    },
                )
            }
        }
    }

    /// Insert the open file and re-validate the session.  A signoff racing
    /// the open may have swept the table *before* our insert landed; its
    /// handle would then leak (and pin a shared object's refcount) forever.
    /// Re-checking after the insert closes the window: whichever side runs
    /// last cleans up.
    fn finish_open(&self, session: SessionId, file: OpenFile) -> VfsResult<VfsHandle> {
        let handle = self.table.insert(file);
        if !self.sessions.read().contains_key(&session.0) {
            let _ = self.close(handle);
            return Err(VfsError::BadSession(session.0));
        }
        Ok(handle)
    }

    /// Close a handle.  Idempotence is not offered: closing twice reports the
    /// same stale-handle error as any other use-after-close.
    pub fn close(&self, handle: VfsHandle) -> VfsResult<()> {
        let file = self.table.remove(handle)?;
        if let Target::Hidden { physical, gen } = file.target {
            release_object(&mut self.core.write(), &physical, gen);
        }
        Ok(())
    }

    /// Positional read: `len` bytes at `offset`, without touching the
    /// handle's stream position.  Reads past end-of-file return the available
    /// prefix (possibly empty).
    pub fn read_at(&self, handle: VfsHandle, offset: u64, len: usize) -> VfsResult<Vec<u8>> {
        let file = self.table.get(handle)?;
        if !file.read {
            return Err(VfsError::NotReadable);
        }
        let mut core = self.core.write();
        do_read(&mut core, handle, &file.target, offset, len)
    }

    /// Positional write at `offset`, extending the file as needed, without
    /// touching the handle's stream position.
    pub fn write_at(&self, handle: VfsHandle, offset: u64, data: &[u8]) -> VfsResult<()> {
        let file = self.table.get(handle)?;
        if !file.write {
            return Err(VfsError::NotWritable);
        }
        let mut core = self.core.write();
        do_write(&mut core, handle, &file.target, offset, data)
    }

    /// Streaming read from the handle's current offset, advancing it.
    /// Atomic per handle: two threads streaming on one handle each consume a
    /// distinct range, as with a shared POSIX file description.
    pub fn read(&self, handle: VfsHandle, len: usize) -> VfsResult<Vec<u8>> {
        self.table.with_file_mut(handle, |file| {
            if !file.read {
                return Err(VfsError::NotReadable);
            }
            let mut core = self.core.write();
            let out = do_read(&mut core, handle, &file.target, file.offset, len)?;
            drop(core);
            file.offset += out.len() as u64;
            Ok(out)
        })
    }

    /// Streaming write at the handle's current offset (or at end-of-file for
    /// append handles), advancing it.  Atomic per handle, like [`Self::read`].
    pub fn write(&self, handle: VfsHandle, data: &[u8]) -> VfsResult<()> {
        self.table.with_file_mut(handle, |file| {
            if !file.write {
                return Err(VfsError::NotWritable);
            }
            let mut core = self.core.write();
            let offset = if file.append {
                target_size(&mut core, handle, &file.target)?
            } else {
                file.offset
            };
            do_write(&mut core, handle, &file.target, offset, data)?;
            drop(core);
            file.offset = offset + data.len() as u64;
            Ok(())
        })
    }

    /// Reposition the handle's stream offset; returns the new offset.
    /// Seeking past end-of-file is allowed (a later write zero-fills the
    /// gap, as on POSIX).
    pub fn seek(&self, handle: VfsHandle, pos: SeekFrom) -> VfsResult<u64> {
        self.table.with_file_mut(handle, |file| {
            let base: i128 = match pos {
                SeekFrom::Start(_) => 0,
                SeekFrom::Current(_) => file.offset as i128,
                SeekFrom::End(_) => {
                    let mut core = self.core.write();
                    target_size(&mut core, handle, &file.target)? as i128
                }
            };
            let delta: i128 = match pos {
                SeekFrom::Start(n) => n as i128,
                SeekFrom::Current(n) | SeekFrom::End(n) => n as i128,
            };
            let target = base + delta;
            if !(0..=u64::MAX as i128).contains(&target) {
                return Err(VfsError::Unsupported(format!(
                    "seek to negative or overflowing offset {target}"
                )));
            }
            file.offset = target as u64;
            Ok(target as u64)
        })
    }

    /// Set the file's length, truncating or zero-extending.
    pub fn truncate(&self, handle: VfsHandle, new_len: u64) -> VfsResult<()> {
        let file = self.table.get(handle)?;
        if !file.write {
            return Err(VfsError::NotWritable);
        }
        let mut core = self.core.write();
        match &file.target {
            Target::Plain { inode } => plain_rewrite(&mut core.fs, *inode, new_len, None),
            Target::Hidden { physical, gen } => {
                let VfsCore { fs, objects, .. } = &mut *core;
                let so = objects
                    .get_mut(physical)
                    .filter(|so| so.gen == *gen)
                    .ok_or(VfsError::BadHandle(handle.0))?;
                Ok(fs.truncate_handle(&mut so.handle, new_len)?)
            }
        }
    }

    /// Current size of the file behind `handle`.
    pub fn handle_size(&self, handle: VfsHandle) -> VfsResult<u64> {
        let file = self.table.get(handle)?;
        let mut core = self.core.write();
        target_size(&mut core, handle, &file.target)
    }
}

// ----------------------------------------------------------------------
// Internal I/O plumbing (free functions so streaming ops can run inside a
// `with_file_mut` closure without re-borrowing the `Vfs`)
// ----------------------------------------------------------------------

fn do_read<D: BlockDevice>(
    core: &mut VfsCore<D>,
    handle: VfsHandle,
    target: &Target,
    offset: u64,
    len: usize,
) -> VfsResult<Vec<u8>> {
    match target {
        Target::Plain { inode } => Ok(core
            .fs
            .plain_fs_mut()
            .read_inode_range(*inode, offset, len)?),
        Target::Hidden { physical, gen } => {
            if core.object(physical, *gen).is_none() {
                return Err(VfsError::BadHandle(handle.0));
            }
            let VfsCore { fs, objects, .. } = &mut *core;
            let so = objects.get(physical).expect("checked above");
            Ok(fs.read_range_at(&so.handle, offset, len)?)
        }
    }
}

fn do_write<D: BlockDevice>(
    core: &mut VfsCore<D>,
    handle: VfsHandle,
    target: &Target,
    offset: u64,
    data: &[u8],
) -> VfsResult<()> {
    match target {
        Target::Plain { inode } => {
            if data.is_empty() {
                return Ok(());
            }
            let size = core.fs.plain_fs_mut().inode_file_size(*inode)?;
            let end = offset
                .checked_add(data.len() as u64)
                .ok_or(stegfs_core::StegError::NoSpace)?;
            if end <= size {
                // In place: no reallocation, no rewrite.
                core.fs
                    .plain_fs_mut()
                    .write_inode_range(*inode, offset, data)?;
                Ok(())
            } else {
                plain_rewrite(&mut core.fs, *inode, end, Some((offset, data)))
            }
        }
        Target::Hidden { physical, gen } => {
            if core.object(physical, *gen).is_none() {
                return Err(VfsError::BadHandle(handle.0));
            }
            let VfsCore { fs, objects, .. } = &mut *core;
            let so = objects.get_mut(physical).expect("checked above");
            Ok(fs.write_at_handle(&mut so.handle, offset, data)?)
        }
    }
}

fn target_size<D: BlockDevice>(
    core: &mut VfsCore<D>,
    handle: VfsHandle,
    target: &Target,
) -> VfsResult<u64> {
    match target {
        Target::Plain { inode } => Ok(core.fs.plain_fs_mut().inode_file_size(*inode)?),
        Target::Hidden { physical, gen } => Ok(core
            .object(physical, *gen)
            .ok_or(VfsError::BadHandle(handle.0))?
            .handle
            .size()),
    }
}

/// The one read-resize-splice-rewrite implementation for plain files, shared
/// by extending writes and truncate.  Refuses lengths beyond the volume's
/// capacity *before* materialising anything, so a seek to 1 TB followed by a
/// 1-byte write reports `NoSpace` instead of attempting a 1 TB allocation.
fn plain_rewrite<D: BlockDevice>(
    fs: &mut StegFs<D>,
    inode: stegfs_fs::InodeId,
    new_len: u64,
    patch: Option<(u64, &[u8])>,
) -> VfsResult<()> {
    let sb = fs.plain_fs_mut().superblock();
    let capacity = sb.total_blocks * sb.block_size as u64;
    if new_len > capacity {
        return Err(stegfs_core::StegError::NoSpace.into());
    }
    let size = fs.plain_fs_mut().inode_file_size(inode)?;
    let mut contents = fs
        .plain_fs_mut()
        .read_inode_range(inode, 0, size as usize)?;
    contents.resize(new_len as usize, 0);
    if let Some((offset, data)) = patch {
        contents[offset as usize..offset as usize + data.len()].copy_from_slice(data);
    }
    fs.plain_fs_mut().write_inode_file(inode, &contents)?;
    Ok(())
}

fn plain_kind(kind: FileKind, path: &str) -> VfsResult<NodeKind> {
    match kind {
        FileKind::Directory => Ok(NodeKind::Directory),
        FileKind::File => Ok(NodeKind::File),
        _ => Err(VfsError::InvalidPath(path.to_string())),
    }
}

fn object_kind(kind: ObjectKind) -> NodeKind {
    match kind {
        ObjectKind::Directory => NodeKind::Directory,
        ObjectKind::File => NodeKind::File,
    }
}

/// Drop one reference to a shared hidden object, evicting it when the last
/// handle goes away.  The generation check makes this a no-op for stale
/// handles whose object was unlinked (and possibly recreated under the same
/// name) after they opened it.
fn release_object<D: BlockDevice>(core: &mut VfsCore<D>, physical: &str, gen: u64) {
    if let Some(so) = core.object_mut(physical, gen) {
        so.refs -= 1;
        if so.refs == 0 {
            core.objects.remove(physical);
        }
    }
}

/// Read the child listing of a hidden directory entry.
fn read_hidden_directory<D: BlockDevice>(
    fs: &mut StegFs<D>,
    entry: &DirectoryEntry,
) -> VfsResult<UakDirectory> {
    let handle = fs.open_hidden_entry(entry)?;
    let size = handle.size();
    let raw = fs.read_range_at(&handle, 0, size as usize)?;
    if raw.is_empty() {
        Ok(UakDirectory::new())
    } else {
        Ok(UakDirectory::deserialize(&raw)?)
    }
}

/// Resolve a `/hidden` component chain to its final directory entry.
///
/// The first component resolves through the session cache (if `cached`) or
/// the UAK directory; every further component resolves through the listing of
/// the hidden directory above it — each listing carries full `(physical name,
/// FAK)` entries, so offspring need no extra key material, exactly as in the
/// paper's `steg_connect`.
fn resolve_hidden<D: BlockDevice>(
    core: &mut VfsCore<D>,
    uak: &str,
    comps: &[String],
    cached: Option<DirectoryEntry>,
) -> VfsResult<DirectoryEntry> {
    let mut entry = match cached {
        Some(e) => e,
        None => core.fs.lookup_entry(&comps[0], uak)?,
    };
    for comp in &comps[1..] {
        if entry.kind != ObjectKind::Directory {
            return Err(VfsError::NotADirectory(comps.join("/")));
        }
        let children = read_hidden_directory(&mut core.fs, &entry)?;
        entry = children
            .find(comp)
            .cloned()
            .ok_or_else(|| stegfs_core::StegError::NotFound(comp.clone()))?;
    }
    Ok(entry)
}

/// Collect `entry` and, recursively, the offspring of hidden directories —
/// the connect set of the paper's `steg_connect`.
fn collect_offspring<D: BlockDevice>(
    fs: &mut StegFs<D>,
    entry: &DirectoryEntry,
    out: &mut Vec<DirectoryEntry>,
) -> VfsResult<()> {
    out.push(entry.clone());
    if entry.kind == ObjectKind::Directory {
        let children = read_hidden_directory(fs, entry)?;
        for child in &children.entries {
            collect_offspring(fs, child, out)?;
        }
    }
    Ok(())
}
