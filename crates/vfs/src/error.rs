//! Error type for the VFS front-end.

use stegfs_core::StegError;
use stegfs_fs::FsError;

/// Result alias for VFS operations.
pub type VfsResult<T> = Result<T, VfsError>;

/// Errors reported by [`crate::Vfs`].
#[derive(Debug)]
pub enum VfsError {
    /// The handle is not in the open-file table (never opened, already
    /// closed, or its object was unlinked underneath it).
    BadHandle(u64),
    /// The session id is not signed on.
    BadSession(u64),
    /// The handle was opened without read access.
    NotReadable,
    /// The handle was opened without write access.
    NotWritable,
    /// The path does not parse (missing `/plain` / `/hidden` prefix, empty
    /// component, embedded NUL).
    InvalidPath(String),
    /// Rename across the plain/hidden boundary: moving data between the two
    /// worlds changes its visibility and must be an explicit
    /// `steg_hide`/`steg_unhide`, never an implicit side effect of `rename`.
    CrossNamespace {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// A directory was used where a file is required.
    IsDirectory(String),
    /// A file was used where a directory is required.
    NotADirectory(String),
    /// The operation is structurally valid but not supported at this depth of
    /// the hidden namespace (e.g. unlinking a child inside a hidden
    /// directory).
    Unsupported(String),
    /// Error from the StegFS layer (which includes, via [`StegError::Fs`],
    /// errors from the plain file system and the block device).
    Steg(StegError),
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::BadHandle(h) => write!(f, "bad or stale file handle: {h}"),
            VfsError::BadSession(s) => write!(f, "no such session: {s}"),
            VfsError::NotReadable => write!(f, "handle was not opened for reading"),
            VfsError::NotWritable => write!(f, "handle was not opened for writing"),
            VfsError::InvalidPath(p) => write!(f, "invalid VFS path: {p}"),
            VfsError::CrossNamespace { from, to } => {
                write!(f, "cannot rename across namespaces: {from} -> {to}")
            }
            VfsError::IsDirectory(p) => write!(f, "is a directory: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            VfsError::Steg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VfsError::Steg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StegError> for VfsError {
    fn from(e: StegError) -> Self {
        VfsError::Steg(e)
    }
}

impl From<FsError> for VfsError {
    fn from(e: FsError) -> Self {
        VfsError::Steg(StegError::from(e))
    }
}

impl VfsError {
    /// True for the deniable "not found / wrong key / stale handle" family —
    /// the cases an adversary must not be able to tell apart.
    pub fn is_not_found(&self) -> bool {
        match self {
            VfsError::BadHandle(_) => true,
            VfsError::Steg(StegError::NotFound(_)) => true,
            VfsError::Steg(StegError::Fs(e)) => e.is_not_found(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_found_family() {
        assert!(VfsError::BadHandle(7).is_not_found());
        assert!(VfsError::from(StegError::NotFound("x".into())).is_not_found());
        assert!(VfsError::from(FsError::NotFound("/x".into())).is_not_found());
        assert!(!VfsError::NotReadable.is_not_found());
        assert!(!VfsError::from(StegError::NoSpace).is_not_found());
    }

    #[test]
    fn display_is_informative() {
        assert!(VfsError::BadSession(3).to_string().contains("session"));
        assert!(VfsError::CrossNamespace {
            from: "/plain/a".into(),
            to: "/hidden/b".into()
        }
        .to_string()
        .contains("namespaces"));
    }
}
