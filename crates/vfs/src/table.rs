//! The sharded open-file table.
//!
//! Handle bookkeeping (access modes, targets, the stream offset's home) is
//! hot and tiny, so it gets its own concurrency domain: handles are
//! distributed over `SHARD_COUNT` independently locked maps, and a shard
//! lock is **never** held across a file-system operation.  The stream offset
//! lives behind its own *per-handle* mutex (`OpenFile::offset`): streaming
//! reads and writes consume the shared offset atomically by holding that
//! one-handle lock across their I/O, so a slow streaming handle parks only
//! itself — it no longer stalls the 1-of-16 table shard it happens to hash
//! to.  The kernel analogue is the system open-file table in front of the
//! driver of Figure 5, with the offset in the file description.
//!
//! Each open file carries an `Arc` of its [`crate::vfs`] object entry, so
//! positional I/O resolves straight from handle to per-object lock without
//! ever touching the global object registry.

use crate::error::{VfsError, VfsResult};
use crate::vfs::ObjectEntry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked table shards (a power of two).
pub const SHARD_COUNT: usize = 16;

/// An open file handle, as handed to callers.  Plain `Copy` data — cheap to
/// pass between threads; all state lives in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VfsHandle(pub(crate) u64);

impl VfsHandle {
    /// The raw handle number (stable for the lifetime of the open file).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// The state behind a handle's per-handle offset lock: the stream offset
/// itself plus where the previous *streaming read* ended, which is what
/// detects a sequential scan (and arms readahead) without any extra lock.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StreamPos {
    /// Current stream offset.
    pub pos: u64,
    /// End offset of the handle's previous streaming read; `u64::MAX`
    /// before the first read and after any write (a fresh scan must prove
    /// itself sequential again before readahead arms).
    pub last_read_end: u64,
}

impl StreamPos {
    /// A fresh position (no streaming history).
    pub fn new(pos: u64) -> Self {
        StreamPos {
            pos,
            last_read_end: u64::MAX,
        }
    }
}

/// Per-handle state.
#[derive(Clone)]
pub(crate) struct OpenFile {
    pub session: u64,
    /// The shared object this handle refers to.  All handles on one object
    /// hold the same entry, whose internal lock serialises their I/O; a
    /// handle whose entry has been marked dead (unlink) is stale.
    pub object: Arc<ObjectEntry>,
    /// The stream position, behind its own per-handle lock.  Streaming ops
    /// hold this lock across their object I/O (that is what makes a shared
    /// POSIX-style offset consume atomically); positional ops never touch
    /// it.  Lock order: offset lock < object lock — never the reverse.
    pub offset: Arc<Mutex<StreamPos>>,
    pub read: bool,
    pub write: bool,
    pub append: bool,
}

/// Options controlling [`crate::Vfs::open`], mirroring `std::fs::OpenOptions`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenOptions {
    pub(crate) read: bool,
    pub(crate) write: bool,
    pub(crate) create: bool,
    pub(crate) truncate: bool,
    pub(crate) append: bool,
}

impl OpenOptions {
    /// Start from all-off options.
    pub fn new() -> Self {
        OpenOptions::default()
    }

    /// Read-only preset.
    pub fn read_only() -> Self {
        OpenOptions::new().read(true)
    }

    /// Read+write+create preset, the common writable open.
    pub fn read_write() -> Self {
        OpenOptions::new().read(true).write(true).create(true)
    }

    /// Allow reads through the handle.
    pub fn read(mut self, yes: bool) -> Self {
        self.read = yes;
        self
    }

    /// Allow writes through the handle.
    pub fn write(mut self, yes: bool) -> Self {
        self.write = yes;
        self
    }

    /// Create the file if it does not exist (requires `write`).
    pub fn create(mut self, yes: bool) -> Self {
        self.create = yes;
        self
    }

    /// Truncate the file to zero length on open (requires `write`).
    pub fn truncate(mut self, yes: bool) -> Self {
        self.truncate = yes;
        self
    }

    /// Position every streaming write at the end of file.
    pub fn append(mut self, yes: bool) -> Self {
        self.append = yes;
        self
    }
}

/// The sharded table itself.
pub(crate) struct OpenFileTable {
    shards: Vec<Mutex<HashMap<u64, OpenFile>>>,
    next: AtomicU64,
}

impl OpenFileTable {
    pub fn new() -> Self {
        OpenFileTable {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next: AtomicU64::new(1),
        }
    }

    fn shard(&self, handle: u64) -> &Mutex<HashMap<u64, OpenFile>> {
        &self.shards[(handle as usize) & (SHARD_COUNT - 1)]
    }

    /// Insert a new open file, returning its handle.
    pub fn insert(&self, file: OpenFile) -> VfsHandle {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.shard(id).lock().insert(id, file);
        VfsHandle(id)
    }

    /// Snapshot the state of `handle`.
    pub fn get(&self, handle: VfsHandle) -> VfsResult<OpenFile> {
        self.shard(handle.0)
            .lock()
            .get(&handle.0)
            .cloned()
            .ok_or(VfsError::BadHandle(handle.0))
    }

    /// Remove `handle`, returning its state.
    pub fn remove(&self, handle: VfsHandle) -> VfsResult<OpenFile> {
        self.shard(handle.0)
            .lock()
            .remove(&handle.0)
            .ok_or(VfsError::BadHandle(handle.0))
    }

    /// Remove every handle belonging to `session`, returning their states.
    pub fn remove_session(&self, session: u64) -> Vec<OpenFile> {
        let mut removed = Vec::new();
        for shard in &self.shards {
            let mut map = shard.lock();
            let ids: Vec<u64> = map
                .iter()
                .filter(|(_, f)| f.session == session)
                .map(|(&id, _)| id)
                .collect();
            for id in ids {
                if let Some(f) = map.remove(&id) {
                    removed.push(f);
                }
            }
        }
        removed
    }

    /// Number of currently open handles (all sessions).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(session: u64) -> OpenFile {
        OpenFile {
            session,
            object: Arc::new(ObjectEntry::test_plain(7)),
            offset: Arc::new(Mutex::new(StreamPos::new(0))),
            read: true,
            write: false,
            append: false,
        }
    }

    #[test]
    fn insert_get_remove() {
        let t = OpenFileTable::new();
        let h = t.insert(file(1));
        assert_eq!(t.get(h).unwrap().session, 1);
        // The offset cell is shared between snapshots of the same handle.
        t.get(h).unwrap().offset.lock().pos = 42;
        assert_eq!(t.get(h).unwrap().offset.lock().pos, 42);
        assert_eq!(t.len(), 1);
        t.remove(h).unwrap();
        assert!(matches!(t.get(h), Err(VfsError::BadHandle(_))));
        assert!(matches!(t.remove(h), Err(VfsError::BadHandle(_))));
    }

    #[test]
    fn handles_are_unique_across_shards() {
        let t = OpenFileTable::new();
        let handles: Vec<VfsHandle> = (0..100).map(|i| t.insert(file(i % 3))).collect();
        let mut raw: Vec<u64> = handles.iter().map(|h| h.raw()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 100);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn remove_session_sweeps_only_that_session() {
        let t = OpenFileTable::new();
        for i in 0..30 {
            t.insert(file(i % 2));
        }
        let removed = t.remove_session(0);
        assert_eq!(removed.len(), 15);
        assert_eq!(t.len(), 15);
        assert!(t.remove_session(0).is_empty());
    }

    #[test]
    fn open_options_builder() {
        let o = OpenOptions::read_write().append(true);
        assert!(o.read && o.write && o.create && o.append && !o.truncate);
        let o = OpenOptions::read_only();
        assert!(o.read && !o.write && !o.create);
    }
}
