//! The multi-user access driver.
//!
//! Reproduces the measurement procedure of §5.3/§5.4: a set of files is
//! loaded onto the volume, the clock is reset, and then each user accesses
//! its files either **interleaved** block-by-block with every other user
//! (heavily loaded server) or **serially**, one whole file at a time (lightly
//! loaded server).  The *access time* of a file is the simulated time between
//! its first and last chunk completing — which is why it grows with the
//! number of concurrent users even though the per-chunk service times do not.

use crate::schemes::{SchemeInstance, SchemeKind};
use crate::workload::{AccessPattern, FileSpec};

/// Whether the measured pass reads or overwrites the files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Read every chunk of every file.
    Read,
    /// Overwrite every chunk of every file in place.
    Write,
}

/// Result of one measured pass.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Operation measured.
    pub operation: Operation,
    /// Number of concurrent users.
    pub users: usize,
    /// Per-file access times in simulated seconds.
    pub per_file_s: Vec<f64>,
    /// Total simulated time for the whole pass.
    pub total_s: f64,
    /// Total bytes accessed.
    pub bytes: u64,
}

impl AccessResult {
    /// Mean access time per file in seconds.
    pub fn avg_access_time_s(&self) -> f64 {
        if self.per_file_s.is_empty() {
            0.0
        } else {
            self.per_file_s.iter().sum::<f64>() / self.per_file_s.len() as f64
        }
    }

    /// Access time normalised per kilobyte accessed (Figure 8's metric).
    pub fn normalized_s_per_kb(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.per_file_s.iter().sum::<f64>() / (self.bytes as f64 / 1024.0)
        }
    }
}

struct FileProgress {
    spec_index: usize,
    chunks: u64,
    next_chunk: u64,
    start_s: Option<f64>,
    end_s: Option<f64>,
}

struct UserQueue {
    files: Vec<usize>, // indices into the progress table
    current: usize,
}

/// Run one measured pass of `op` over `specs` with `users` concurrent users.
///
/// The scheme must already have been prepared with the same specs; the clock
/// is reset at the start of the pass.
pub fn run_access(
    scheme: &mut dyn SchemeInstance,
    specs: &[FileSpec],
    users: usize,
    pattern: AccessPattern,
    op: Operation,
) -> Result<AccessResult, String> {
    if users == 0 {
        return Err("need at least one user".into());
    }
    let clock = scheme.clock();
    clock.reset();

    let mut progress: Vec<FileProgress> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| FileProgress {
            spec_index: i,
            chunks: scheme.chunk_count(spec),
            next_chunk: 0,
            start_s: None,
            end_s: None,
        })
        .collect();

    // Files are dealt to users round-robin, as if each user owned a share of
    // the file population.
    let mut queues: Vec<UserQueue> = (0..users)
        .map(|_| UserQueue {
            files: Vec::new(),
            current: 0,
        })
        .collect();
    for (i, _) in specs.iter().enumerate() {
        queues[i % users].files.push(i);
    }

    let chunk_buf = vec![0xa5u8; scheme.chunk_size()];
    let issue = |scheme: &mut dyn SchemeInstance,
                 progress: &mut Vec<FileProgress>,
                 file_idx: usize|
     -> Result<bool, String> {
        let p = &mut progress[file_idx];
        if p.next_chunk >= p.chunks {
            return Ok(true);
        }
        if p.start_s.is_none() {
            p.start_s = Some(clock.elapsed_secs());
        }
        let spec = &specs[p.spec_index];
        match op {
            Operation::Read => scheme.read_chunk(p.spec_index, spec, p.next_chunk)?,
            Operation::Write => scheme.write_chunk(p.spec_index, spec, p.next_chunk, &chunk_buf)?,
        }
        p.next_chunk += 1;
        if p.next_chunk >= p.chunks {
            p.end_s = Some(clock.elapsed_secs());
            return Ok(true);
        }
        Ok(false)
    };

    match pattern {
        AccessPattern::Interleaved => {
            // Round-robin: one chunk per user per turn.
            let mut remaining = specs.len();
            while remaining > 0 {
                let mut advanced = false;
                for queue in queues.iter_mut() {
                    if queue.current >= queue.files.len() {
                        continue;
                    }
                    let file_idx = queue.files[queue.current];
                    let finished = issue(scheme, &mut progress, file_idx)?;
                    advanced = true;
                    if finished {
                        queue.current += 1;
                        remaining -= 1;
                    }
                }
                if !advanced {
                    break;
                }
            }
        }
        AccessPattern::Serial => {
            // Users one after the other; each file completed before the next.
            for queue in &queues {
                for &file_idx in &queue.files {
                    loop {
                        if issue(scheme, &mut progress, file_idx)? {
                            break;
                        }
                    }
                }
            }
        }
    }

    let per_file_s: Vec<f64> = progress
        .iter()
        .map(|p| match (p.start_s, p.end_s) {
            (Some(start), Some(end)) => end - start,
            _ => 0.0,
        })
        .collect();
    let bytes = specs.iter().map(|s| s.size).sum();

    Ok(AccessResult {
        scheme: scheme.kind(),
        operation: op,
        users,
        per_file_s,
        total_s: clock.elapsed_secs(),
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::build_scheme;
    use crate::workload::WorkloadParams;

    fn run(kind: SchemeKind, users: usize, pattern: AccessPattern, op: Operation) -> AccessResult {
        let mut params = WorkloadParams::tiny_test();
        params.users = users;
        let specs = params.generate_files();
        let mut scheme = build_scheme(kind, &params).unwrap();
        scheme.prepare(&specs, &params).unwrap();
        run_access(scheme.as_mut(), &specs, users, pattern, op).unwrap()
    }

    #[test]
    fn read_pass_produces_positive_times() {
        let result = run(
            SchemeKind::CleanDisk,
            1,
            AccessPattern::Serial,
            Operation::Read,
        );
        assert_eq!(result.per_file_s.len(), 6);
        assert!(result.avg_access_time_s() > 0.0);
        assert!(result.total_s > 0.0);
        assert!(result.normalized_s_per_kb() > 0.0);
        assert!(result
            .per_file_s
            .iter()
            .all(|&t| t > 0.0 && t <= result.total_s + 1e-9));
    }

    #[test]
    fn interleaving_slows_cleandisk_but_not_much_stegfs() {
        // The mechanism behind Figure 7: CleanDisk loses its sequentiality
        // advantage when interleaved, StegFS never had one.
        let clean_1 = run(
            SchemeKind::CleanDisk,
            1,
            AccessPattern::Serial,
            Operation::Read,
        )
        .avg_access_time_s();
        let clean_4 = run(
            SchemeKind::CleanDisk,
            4,
            AccessPattern::Interleaved,
            Operation::Read,
        )
        .avg_access_time_s();
        assert!(
            clean_4 > clean_1 * 2.0,
            "interleaving should slow CleanDisk: {clean_1:.3}s vs {clean_4:.3}s"
        );

        let steg_1 = run(
            SchemeKind::StegFs,
            1,
            AccessPattern::Serial,
            Operation::Read,
        )
        .avg_access_time_s();
        let steg_4 = run(
            SchemeKind::StegFs,
            4,
            AccessPattern::Interleaved,
            Operation::Read,
        )
        .avg_access_time_s();
        // StegFS slows down because of queueing behind other users, but by a
        // smaller *multiple* than CleanDisk does.
        assert!(
            steg_4 / steg_1 < clean_4 / clean_1,
            "StegFS ratio {:.2} should be below CleanDisk ratio {:.2}",
            steg_4 / steg_1,
            clean_4 / clean_1
        );
    }

    #[test]
    fn write_pass_works_for_all_schemes() {
        for kind in SchemeKind::all() {
            let result = run(kind, 2, AccessPattern::Interleaved, Operation::Write);
            assert!(result.avg_access_time_s() > 0.0, "{kind}");
        }
    }

    #[test]
    fn zero_users_rejected() {
        let params = WorkloadParams::tiny_test();
        let specs = params.generate_files();
        let mut scheme = build_scheme(SchemeKind::CleanDisk, &params).unwrap();
        scheme.prepare(&specs, &params).unwrap();
        assert!(run_access(
            scheme.as_mut(),
            &specs,
            0,
            AccessPattern::Serial,
            Operation::Read
        )
        .is_err());
    }
}
