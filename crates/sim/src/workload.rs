//! Workload description and generation (Table 3 of the paper).

use stegfs_crypto::prng::XorShiftRng;

/// How file operations from concurrent users are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Requests from all users are interleaved block by block (the paper's
    /// default; file servers under load behave this way).
    Interleaved,
    /// Each file is accessed in its entirety before the next one is opened
    /// (the lightly-loaded case of §5.4).
    Serial,
}

/// One file in the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSpec {
    /// File name (used as the object name / path / password salt by the
    /// scheme adapters).
    pub name: String,
    /// File size in bytes.
    pub size: u64,
}

/// Workload parameters (Table 3), plus the scale knobs this reproduction
/// adds so the experiments can run at laptop scale.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Size of each disk block in bytes (paper default: 1 KB).
    pub block_size: usize,
    /// Capacity of the disk volume in mebibytes (paper default: 1024 = 1 GB).
    pub volume_mb: u64,
    /// Number of files in the file system (paper default: 100).
    pub file_count: usize,
    /// Minimum file size in bytes (paper default: 1 MB, exclusive bound —
    /// sizes are drawn from `(min, max]`).
    pub file_size_min: u64,
    /// Maximum file size in bytes (paper default: 2 MB).
    pub file_size_max: u64,
    /// Number of concurrent users (paper default: 1).
    pub users: usize,
    /// File access pattern (paper default: interleaved).
    pub pattern: AccessPattern,
    /// Seed for workload generation and scheme randomness.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl WorkloadParams {
    /// The exact defaults of Table 3: 1 GB volume, 1 KB blocks, 100 files of
    /// (1, 2] MB, interleaved access, one user.
    pub fn paper_defaults() -> Self {
        WorkloadParams {
            block_size: 1024,
            volume_mb: 1024,
            file_count: 100,
            file_size_min: 1024 * 1024,
            file_size_max: 2 * 1024 * 1024,
            users: 1,
            pattern: AccessPattern::Interleaved,
            seed: 0x5747_2003,
        }
    }

    /// A scaled-down workload with the same *shape* (same file-size-to-volume
    /// ratio, same relative metadata overheads) that runs in seconds rather
    /// than minutes: 64 MB volume, 24 files of (256, 512] KB.
    /// EXPERIMENTS.md documents the scaling.
    pub fn scaled_quick() -> Self {
        WorkloadParams {
            block_size: 1024,
            volume_mb: 64,
            file_count: 24,
            file_size_min: 256 * 1024,
            file_size_max: 512 * 1024,
            users: 1,
            pattern: AccessPattern::Interleaved,
            seed: 0x5747_2003,
        }
    }

    /// An even smaller workload for unit tests.
    pub fn tiny_test() -> Self {
        WorkloadParams {
            block_size: 1024,
            volume_mb: 16,
            file_count: 6,
            file_size_min: 32 * 1024,
            file_size_max: 64 * 1024,
            users: 2,
            pattern: AccessPattern::Interleaved,
            seed: 7,
        }
    }

    /// Total number of blocks in the volume.
    pub fn total_blocks(&self) -> u64 {
        self.volume_mb * 1024 * 1024 / self.block_size as u64
    }

    /// Volume capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.volume_mb * 1024 * 1024
    }

    /// Sanity-check the parameter combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size < 128 || !self.block_size.is_power_of_two() {
            return Err(format!("unsupported block size {}", self.block_size));
        }
        if self.file_size_min >= self.file_size_max {
            return Err("file_size_min must be below file_size_max".into());
        }
        if self.users == 0 || self.file_count == 0 {
            return Err("need at least one user and one file".into());
        }
        let total_file_bytes = self.file_size_max * self.file_count as u64;
        if total_file_bytes > self.capacity_bytes() * 9 / 10 {
            return Err(format!(
                "workload of up to {total_file_bytes} bytes will not fit a {} MB volume",
                self.volume_mb
            ));
        }
        Ok(())
    }

    /// Generate the file specifications: sizes uniform in
    /// `(file_size_min, file_size_max]`, reproducible from the seed.
    pub fn generate_files(&self) -> Vec<FileSpec> {
        let mut rng = XorShiftRng::new(self.seed ^ 0xf11e);
        (0..self.file_count)
            .map(|i| FileSpec {
                name: format!("workload-file-{i:04}"),
                size: rng.next_in_range(self.file_size_min + 1, self.file_size_max),
            })
            .collect()
    }

    /// Generate reproducible file contents of the given size.
    pub fn generate_content(&self, spec_index: usize, size: u64) -> Vec<u8> {
        let mut rng = XorShiftRng::new(self.seed ^ (spec_index as u64).wrapping_mul(0x9e3779b9));
        let mut data = vec![0u8; size as usize];
        rng.fill(&mut data);
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_3() {
        let p = WorkloadParams::paper_defaults();
        assert_eq!(p.block_size, 1024);
        assert_eq!(p.volume_mb, 1024);
        assert_eq!(p.file_count, 100);
        assert_eq!(p.file_size_min, 1024 * 1024);
        assert_eq!(p.file_size_max, 2 * 1024 * 1024);
        assert_eq!(p.users, 1);
        assert_eq!(p.pattern, AccessPattern::Interleaved);
        assert!(p.validate().is_ok());
        assert_eq!(p.total_blocks(), 1024 * 1024);
    }

    #[test]
    fn scaled_presets_validate() {
        assert!(WorkloadParams::scaled_quick().validate().is_ok());
        assert!(WorkloadParams::tiny_test().validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = WorkloadParams::scaled_quick();
        p.block_size = 1000;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::scaled_quick();
        p.file_size_min = p.file_size_max;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::scaled_quick();
        p.users = 0;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::scaled_quick();
        p.file_count = 10_000;
        assert!(p.validate().is_err(), "workload larger than the volume");
    }

    #[test]
    fn file_generation_is_reproducible_and_in_range() {
        let p = WorkloadParams::tiny_test();
        let a = p.generate_files();
        let b = p.generate_files();
        assert_eq!(a, b);
        assert_eq!(a.len(), p.file_count);
        for spec in &a {
            assert!(spec.size > p.file_size_min && spec.size <= p.file_size_max);
        }
        // Names are unique.
        let mut names: Vec<_> = a.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), p.file_count);
    }

    #[test]
    fn content_generation_is_reproducible_and_distinct_per_file() {
        let p = WorkloadParams::tiny_test();
        let a = p.generate_content(0, 1000);
        let b = p.generate_content(0, 1000);
        let c = p.generate_content(1, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
    }
}
