//! One driver function per table/figure of the paper's evaluation.
//!
//! Each function returns structured rows plus a `render_*` helper that turns
//! them into the text tables printed by the `repro` binary.  The
//! per-experiment index in DESIGN.md maps every figure/table to the function
//! here that regenerates it.

use crate::driver::{run_access, AccessResult, Operation};
use crate::report::{fmt_f64, format_table};
use crate::schemes::{build_scheme, SchemeKind};
use crate::workload::{AccessPattern, WorkloadParams};
use stegfs_baselines::stegrand::StegRandSpaceModel;
use stegfs_blockdev::DiskParameters;
use stegfs_core::{ObjectKind, StegFs, StegParams};

// ----------------------------------------------------------------------
// Tables 1-4
// ----------------------------------------------------------------------

/// Render Tables 1–4 (StegFS parameters, physical resource parameters,
/// workload parameters, algorithm indicators).
pub fn tables() -> String {
    let steg = StegParams::default();
    let table1 = format_table(
        "Table 1: Parameters of StegFS",
        &["parameter", "meaning", "default"],
        &[
            vec![
                "P_abandon".into(),
                "Percentage of abandoned blocks in the disk volume".into(),
                format!("{}%", steg.abandoned_pct),
            ],
            vec![
                "FB_min".into(),
                "Minimum number of free blocks within a hidden file".into(),
                steg.free_blocks_min.to_string(),
            ],
            vec![
                "FB_max".into(),
                "Maximum number of free blocks within a hidden file".into(),
                steg.free_blocks_max.to_string(),
            ],
            vec![
                "N_dummy".into(),
                "Number of dummy hidden files in the file system".into(),
                steg.dummy_file_count.to_string(),
            ],
            vec![
                "S_dummy".into(),
                "Average size of the dummy hidden files".into(),
                format!("{} MB", steg.dummy_file_size / (1024 * 1024)),
            ],
        ],
    );

    let disk = DiskParameters::ultra_ata_100();
    let table2 = format_table(
        "Table 2: Physical resource parameters (simulated disk model)",
        &["parameter", "value"],
        &[
            vec![
                "Disk model".into(),
                "Ultra ATA/100 class (simulated)".into(),
            ],
            vec!["Spindle speed".into(), format!("{} rpm", disk.rpm)],
            vec![
                "Track-to-track seek".into(),
                format!("{} ms", disk.track_to_track_ms),
            ],
            vec![
                "Full-stroke seek".into(),
                format!("{} ms", disk.full_stroke_ms),
            ],
            vec![
                "Avg rotational latency".into(),
                format!("{:.2} ms", disk.avg_rotational_latency_ms()),
            ],
            vec![
                "Sustained transfer rate".into(),
                format!("{} MB/s", disk.transfer_mb_per_s),
            ],
            vec![
                "Read-ahead window".into(),
                format!("{} KB", disk.readahead_bytes / 1024),
            ],
        ],
    );

    let wl = WorkloadParams::paper_defaults();
    let table3 = format_table(
        "Table 3: Workload parameters",
        &["parameter", "default"],
        &[
            vec![
                "Size of each disk block".into(),
                format!("{} KB", wl.block_size / 1024),
            ],
            vec![
                "Size of each file".into(),
                format!(
                    "({}, {}] MB",
                    wl.file_size_min / (1024 * 1024),
                    wl.file_size_max / (1024 * 1024)
                ),
            ],
            vec![
                "Capacity of the disk volume".into(),
                format!("{} GB", wl.volume_mb / 1024),
            ],
            vec![
                "Number of files in the file system".into(),
                wl.file_count.to_string(),
            ],
            vec!["File access pattern".into(), "Interleaved".into()],
            vec!["Number of concurrent users".into(), wl.users.to_string()],
        ],
    );

    let table4 = format_table(
        "Table 4: Algorithm indicators",
        &["indicator", "meaning"],
        &[
            vec!["StegFS".into(), "Our proposed StegFS scheme".into()],
            vec![
                "StegCover".into(),
                "Steganographic scheme using cover files [Anderson et al.]".into(),
            ],
            vec![
                "StegRand".into(),
                "Steganographic scheme using random block assignment [Anderson et al.]".into(),
            ],
            vec![
                "CleanDisk".into(),
                "Freshly defragmented native file system".into(),
            ],
            vec![
                "FragDisk".into(),
                "Well-used native file system with fragmentation".into(),
            ],
        ],
    );

    format!("{table1}\n{table2}\n{table3}\n{table4}")
}

// ----------------------------------------------------------------------
// Figure 6: StegRand space utilization
// ----------------------------------------------------------------------

/// One point of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Block size in bytes.
    pub block_size: u64,
    /// Replication factor.
    pub replication: usize,
    /// Effective space utilization at the first unrecoverable loss.
    pub utilization: f64,
}

/// Regenerate Figure 6: StegRand effective space utilization as a function of
/// the replication factor, one series per block size.
///
/// `volume_mb` is 1024 in the paper; smaller volumes preserve the shape and
/// run faster.  Results are averaged over `trials` placements.
pub fn figure6(volume_mb: u64, trials: usize, seed: u64) -> Vec<Fig6Row> {
    let block_sizes: [u64; 8] = [512, 1024, 2048, 4096, 8192, 16384, 32768, 65536];
    let replications: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for &bs in &block_sizes {
        let total_blocks = volume_mb * 1024 * 1024 / bs;
        for &r in &replications {
            let mut total_util = 0.0;
            for t in 0..trials.max(1) {
                let mut model = StegRandSpaceModel::new(
                    total_blocks,
                    r,
                    seed ^ (t as u64) << 32 ^ bs ^ r as u64,
                );
                let outcome = model.run_until_loss(bs, |rng| {
                    // Files uniform in (1, 2] MB as in the paper's workload.
                    let bytes = rng.next_in_range(1024 * 1024 + 1, 2 * 1024 * 1024);
                    bytes.div_ceil(bs) as u32
                });
                total_util += outcome.utilization;
            }
            rows.push(Fig6Row {
                block_size: bs,
                replication: r,
                utilization: total_util / trials.max(1) as f64,
            });
        }
    }
    rows
}

/// Render Figure 6 rows as a text table (series per block size).
pub fn render_figure6(rows: &[Fig6Row]) -> String {
    let replications: Vec<usize> = {
        let mut r: Vec<usize> = rows.iter().map(|x| x.replication).collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    let block_sizes: Vec<u64> = {
        let mut b: Vec<u64> = rows.iter().map(|x| x.block_size).collect();
        b.sort_unstable();
        b.dedup();
        b
    };
    let mut headers: Vec<String> = vec!["block size".to_string()];
    headers.extend(replications.iter().map(|r| format!("r={r}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table_rows: Vec<Vec<String>> = block_sizes
        .iter()
        .map(|&bs| {
            let mut row = vec![format!("{} KB", bs as f64 / 1024.0)];
            for &r in &replications {
                let util = rows
                    .iter()
                    .find(|x| x.block_size == bs && x.replication == r)
                    .map(|x| x.utilization)
                    .unwrap_or(0.0);
                row.push(fmt_f64(util));
            }
            row
        })
        .collect();
    format_table(
        "Figure 6: StegRand effective space utilization vs replication factor",
        &header_refs,
        &table_rows,
    )
}

// ----------------------------------------------------------------------
// Figures 7-9: access times
// ----------------------------------------------------------------------

/// One measured point of an access-time experiment.
#[derive(Debug, Clone)]
pub struct AccessRow {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// The swept parameter (users for Fig 7, file size in KB for Fig 8,
    /// block size in KB for Fig 9).
    pub x: f64,
    /// Average read access time (seconds of simulated disk time).
    pub read_s: f64,
    /// Average write access time.
    pub write_s: f64,
    /// Normalized read time (s/KB), used by Figure 8.
    pub read_s_per_kb: f64,
    /// Normalized write time (s/KB).
    pub write_s_per_kb: f64,
}

fn measure(
    kind: SchemeKind,
    params: &WorkloadParams,
    users: usize,
    pattern: AccessPattern,
) -> Result<(AccessResult, AccessResult), String> {
    let specs = params.generate_files();
    let mut scheme = build_scheme(kind, params)?;
    scheme.prepare(&specs, params)?;
    let read = run_access(scheme.as_mut(), &specs, users, pattern, Operation::Read)?;
    let write = run_access(scheme.as_mut(), &specs, users, pattern, Operation::Write)?;
    Ok((read, write))
}

/// Regenerate Figure 7: read/write access time vs number of concurrent users,
/// for all five schemes.
pub fn figure7(params: &WorkloadParams, user_counts: &[usize]) -> Result<Vec<AccessRow>, String> {
    let mut rows = Vec::new();
    for kind in SchemeKind::all() {
        for &users in user_counts {
            let mut p = params.clone();
            p.users = users;
            let (read, write) = measure(kind, &p, users, AccessPattern::Interleaved)?;
            rows.push(AccessRow {
                scheme: kind,
                x: users as f64,
                read_s: read.avg_access_time_s(),
                write_s: write.avg_access_time_s(),
                read_s_per_kb: read.normalized_s_per_kb(),
                write_s_per_kb: write.normalized_s_per_kb(),
            });
        }
    }
    Ok(rows)
}

/// Regenerate Figure 8: normalized access time vs file size (KB), with the
/// multi-user interleaved workload.
pub fn figure8(
    params: &WorkloadParams,
    file_sizes_kb: &[u64],
    users: usize,
) -> Result<Vec<AccessRow>, String> {
    let mut rows = Vec::new();
    for kind in SchemeKind::all() {
        for &kb in file_sizes_kb {
            let mut p = params.clone();
            p.users = users;
            p.file_size_min = (kb - 1).max(1) * 1024;
            p.file_size_max = kb * 1024;
            let (read, write) = measure(kind, &p, users, AccessPattern::Interleaved)?;
            rows.push(AccessRow {
                scheme: kind,
                x: kb as f64,
                read_s: read.avg_access_time_s(),
                write_s: write.avg_access_time_s(),
                read_s_per_kb: read.normalized_s_per_kb(),
                write_s_per_kb: write.normalized_s_per_kb(),
            });
        }
    }
    Ok(rows)
}

/// Regenerate Figure 9: serial (single-user) access time vs block size (KB).
pub fn figure9(params: &WorkloadParams, block_sizes: &[usize]) -> Result<Vec<AccessRow>, String> {
    let mut rows = Vec::new();
    for kind in SchemeKind::all() {
        for &bs in block_sizes {
            let mut p = params.clone();
            p.block_size = bs;
            p.users = 1;
            p.pattern = AccessPattern::Serial;
            let (read, write) = measure(kind, &p, 1, AccessPattern::Serial)?;
            rows.push(AccessRow {
                scheme: kind,
                x: bs as f64 / 1024.0,
                read_s: read.avg_access_time_s(),
                write_s: write.avg_access_time_s(),
                read_s_per_kb: read.normalized_s_per_kb(),
                write_s_per_kb: write.normalized_s_per_kb(),
            });
        }
    }
    Ok(rows)
}

/// Render Fig 7/8/9 rows as a pair of text tables (read and write).
pub fn render_access_rows(
    title: &str,
    x_label: &str,
    rows: &[AccessRow],
    normalized: bool,
) -> String {
    let xs: Vec<f64> = {
        let mut v: Vec<f64> = rows.iter().map(|r| r.x).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        v
    };
    let schemes = SchemeKind::all();
    let mut headers: Vec<String> = vec![x_label.to_string()];
    headers.extend(schemes.iter().map(|s| s.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let build = |selector: &dyn Fn(&AccessRow) -> f64, label: &str| -> String {
        let table_rows: Vec<Vec<String>> = xs
            .iter()
            .map(|&x| {
                let mut row = vec![fmt_f64(x)];
                for kind in schemes {
                    let v = rows
                        .iter()
                        .find(|r| r.scheme == kind && (r.x - x).abs() < 1e-9)
                        .map(selector)
                        .unwrap_or(0.0);
                    row.push(fmt_f64(v));
                }
                row
            })
            .collect();
        format_table(&format!("{title} — {label}"), &header_refs, &table_rows)
    };

    if normalized {
        format!(
            "{}\n{}",
            build(&|r| r.read_s_per_kb, "read (s/KB)"),
            build(&|r| r.write_s_per_kb, "write (s/KB)")
        )
    } else {
        format!(
            "{}\n{}",
            build(&|r| r.read_s, "read (s)"),
            build(&|r| r.write_s, "write (s)")
        )
    }
}

// ----------------------------------------------------------------------
// §5.2 space-utilization summary
// ----------------------------------------------------------------------

/// One scheme's effective space utilization.
#[derive(Debug, Clone)]
pub struct SpaceRow {
    /// Scheme name.
    pub scheme: String,
    /// Effective utilization (unique file bytes / volume capacity).
    pub utilization: f64,
    /// How the number was obtained.
    pub note: String,
}

/// Regenerate the §5.2 comparison: StegFS vs StegCover vs StegRand effective
/// space utilization under the default workload shape.
pub fn space_summary(volume_mb: u64, seed: u64) -> Result<Vec<SpaceRow>, String> {
    let block_size = 1024usize;
    let capacity = volume_mb * 1024 * 1024;

    // --- StegFS: load files until the volume refuses another one. ---
    let device = stegfs_blockdev::MemBlockDevice::new(block_size, capacity / block_size as u64);
    let mut steg_params = StegParams::for_experiments(seed);
    // Keep the paper's ~1% dummy footprint at any volume scale.
    steg_params.dummy_file_size = (capacity / 1000).clamp(16 * 1024, 1024 * 1024);
    let stegfs = StegFs::format(device, steg_params).map_err(|e| e.to_string())?;
    let mut rng = stegfs_crypto::prng::XorShiftRng::new(seed ^ 0x51ace);
    let mut loaded_bytes = 0u64;
    let mut index = 0usize;
    const UAK: &str = "space experiment uak";
    loop {
        // File sizes scaled to the volume the same way the paper's 1-2 MB
        // files relate to its 1 GB volume (1/1024 .. 1/512 of capacity).
        let size = rng.next_in_range(capacity / 1024 + 1, capacity / 512);
        let name = format!("space-file-{index}");
        let content = vec![0xccu8; size as usize];
        match stegfs
            .steg_create(&name, UAK, ObjectKind::File)
            .and_then(|_| stegfs.write_hidden_with_key(&name, UAK, &content))
        {
            Ok(()) => {
                loaded_bytes += size;
                index += 1;
            }
            Err(stegfs_core::StegError::NoSpace) => break,
            Err(e) => return Err(e.to_string()),
        }
        if loaded_bytes > capacity {
            break;
        }
    }
    let stegfs_util = loaded_bytes as f64 / capacity as f64;

    // --- StegCover: covers sized for the largest file; each cover holds one
    // file whose expected size is 75% of the cover. ---
    let cover_size = capacity / 512; // the "2 MB" cover at this scale
    let cover_count = capacity / cover_size;
    let usable_covers = cover_count.saturating_sub(15);
    let mut cover_bytes = 0u64;
    for _ in 0..usable_covers {
        cover_bytes += rng.next_in_range(cover_size / 2 + 1, cover_size);
    }
    let stegcover_util = cover_bytes as f64 / capacity as f64;

    // --- StegRand at its best replication factor (8), 1 KB blocks. ---
    let mut best_rand: f64 = 0.0;
    for replication in [4usize, 8, 16] {
        let mut model = StegRandSpaceModel::new(capacity / 1024, replication, seed ^ 77);
        let outcome = model.run_until_loss(1024, |rng| {
            rng.next_in_range(capacity / 1024 / 1024 + 1, capacity / 512 / 1024) as u32
        });
        best_rand = best_rand.max(outcome.utilization);
    }

    Ok(vec![
        SpaceRow {
            scheme: "StegFS".into(),
            utilization: stegfs_util,
            note: format!("{index} hidden files loaded until NoSpace"),
        },
        SpaceRow {
            scheme: "StegCover".into(),
            utilization: stegcover_util,
            note: "one file per 'largest-file' cover, sizes U(0.5, 1] of cover".into(),
        },
        SpaceRow {
            scheme: "StegRand".into(),
            utilization: best_rand,
            note: "best replication factor in {4, 8, 16}, 1 KB blocks".into(),
        },
    ])
}

/// Render the space-utilization summary.
pub fn render_space_summary(rows: &[SpaceRow]) -> String {
    format_table(
        "Section 5.2: effective space utilization",
        &["scheme", "utilization", "note"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    format!("{:.1}%", r.utilization * 100.0),
                    r.note.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_mention_all_parameters() {
        let t = tables();
        for needle in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "P_abandon",
            "FB_max",
            "N_dummy",
            "Interleaved",
            "StegCover",
            "FragDisk",
            "7200 rpm",
        ] {
            assert!(t.contains(needle), "missing {needle}\n{t}");
        }
    }

    #[test]
    fn figure6_shape_matches_paper() {
        // Small volume, single trial: enough to check the qualitative shape.
        let rows = figure6(128, 1, 42);
        assert_eq!(rows.len(), 8 * 7);
        // All utilizations are low (< 25%) — StegRand never gets close to a
        // normal file system.
        assert!(rows.iter().all(|r| r.utilization < 0.25));
        // For 1 KB blocks the peak lies at a moderate replication factor:
        // better than no replication, better than excessive replication.
        let util = |r: usize| {
            rows.iter()
                .find(|x| x.block_size == 1024 && x.replication == r)
                .unwrap()
                .utilization
        };
        let peak = util(8).max(util(16)).max(util(4));
        assert!(peak >= util(1), "moderate replication beats none");
        assert!(peak >= util(64), "moderate replication beats excessive");
        let rendered = render_figure6(&rows);
        assert!(rendered.contains("r=8"));
        assert!(rendered.contains("64 KB"));
    }

    #[test]
    fn figure7_tiny_run_produces_expected_ordering() {
        // A tiny configuration exercises the full pipeline quickly; the
        // full-scale run lives in the repro binary / benches.
        let params = WorkloadParams::tiny_test();
        let rows = figure7(&params, &[1, 4]).unwrap();
        assert_eq!(rows.len(), 5 * 2);
        let get = |kind: SchemeKind, users: f64| {
            rows.iter()
                .find(|r| r.scheme == kind && r.x == users)
                .unwrap()
                .clone()
        };
        // StegCover is the outlier, far above everyone else.
        assert!(get(SchemeKind::StegCover, 1.0).read_s > get(SchemeKind::StegFs, 1.0).read_s * 3.0);
        // At a single user CleanDisk beats StegFS; with concurrency the gap
        // narrows (ratio falls).
        let ratio_1 = get(SchemeKind::StegFs, 1.0).read_s / get(SchemeKind::CleanDisk, 1.0).read_s;
        let ratio_4 = get(SchemeKind::StegFs, 4.0).read_s / get(SchemeKind::CleanDisk, 4.0).read_s;
        assert!(ratio_1 > 1.0);
        assert!(ratio_4 < ratio_1);
        let rendered = render_access_rows("Figure 7", "users", &rows, false);
        assert!(rendered.contains("read (s)"));
        assert!(rendered.contains("StegFS"));
    }

    #[test]
    fn space_summary_matches_headline_claims() {
        let rows = space_summary(32, 9).unwrap();
        let get = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap().utilization;
        // StegFS well above both baselines; StegCover around 75%; StegRand
        // in the single digits.
        assert!(get("StegFS") > 0.5, "StegFS {:.2}", get("StegFS"));
        assert!(get("StegFS") > get("StegRand") * 5.0);
        assert!((0.55..0.9).contains(&get("StegCover")));
        assert!(get("StegRand") < 0.2);
        let rendered = render_space_summary(&rows);
        assert!(rendered.contains("StegFS"));
        assert!(rendered.contains("%"));
    }
}
