//! # stegfs-sim
//!
//! Workload generation, multi-user request interleaving and the experiment
//! drivers that regenerate every table and figure of the StegFS paper's
//! evaluation (Section 5).
//!
//! The crate glues the other pieces together: schemes under test
//! ([`schemes::SchemeKind`] — StegFS plus the four comparison points of
//! Table 4) run over the same in-memory volume wrapped in the mechanical disk
//! timing model from `stegfs-blockdev`, driven by workloads described by
//! [`workload::WorkloadParams`] (Table 3).  The timing experiments report
//! *simulated* disk service time, so absolute numbers depend only on the disk
//! model parameters (Table 2), not on the host machine.
//!
//! Entry points:
//!
//! * [`experiments::figure6`] — StegRand effective space utilization vs
//!   replication factor.
//! * [`experiments::figure7`] — read/write access time vs number of
//!   concurrent users.
//! * [`experiments::figure8`] — normalized access time vs file size.
//! * [`experiments::figure9`] — serial access time vs block size.
//! * [`experiments::space_summary`] — the §5.2 utilization comparison.
//! * [`experiments::tables`] — Tables 1–4 (parameter/notation tables).
//!
//! The `stegfs-bench` crate exposes all of these through the `repro` binary
//! and Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod experiments;
pub mod report;
pub mod schemes;
pub mod workload;

pub use driver::{AccessResult, Operation};
pub use schemes::SchemeKind;
pub use workload::{AccessPattern, FileSpec, WorkloadParams};
