//! Adapters that put every scheme of Table 4 behind one block-granular
//! interface, so the same driver and the same disk model measure all of them.
//!
//! | Indicator (Table 4) | Adapter | Substrate |
//! |---|---|---|
//! | `StegFS`    | [`StegFsScheme`]    | `stegfs-core` over the plain FS |
//! | `StegCover` | [`StegCoverScheme`] | `stegfs-baselines::stegcover` |
//! | `StegRand`  | [`StegRandScheme`]  | `stegfs-baselines::stegrand` |
//! | `CleanDisk` | [`PlainScheme`] with contiguous allocation | `stegfs-fs` |
//! | `FragDisk`  | [`PlainScheme`] with 8-block fragments | `stegfs-fs` |
//!
//! Every adapter owns a [`SimDisk`] over an in-memory volume and exposes the
//! simulated-disk clock, which is the quantity all timing experiments report.

use crate::workload::{FileSpec, WorkloadParams};
use stegfs_baselines::{StegCover, StegRand};
use stegfs_blockdev::{BufferCache, DiskClock, DiskParameters, MemBlockDevice, SimDisk};
use stegfs_core::{HiddenHandle, ObjectKind, StegFs, StegParams};
use stegfs_fs::{AllocPolicy, FormatOptions, PlainFs};

/// The scheme identifiers of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Freshly defragmented native file system (contiguous files).
    CleanDisk,
    /// Well-used native file system (files fragmented into 8-block runs).
    FragDisk,
    /// Anderson et al.'s cover-file scheme (16 covers per file).
    StegCover,
    /// Anderson et al.'s random-placement scheme with replication.
    StegRand,
    /// The paper's proposed scheme.
    StegFs,
}

impl SchemeKind {
    /// All five schemes, in the order the paper's figures list them.
    pub fn all() -> [SchemeKind; 5] {
        [
            SchemeKind::CleanDisk,
            SchemeKind::FragDisk,
            SchemeKind::StegCover,
            SchemeKind::StegRand,
            SchemeKind::StegFs,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::CleanDisk => "CleanDisk",
            SchemeKind::FragDisk => "FragDisk",
            SchemeKind::StegCover => "StegCover",
            SchemeKind::StegRand => "StegRand",
            SchemeKind::StegFs => "StegFS",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Replication factor the paper uses for StegRand in the timing experiments
/// ("a replication factor of 4 is used for StegRand").
pub const STEGRAND_TIMING_REPLICATION: usize = 4;

/// Sizing rule for the buffer cache placed between every scheme and the
/// simulated disk, mirroring the kernel buffer cache of Figure 5.  Without it
/// every path resolution would re-read the same metadata blocks from the
/// simulated platter, which the real system never does; with an unrealistically
/// large one the data set would fit in memory and no scheme would touch the
/// disk at all.  The cache is therefore sized well below the volume (1/128 of
/// it, capped at 4 MB), exactly as the paper's 1 GB working set dwarfed the
/// 2003-era page cache.
pub fn buffer_cache_blocks(params: &WorkloadParams) -> usize {
    let bytes = (params.capacity_bytes() / 128).min(4 * 1024 * 1024) as usize;
    (bytes / params.block_size).max(16)
}

/// A scheme instance loaded with a workload and ready for block-granular
/// access.
pub trait SchemeInstance {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Load every file of the workload (the preparation phase; callers reset
    /// the clock afterwards).
    fn prepare(&mut self, specs: &[FileSpec], params: &WorkloadParams) -> Result<(), String>;

    /// Granularity of chunked access in bytes.
    fn chunk_size(&self) -> usize;

    /// Number of chunks of `spec` at this scheme's granularity.
    fn chunk_count(&self, spec: &FileSpec) -> u64 {
        spec.size.div_ceil(self.chunk_size() as u64).max(1)
    }

    /// Read one chunk of a prepared file.
    fn read_chunk(&mut self, file_index: usize, spec: &FileSpec, chunk: u64) -> Result<(), String>;

    /// Overwrite one chunk of a prepared file.
    fn write_chunk(
        &mut self,
        file_index: usize,
        spec: &FileSpec,
        chunk: u64,
        data: &[u8],
    ) -> Result<(), String>;

    /// Handle onto the simulated-disk clock.
    fn clock(&self) -> DiskClock;
}

/// Build a ready-to-prepare instance of `kind` for the given workload.
pub fn build_scheme(
    kind: SchemeKind,
    params: &WorkloadParams,
) -> Result<Box<dyn SchemeInstance>, String> {
    params.validate()?;
    let device = MemBlockDevice::new(params.block_size, params.total_blocks());
    let sim = SimDisk::new(device, DiskParameters::ultra_ata_100());
    let clock = sim.clock();
    let disk = BufferCache::new(sim, buffer_cache_blocks(params));
    match kind {
        SchemeKind::CleanDisk => Ok(Box::new(PlainScheme::new(
            kind,
            disk,
            clock,
            AllocPolicy::Contiguous,
            params,
        )?)),
        SchemeKind::FragDisk => Ok(Box::new(PlainScheme::new(
            kind,
            disk,
            clock,
            AllocPolicy::frag_disk(),
            params,
        )?)),
        SchemeKind::StegFs => Ok(Box::new(StegFsScheme::new(disk, clock, params)?)),
        SchemeKind::StegCover => Ok(Box::new(StegCoverScheme::new(disk, clock, params)?)),
        SchemeKind::StegRand => Ok(Box::new(StegRandScheme::new(
            disk,
            clock,
            STEGRAND_TIMING_REPLICATION,
        )?)),
    }
}

type Disk = BufferCache<SimDisk<MemBlockDevice>>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

// ----------------------------------------------------------------------
// CleanDisk / FragDisk
// ----------------------------------------------------------------------

/// The native plain file system under either allocation policy.
pub struct PlainScheme {
    kind: SchemeKind,
    fs: PlainFs<Disk>,
    clock: DiskClock,
    block_size: usize,
}

impl PlainScheme {
    fn new(
        kind: SchemeKind,
        disk: Disk,
        clock: DiskClock,
        policy: AllocPolicy,
        params: &WorkloadParams,
    ) -> Result<Self, String> {
        let fs = PlainFs::format(
            disk,
            FormatOptions {
                policy,
                seed: params.seed,
                fill_random: false,
                inode_count: None,
                journal_blocks: 0,
            },
        )
        .map_err(err)?;
        Ok(PlainScheme {
            kind,
            fs,
            clock,
            block_size: params.block_size,
        })
    }

    fn path(spec: &FileSpec) -> String {
        format!("/{}", spec.name)
    }
}

impl SchemeInstance for PlainScheme {
    fn kind(&self) -> SchemeKind {
        self.kind
    }

    fn prepare(&mut self, specs: &[FileSpec], params: &WorkloadParams) -> Result<(), String> {
        for (i, spec) in specs.iter().enumerate() {
            let content = params.generate_content(i, spec.size);
            self.fs
                .write_file(&Self::path(spec), &content)
                .map_err(err)?;
        }
        Ok(())
    }

    fn chunk_size(&self) -> usize {
        self.block_size
    }

    fn read_chunk(
        &mut self,
        _file_index: usize,
        spec: &FileSpec,
        chunk: u64,
    ) -> Result<(), String> {
        let offset = chunk * self.block_size as u64;
        let len = self
            .block_size
            .min((spec.size - offset.min(spec.size)) as usize);
        self.fs
            .read_file_range(&Self::path(spec), offset, len.max(1))
            .map(|_| ())
            .map_err(err)
    }

    fn write_chunk(
        &mut self,
        _file_index: usize,
        spec: &FileSpec,
        chunk: u64,
        data: &[u8],
    ) -> Result<(), String> {
        let offset = chunk * self.block_size as u64;
        let len = (spec.size - offset.min(spec.size)).min(data.len() as u64) as usize;
        self.fs
            .write_file_range(&Self::path(spec), offset, &data[..len])
            .map_err(err)
    }

    fn clock(&self) -> DiskClock {
        self.clock.clone()
    }
}

// ----------------------------------------------------------------------
// StegFS
// ----------------------------------------------------------------------

const EXPERIMENT_UAK: &str = "experiment user access key";

/// The proposed scheme, driven through the `stegfs-core` public API.
pub struct StegFsScheme {
    fs: StegFs<Disk>,
    clock: DiskClock,
    block_size: usize,
    handles: Vec<HiddenHandle>,
}

impl StegFsScheme {
    fn new(disk: Disk, clock: DiskClock, params: &WorkloadParams) -> Result<Self, String> {
        // Paper parameters, with the dummy-file footprint kept at the paper's
        // ~1 % of the volume so scaled-down volumes keep the same overhead
        // ratio, and without the (timing-irrelevant) random fill.
        let mut steg_params = StegParams::for_experiments(params.seed);
        steg_params.dummy_file_size =
            (params.capacity_bytes() / 1000).clamp(16 * 1024, 1024 * 1024);
        let fs = StegFs::format(disk, steg_params).map_err(err)?;
        Ok(StegFsScheme {
            fs,
            clock,
            block_size: params.block_size,
            handles: Vec::new(),
        })
    }
}

impl SchemeInstance for StegFsScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::StegFs
    }

    fn prepare(&mut self, specs: &[FileSpec], params: &WorkloadParams) -> Result<(), String> {
        for (i, spec) in specs.iter().enumerate() {
            let content = params.generate_content(i, spec.size);
            self.fs
                .steg_create(&spec.name, EXPERIMENT_UAK, ObjectKind::File)
                .map_err(err)?;
            self.fs
                .write_hidden_with_key(&spec.name, EXPERIMENT_UAK, &content)
                .map_err(err)?;
        }
        // Open all files once, like a user who has connected their objects.
        self.handles.clear();
        for spec in specs {
            self.handles.push(
                self.fs
                    .open_hidden(&spec.name, EXPERIMENT_UAK)
                    .map_err(err)?,
            );
        }
        Ok(())
    }

    fn chunk_size(&self) -> usize {
        self.block_size
    }

    fn read_chunk(&mut self, file_index: usize, spec: &FileSpec, chunk: u64) -> Result<(), String> {
        let handle = self
            .handles
            .get(file_index)
            .ok_or_else(|| format!("file {file_index} was not prepared"))?;
        let offset = chunk * self.block_size as u64;
        let len = self
            .block_size
            .min((spec.size.saturating_sub(offset)) as usize);
        self.fs
            .read_range_at(handle, offset, len.max(1))
            .map(|_| ())
            .map_err(err)
    }

    fn write_chunk(
        &mut self,
        file_index: usize,
        spec: &FileSpec,
        chunk: u64,
        data: &[u8],
    ) -> Result<(), String> {
        let handle = self
            .handles
            .get_mut(file_index)
            .ok_or_else(|| format!("file {file_index} was not prepared"))?;
        let offset = chunk * self.block_size as u64;
        let len = (spec.size.saturating_sub(offset)).min(data.len() as u64) as usize;
        if len == 0 {
            return Ok(());
        }
        self.fs
            .write_range_at(handle, offset, &data[..len])
            .map_err(err)
    }

    fn clock(&self) -> DiskClock {
        self.clock.clone()
    }
}

// ----------------------------------------------------------------------
// StegCover
// ----------------------------------------------------------------------

/// The cover-file scheme: every chunk access touches the whole 16-cover
/// subset.
pub struct StegCoverScheme {
    store: StegCover<Disk>,
    clock: DiskClock,
    block_size: usize,
    homes: Vec<u64>,
}

impl StegCoverScheme {
    fn new(disk: Disk, clock: DiskClock, params: &WorkloadParams) -> Result<Self, String> {
        // Covers sized for the largest file, as in §5.2.
        let cover_size = params
            .file_size_max
            .next_multiple_of(params.block_size as u64)
            + params.block_size as u64; // room for the length/MAC header block
        let store = StegCover::format(
            disk,
            cover_size,
            stegfs_baselines::stegcover::DEFAULT_SUBSET_SIZE,
        )
        .map_err(err)?;
        Ok(StegCoverScheme {
            store,
            clock,
            block_size: params.block_size,
            homes: Vec::new(),
        })
    }
}

impl SchemeInstance for StegCoverScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::StegCover
    }

    fn prepare(&mut self, specs: &[FileSpec], params: &WorkloadParams) -> Result<(), String> {
        self.homes.clear();
        for (i, spec) in specs.iter().enumerate() {
            let content = params.generate_content(i, spec.size);
            let home = self
                .store
                .store(&spec.name, "experiment password", &content)
                .map_err(err)?;
            self.homes.push(home);
        }
        Ok(())
    }

    fn chunk_size(&self) -> usize {
        self.block_size
    }

    fn read_chunk(
        &mut self,
        file_index: usize,
        _spec: &FileSpec,
        chunk: u64,
    ) -> Result<(), String> {
        let home = *self
            .homes
            .get(file_index)
            .ok_or_else(|| format!("file {file_index} was not prepared"))?;
        self.store
            .read_block_of(home, chunk)
            .map(|_| ())
            .map_err(err)
    }

    fn write_chunk(
        &mut self,
        file_index: usize,
        _spec: &FileSpec,
        chunk: u64,
        data: &[u8],
    ) -> Result<(), String> {
        let home = *self
            .homes
            .get(file_index)
            .ok_or_else(|| format!("file {file_index} was not prepared"))?;
        let mut block = vec![0u8; self.block_size];
        let n = data.len().min(self.block_size);
        block[..n].copy_from_slice(&data[..n]);
        self.store.write_block_of(home, chunk, &block).map_err(err)
    }

    fn clock(&self) -> DiskClock {
        self.clock.clone()
    }
}

// ----------------------------------------------------------------------
// StegRand
// ----------------------------------------------------------------------

/// The random-placement scheme with replication.
pub struct StegRandScheme {
    store: StegRand<Disk>,
    clock: DiskClock,
    /// Losses observed while reading (collisions are expected behaviour for
    /// this scheme, not an experiment failure).
    pub lost_chunks: u64,
}

impl StegRandScheme {
    fn new(disk: Disk, clock: DiskClock, replication: usize) -> Result<Self, String> {
        // The volume is already zero-filled in memory; StegRand::open avoids
        // re-filling it through the timing model.
        let store = StegRand::open(disk, replication).map_err(err)?;
        Ok(StegRandScheme {
            store,
            clock,
            lost_chunks: 0,
        })
    }
}

impl SchemeInstance for StegRandScheme {
    fn kind(&self) -> SchemeKind {
        SchemeKind::StegRand
    }

    fn prepare(&mut self, specs: &[FileSpec], params: &WorkloadParams) -> Result<(), String> {
        for (i, spec) in specs.iter().enumerate() {
            let content = params.generate_content(i, spec.size);
            self.store
                .store(&spec.name, "experiment password", &content)
                .map_err(err)?;
        }
        Ok(())
    }

    fn chunk_size(&self) -> usize {
        self.store.payload_per_block()
    }

    fn read_chunk(
        &mut self,
        _file_index: usize,
        spec: &FileSpec,
        chunk: u64,
    ) -> Result<(), String> {
        match self
            .store
            .read_logical_block(&spec.name, "experiment password", chunk)
            .map_err(err)?
        {
            Some(_) => Ok(()),
            None => {
                // Overwritten beyond recovery: the paper's point, not an
                // error in the harness.  The I/O cost of hunting through the
                // replicas has been charged either way.
                self.lost_chunks += 1;
                Ok(())
            }
        }
    }

    fn write_chunk(
        &mut self,
        _file_index: usize,
        spec: &FileSpec,
        chunk: u64,
        data: &[u8],
    ) -> Result<(), String> {
        let n = data.len().min(self.store.payload_per_block());
        self.store
            .write_logical_block(&spec.name, "experiment password", chunk, &data[..n])
            .map_err(err)
    }

    fn clock(&self) -> DiskClock {
        self.clock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table_4() {
        assert_eq!(SchemeKind::all().len(), 5);
        assert_eq!(SchemeKind::StegFs.label(), "StegFS");
        assert_eq!(SchemeKind::CleanDisk.to_string(), "CleanDisk");
    }

    #[test]
    fn every_scheme_builds_prepares_and_serves_chunks() {
        let params = WorkloadParams::tiny_test();
        let specs = params.generate_files();
        for kind in SchemeKind::all() {
            let mut scheme = build_scheme(kind, &params).unwrap();
            scheme.prepare(&specs, &params).unwrap();
            let clock = scheme.clock();
            clock.reset();
            let spec = &specs[0];
            let chunks = scheme.chunk_count(spec);
            assert!(chunks > 0);
            scheme.read_chunk(0, spec, 0).unwrap();
            scheme.read_chunk(0, spec, chunks - 1).unwrap();
            let data = vec![0xa5u8; scheme.chunk_size()];
            scheme.write_chunk(0, spec, 0, &data).unwrap();
            assert!(
                clock.elapsed_ms() > 0.0,
                "{kind}: chunk operations must consume simulated disk time"
            );
        }
    }

    #[test]
    fn stegcover_chunk_reads_cost_an_order_of_magnitude_more_io() {
        let params = WorkloadParams::tiny_test();
        let specs = params.generate_files();

        // Read a handful of chunks so per-pass metadata lookups amortise away
        // and the per-chunk cost difference dominates.
        let chunks_to_read = 8u64;

        let mut clean = build_scheme(SchemeKind::CleanDisk, &params).unwrap();
        clean.prepare(&specs, &params).unwrap();
        let clean_clock = clean.clock();
        clean_clock.reset();
        for chunk in 0..chunks_to_read {
            clean.read_chunk(0, &specs[0], chunk).unwrap();
        }
        let clean_reads = clean_clock.stats().reads;

        let mut cover = build_scheme(SchemeKind::StegCover, &params).unwrap();
        cover.prepare(&specs, &params).unwrap();
        let cover_clock = cover.clock();
        cover_clock.reset();
        for chunk in 0..chunks_to_read {
            cover.read_chunk(0, &specs[0], chunk).unwrap();
        }
        let cover_reads = cover_clock.stats().reads;

        assert!(
            cover_reads >= clean_reads * 8,
            "StegCover issued {cover_reads} reads vs CleanDisk {clean_reads}"
        );
    }

    #[test]
    fn invalid_workload_rejected_at_build() {
        let mut params = WorkloadParams::tiny_test();
        params.users = 0;
        assert!(build_scheme(SchemeKind::CleanDisk, &params).is_err());
    }
}
