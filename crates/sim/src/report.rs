//! Plain-text table rendering for experiment output.

/// Render a fixed-width text table with a header row.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&rule);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    " {:<width$} ",
                    c,
                    width = widths.get(i).copied().unwrap_or(0)
                )
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Format a floating point value with sensible precision for the reports.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let out = format_table(
            "Demo",
            &["scheme", "value"],
            &[
                vec!["StegFS".into(), "1.23".into()],
                vec!["CleanDisk".into(), "0.5".into()],
            ],
        );
        assert!(out.contains("Demo"));
        assert!(out.contains("scheme"));
        assert!(out.contains("StegFS"));
        assert!(out.contains("CleanDisk"));
        assert!(out.contains("1.23"));
        // Header, two rule lines, two data rows, title.
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.12345), "0.1235");
        assert_eq!(fmt_f64(5.4321), "5.43");
        assert_eq!(fmt_f64(123.456), "123.5");
    }
}
