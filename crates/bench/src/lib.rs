//! # stegfs-bench
//!
//! Shared configuration for the benchmark harness.
//!
//! Two kinds of artefacts live in this crate:
//!
//! * the **`repro` binary** (`cargo run -p stegfs-bench --bin repro --release`),
//!   which regenerates every table and figure of the paper's evaluation and
//!   prints them as text tables (see `EXPERIMENTS.md` at the workspace root
//!   for the recorded output and the paper-vs-measured comparison), and
//! * **Criterion benches** (`cargo bench`), one per figure plus
//!   micro-benchmarks of the cryptographic and file-system building blocks
//!   and an ablation bench for StegFS design choices.
//!
//! Benchmarks run at a scaled-down volume by default so that `cargo bench`
//! terminates in minutes; the `repro` binary accepts `--full` for the paper's
//! original 1 GB / 100-file configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use stegfs_sim::WorkloadParams;

/// Workload used by the Criterion benches: small enough to keep a bench run
/// short, large enough that the disk model dominates (which is the regime the
/// paper measures).
pub fn bench_workload() -> WorkloadParams {
    let mut p = WorkloadParams::scaled_quick();
    p.volume_mb = 32;
    p.file_count = 8;
    p.file_size_min = 128 * 1024;
    p.file_size_max = 256 * 1024;
    p
}

/// The user counts swept by the concurrency experiments.
pub const USER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

pub mod attribution;
pub mod bench_json;
pub mod durability;
pub mod engine_scaling;
pub mod readpath;
pub mod survival;
pub mod vfs_scaling;
pub mod writepath;

/// The block sizes swept by the serial-access experiment (bytes).
pub const BLOCK_SIZES: [usize; 8] = [512, 1024, 2048, 4096, 8192, 16384, 32768, 65536];

/// The file sizes swept by the file-size sensitivity experiment (KB).
pub const FILE_SIZES_KB: [u64; 10] = [200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_workload_is_valid() {
        assert!(bench_workload().validate().is_ok());
    }

    #[test]
    fn sweeps_match_the_paper() {
        assert_eq!(USER_COUNTS.to_vec(), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(BLOCK_SIZES[0], 512);
        assert_eq!(*BLOCK_SIZES.last().unwrap(), 64 * 1024);
        assert_eq!(FILE_SIZES_KB[0], 200);
        assert_eq!(*FILE_SIZES_KB.last().unwrap(), 2000);
    }
}
