//! Survivability sweep: write amplification vs survival under damage.
//!
//! Each durability policy buys damage tolerance with extra share blocks:
//! `Replicate(r)` writes every logical block `r` times, `Disperse{m,n}`
//! writes `n` shares per `m` logical blocks.  This sweep prices that trade
//! directly.  For every policy it
//!
//! 1. formats a volume on a [`CorruptingDevice`], creates a working set of
//!    hidden files and measures the **write amplification** actually paid
//!    (physical share blocks per logical data block, padding included);
//! 2. damages a seeded random fraction of all share blocks (mixed bit
//!    flips, zeroed blocks and junk overwrites);
//! 3. runs the keyed scavenger and then re-reads every file, counting how
//!    many come back **byte-identical** — the survival rate.
//!
//! `smoke()` is the CI gate: it pins the exact k-of-n boundary — destroying
//! any `n - m` shares of every group must leave every byte recoverable
//! (warm read *and* offline repair), and destroying one more share must
//! fail closed with no partial plaintext.

use std::fmt::Write as _;
use std::time::Duration;
use stegfs_blockdev::{CorruptingDevice, FlakyDevice, MemBlockDevice, RetryDevice};
use stegfs_core::crypt::ObjectKeys;
use stegfs_core::{hidden, ObjectKind, Policy, StegFs, StegParams};
use stegfs_survival::scavenge;

/// Access key owning the sweep's working set.
const UAK: &str = "survival sweep key";

/// The policies swept, with display labels.
pub const POLICIES: [(&str, Policy); 6] = [
    ("plain", Policy::Plain),
    ("replicate-2", Policy::Replicate(2)),
    ("replicate-3", Policy::Replicate(3)),
    ("disperse-2of3", Policy::Disperse { m: 2, n: 3 }),
    ("disperse-2of4", Policy::Disperse { m: 2, n: 4 }),
    ("disperse-3of5", Policy::Disperse { m: 3, n: 5 }),
];

/// One policy's measured point.
#[derive(Debug, Clone)]
pub struct SurvivalPoint {
    /// Display label of the policy.
    pub policy: &'static str,
    /// Reconstruction threshold (logical blocks per group).
    pub m: usize,
    /// Shares stored per group.
    pub n: usize,
    /// Measured physical share blocks per logical data block.
    pub write_amp: f64,
    /// Hidden files in the working set.
    pub objects: usize,
    /// Share blocks damaged by the injector.
    pub blocks_damaged: usize,
    /// Objects the scavenger repaired in place.
    pub objects_repaired: usize,
    /// Objects the scavenger declared unrecoverable.
    pub objects_lost: usize,
    /// Fraction of objects that read back byte-identical after the
    /// scavenge pass.
    pub survival_rate: f64,
}

fn params(policy: Policy) -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        hidden_policy: policy,
        ..StegParams::for_tests()
    }
}

fn content(index: usize, len: usize) -> Vec<u8> {
    // Deterministic, non-uniform per file so a torn read cannot pass.
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(index as u8))
        .collect()
}

fn build_volume(
    policy: Policy,
    files: usize,
    file_kb: usize,
) -> StegFs<CorruptingDevice<MemBlockDevice>> {
    let dev = CorruptingDevice::new(MemBlockDevice::new(1024, 16384));
    let fs = StegFs::format(dev, params(policy)).expect("format");
    for i in 0..files {
        let name = format!("survival-{i}");
        fs.steg_create(&name, UAK, ObjectKind::File)
            .expect("create");
        fs.write_hidden_with_key(&name, UAK, &content(i, file_kb * 1024))
            .expect("write");
    }
    fs
}

/// Run the sweep: `files` hidden files of `file_kb` KiB per policy, with
/// `damage_frac` of all share blocks damaged (seeded by `seed`).
pub fn run_sweep(files: usize, file_kb: usize, damage_frac: f64, seed: u64) -> Vec<SurvivalPoint> {
    let bs = 1024usize;
    let logical_per_file = (file_kb * 1024).div_ceil(bs);
    POLICIES
        .iter()
        .map(|&(label, policy)| {
            let fs = build_volume(policy, files, file_kb);
            let (m, n) = policy.shares();

            let mut all_shares: Vec<u64> = Vec::new();
            for i in 0..files {
                let groups = fs
                    .hidden_share_extents(&format!("survival-{i}"), UAK)
                    .expect("extents");
                all_shares.extend(groups.into_iter().flatten());
            }
            let write_amp = all_shares.len() as f64 / (files * logical_per_file) as f64;

            let damage_count = ((all_shares.len() as f64) * damage_frac).round() as usize;
            let dev = fs.plain_fs().device().clone();
            dev.corrupt_random_in(&all_shares, damage_count, seed)
                .expect("damage");
            fs.purge_read_caches();

            let report = scavenge(&fs, &[UAK]).expect("scavenge");
            let survived = (0..files)
                .filter(|&i| {
                    fs.read_hidden_with_key(&format!("survival-{i}"), UAK)
                        .is_ok_and(|got| got == content(i, file_kb * 1024))
                })
                .count();

            SurvivalPoint {
                policy: label,
                m,
                n,
                write_amp,
                objects: files,
                blocks_damaged: damage_count,
                objects_repaired: report.objects_repaired,
                objects_lost: report.objects_lost,
                survival_rate: survived as f64 / files as f64,
            }
        })
        .collect()
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The metadata replica groups of `name`: its header-replica set and its
/// head inode-chain replica set, each `n - m + 1` deep for coded policies.
fn metadata_groups(fs: &StegFs<CorruptingDevice<MemBlockDevice>>, name: &str) -> Vec<Vec<u64>> {
    let entry = fs.lookup_entry(name, UAK).expect("entry");
    let keys = ObjectKeys::derive(&entry.physical_name, &entry.fak);
    let obj = hidden::open(fs.plain_fs(), &entry.physical_name, &keys, fs.params()).expect("open");
    let mut groups = Vec::new();
    if obj.header.header_replicas.is_empty() {
        groups.push(vec![obj.header_block]);
    } else {
        groups.push(obj.header.header_replicas.clone());
    }
    if obj.header.inode_chain != stegfs_core::header::NO_BLOCK {
        let mut chain = vec![obj.header.inode_chain];
        chain.extend(obj.header.chain_replicas.iter().copied());
        groups.push(chain);
    }
    groups
}

/// One redundant policy's metadata-damage point: header/chain replicas *and*
/// data shares destroyed within tolerance, healed by the **online**
/// read-repair queue (degraded read → ticket → drain), then verified
/// converged by an offline scavenge pass.
#[derive(Debug, Clone)]
pub struct MetadataPoint {
    /// Display label of the policy.
    pub policy: &'static str,
    /// Reconstruction threshold.
    pub m: usize,
    /// Shares per group.
    pub n: usize,
    /// Hidden files in the working set.
    pub objects: usize,
    /// Header/chain replica blocks destroyed.
    pub metadata_replicas_damaged: usize,
    /// Data share blocks destroyed.
    pub shares_damaged: usize,
    /// Damaged objects whose *live* (degraded) read was byte-identical.
    pub degraded_reads_ok: usize,
    /// Self-healing tickets the degraded reads queued (post-dedup).
    pub repairs_queued: u64,
    /// Tickets that converged in the drain.
    pub repairs_completed: u64,
    /// Tickets that failed in the drain.
    pub repairs_failed: u64,
    /// Objects a post-drain scavenge found fully intact (the online repair
    /// really did restore full redundancy).
    pub scavenge_intact_after: usize,
    /// Objects byte-identical after everything.
    pub byte_identical: usize,
}

/// Run the metadata-damage sweep over every redundant policy (plain has a
/// single header copy and nothing to tolerate, so it is skipped).
pub fn run_metadata_sweep(files: usize, file_kb: usize, seed: u64) -> Vec<MetadataPoint> {
    POLICIES
        .iter()
        .filter(|(_, policy)| !matches!(policy, Policy::Plain))
        .map(|&(label, policy)| {
            let fs = build_volume(policy, files, file_kb);
            let (m, n) = policy.shares();
            let tol = n - m;
            let dev = fs.plain_fs().device().clone();
            let mut rng = seed ^ 0x6d65_7461;
            let mut metadata_replicas_damaged = 0usize;
            let mut shares_damaged = 0usize;
            for i in 0..files {
                let name = format!("survival-{i}");
                for group in metadata_groups(&fs, &name) {
                    let mut pool = group;
                    for _ in 0..tol.min(pool.len().saturating_sub(1)) {
                        let pick = (xorshift(&mut rng) % pool.len() as u64) as usize;
                        dev.zero_block(pool.swap_remove(pick)).expect("zero");
                        metadata_replicas_damaged += 1;
                    }
                }
                for group in fs.hidden_share_extents(&name, UAK).expect("extents") {
                    let mut pool = group;
                    for _ in 0..tol.min(pool.len().saturating_sub(1)) {
                        let pick = (xorshift(&mut rng) % pool.len() as u64) as usize;
                        dev.zero_block(pool.swap_remove(pick)).expect("zero");
                        shares_damaged += 1;
                    }
                }
            }
            fs.purge_read_caches();
            fs.obs().repair.reset();

            let degraded_reads_ok = (0..files)
                .filter(|&i| {
                    fs.read_hidden_with_key(&format!("survival-{i}"), UAK)
                        .is_ok_and(|got| got == content(i, file_kb * 1024))
                })
                .count();
            let _ = fs.process_repairs(files * 2);
            let repairs = fs.obs().repair.summary();

            let report = scavenge(&fs, &[UAK]).expect("scavenge");
            fs.purge_read_caches();
            let byte_identical = (0..files)
                .filter(|&i| {
                    fs.read_hidden_with_key(&format!("survival-{i}"), UAK)
                        .is_ok_and(|got| got == content(i, file_kb * 1024))
                })
                .count();

            MetadataPoint {
                policy: label,
                m,
                n,
                objects: files,
                metadata_replicas_damaged,
                shares_damaged,
                degraded_reads_ok,
                repairs_queued: repairs.queued,
                repairs_completed: repairs.completed,
                repairs_failed: repairs.failed,
                scavenge_intact_after: report.objects_intact,
                byte_identical,
            }
        })
        .collect()
}

/// The transient-fault point: a coded volume over a [`FlakyDevice`] (seeded
/// error-then-succeed streaks) wrapped in a [`RetryDevice`] with a bounded
/// reissue budget.  Flakes must be absorbed by retry — every operation
/// succeeds, nothing is lost, and no submission exhausts its budget.
#[derive(Debug, Clone)]
pub struct TransientPoint {
    /// Submissions that reached the flaky layer (retries included).
    pub device_ops: u64,
    /// Transient faults the injector raised.
    pub faults_injected: u64,
    /// Reissues the retry layer performed.
    pub retries_absorbed: u64,
    /// Submissions that ran out of retry budget (must be 0).
    pub retries_exhausted: u64,
    /// Workload operations (creates+writes+reads) that succeeded.
    pub operations_ok: usize,
    /// Workload operations submitted.
    pub operations_total: usize,
}

/// Run the transient-fault workload: `files` coded hidden files written and
/// read back byte-identically through the flaky/retry stack.
pub fn transient_point(files: usize, file_kb: usize, seed: u64) -> TransientPoint {
    let flaky = FlakyDevice::new(MemBlockDevice::new(1024, 16384), seed, 2, 2);
    let retry = RetryDevice::new(flaky.clone(), 6, Duration::ZERO);
    let fs = StegFs::format(retry.clone(), params(Policy::Disperse { m: 2, n: 4 }))
        .expect("format over flaky device");
    let mut operations_ok = 0usize;
    for i in 0..files {
        let name = format!("transient-{i}");
        if fs.steg_create(&name, UAK, ObjectKind::File).is_ok() {
            operations_ok += 1;
        }
        if fs
            .write_hidden_with_key(&name, UAK, &content(i, file_kb * 1024))
            .is_ok()
        {
            operations_ok += 1;
        }
    }
    fs.purge_read_caches();
    for i in 0..files {
        if fs
            .read_hidden_with_key(&format!("transient-{i}"), UAK)
            .is_ok_and(|got| got == content(i, file_kb * 1024))
        {
            operations_ok += 1;
        }
    }
    TransientPoint {
        device_ops: flaky.ops(),
        faults_injected: flaky.injected(),
        retries_absorbed: retry.retries(),
        retries_exhausted: retry.exhausted(),
        operations_ok,
        operations_total: files * 3,
    }
}

/// Render the metadata-damage sweep as a text table.
pub fn render_metadata(points: &[MetadataPoint]) -> String {
    let mut s = String::from(
        "Metadata survivability (header/chain replicas + shares damaged, online read-repair)\n\
         policy           m/n    meta-dmg   share-dmg   degraded-ok   queued   completed   failed   intact-after\n",
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:<15} {:>2}/{:<2} {:>9} {:>11} {:>13} {:>8} {:>11} {:>8} {:>14}",
            p.policy,
            p.m,
            p.n,
            p.metadata_replicas_damaged,
            p.shares_damaged,
            p.degraded_reads_ok,
            p.repairs_queued,
            p.repairs_completed,
            p.repairs_failed,
            p.scavenge_intact_after,
        );
    }
    s
}

/// Render the transient-fault point.
pub fn render_transient(p: &TransientPoint) -> String {
    format!(
        "Transient faults (FlakyDevice + RetryDevice, Disperse{{2,4}})\n\
         {} device submissions, {} faults injected, {} retries absorbed, {} exhausted; \
         {}/{} operations succeeded\n",
        p.device_ops,
        p.faults_injected,
        p.retries_absorbed,
        p.retries_exhausted,
        p.operations_ok,
        p.operations_total,
    )
}

/// Serialise the metadata sweep to the `survival_metadata` JSON section.
pub fn metadata_section_json(points: &[MetadataPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"m\": {}, \"n\": {}, \"objects\": {}, \
             \"metadata_replicas_damaged\": {}, \"shares_damaged\": {}, \
             \"degraded_reads_ok\": {}, \"repairs_queued\": {}, \
             \"repairs_completed\": {}, \"repairs_failed\": {}, \
             \"scavenge_intact_after\": {}, \"byte_identical\": {}}}{}",
            p.policy,
            p.m,
            p.n,
            p.objects,
            p.metadata_replicas_damaged,
            p.shares_damaged,
            p.degraded_reads_ok,
            p.repairs_queued,
            p.repairs_completed,
            p.repairs_failed,
            p.scavenge_intact_after,
            p.byte_identical,
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    s.push_str("  ]");
    s
}

/// Serialise the transient point to the `survival_transient` JSON section.
pub fn transient_section_json(p: &TransientPoint) -> String {
    format!(
        "{{\n    \"device_ops\": {}, \"faults_injected\": {}, \"retries_absorbed\": {}, \
         \"retries_exhausted\": {}, \"operations_ok\": {}, \"operations_total\": {}\n  }}",
        p.device_ops,
        p.faults_injected,
        p.retries_absorbed,
        p.retries_exhausted,
        p.operations_ok,
        p.operations_total,
    )
}

/// CI smoke: pin the exact k-of-n recovery boundary for `Disperse{2,4}`.
///
/// Destroying any `n - m` shares of *every* group must leave every byte
/// recoverable both by a warm (degraded) read and by offline repair; one
/// more destroyed share in any group must fail closed — a clean error, no
/// partial plaintext.  Returns an error message instead of panicking so
/// `repro` can print context.
pub fn smoke() -> Result<(), String> {
    let policy = Policy::Disperse { m: 2, n: 4 };
    let (m, n) = policy.shares();
    let files = 3usize;
    let file_kb = 8usize;
    let fs = build_volume(policy, files, file_kb);
    let dev = fs.plain_fs().device().clone();

    // Phase 1: exactly n - m shares of every group destroyed.
    for i in 0..files {
        let groups = fs
            .hidden_share_extents(&format!("survival-{i}"), UAK)
            .map_err(|e| format!("extents: {e}"))?;
        for (g, group) in groups.iter().enumerate() {
            for k in 0..(n - m) {
                // Mix the damage modes across groups.
                let victim = group[(g + k) % n];
                if k % 2 == 0 {
                    dev.zero_block(victim).map_err(|e| format!("zero: {e}"))?;
                } else {
                    dev.overwrite_region(victim, 1, victim ^ 0xdead)
                        .map_err(|e| format!("junk: {e}"))?;
                }
            }
        }
    }
    fs.purge_read_caches();

    // Degraded reads must already be byte-identical (checksum fallback).
    for i in 0..files {
        let got = fs
            .read_hidden_with_key(&format!("survival-{i}"), UAK)
            .map_err(|e| format!("degraded read of survival-{i} failed: {e}"))?;
        if got != content(i, file_kb * 1024) {
            return Err(format!(
                "degraded read of survival-{i} is not byte-identical"
            ));
        }
    }

    // Offline repair must rebuild every destroyed share and leave nothing
    // lost; afterwards reads come from fully healed groups.
    let report = scavenge(&fs, &[UAK]).map_err(|e| format!("scavenge: {e}"))?;
    if !report.all_recovered() || report.objects_repaired != files {
        return Err(format!("scavenge did not repair everything: {report:?}"));
    }
    fs.purge_read_caches();
    for i in 0..files {
        let got = fs
            .read_hidden_with_key(&format!("survival-{i}"), UAK)
            .map_err(|e| format!("post-repair read of survival-{i} failed: {e}"))?;
        if got != content(i, file_kb * 1024) {
            return Err(format!(
                "post-repair read of survival-{i} is not byte-identical"
            ));
        }
    }

    // Phase 2: one more share destroyed in one group of file 0 — beyond
    // tolerance.  The read must fail closed and the scavenger must report
    // the object lost without writing anything.
    let groups = fs
        .hidden_share_extents("survival-0", UAK)
        .map_err(|e| format!("extents: {e}"))?;
    for &b in groups[0].iter().take(n - m + 1) {
        dev.zero_block(b).map_err(|e| format!("zero: {e}"))?;
    }
    fs.purge_read_caches();
    match fs.read_hidden_with_key("survival-0", UAK) {
        Ok(_) => return Err("read beyond tolerance returned data".into()),
        Err(e) => {
            let msg = e.to_string();
            if !msg.contains("live shares") {
                return Err(format!("expected a fail-closed share error, got: {msg}"));
            }
        }
    }
    let report = scavenge(&fs, &[UAK]).map_err(|e| format!("scavenge: {e}"))?;
    if report.objects_lost != 1 || report.lost != vec!["survival-0".to_string()] {
        return Err(format!("expected exactly survival-0 lost: {report:?}"));
    }
    // The other files are untouched by the second round of damage.
    for i in 1..files {
        let got = fs
            .read_hidden_with_key(&format!("survival-{i}"), UAK)
            .map_err(|e| format!("bystander read of survival-{i} failed: {e}"))?;
        if got != content(i, file_kb * 1024) {
            return Err(format!("bystander survival-{i} is not byte-identical"));
        }
    }

    // Phase 3: metadata damage within tolerance on survival-1 — n-m header
    // replicas and n-m chain replicas destroyed.  The live read must be
    // byte-identical, must queue a self-healing ticket, and the drain must
    // restore full redundancy (a scavenge pass then finds the object
    // intact).
    // Drain tickets queued by the earlier phases (including survival-0's,
    // which is lost and fails) so the counters below see only this phase.
    // This must happen before the damage: a leftover survival-1 ticket
    // would otherwise heal the freshly-zeroed replicas during the drain.
    let _ = fs.process_repairs(usize::MAX);
    fs.obs().repair.reset();
    let dev2 = fs.plain_fs().device().clone();
    let groups = metadata_groups(&fs, "survival-1");
    for group in &groups {
        for &b in group.iter().take(n - m) {
            dev2.zero_block(b).map_err(|e| format!("zero meta: {e}"))?;
        }
    }
    fs.purge_read_caches();
    let got = fs
        .read_hidden_with_key("survival-1", UAK)
        .map_err(|e| format!("metadata-degraded read failed: {e}"))?;
    if got != content(1, file_kb * 1024) {
        return Err("metadata-degraded read is not byte-identical".into());
    }
    let drain = fs.process_repairs(8);
    let repairs = fs.obs().repair.summary();
    if repairs.queued < 1 || repairs.failed != 0 || repairs.completed != repairs.queued {
        return Err(format!(
            "read-repair counters off after metadata damage: {repairs:?} (drain {drain:?})"
        ));
    }
    let entry = fs
        .lookup_entry("survival-1", UAK)
        .map_err(|e| format!("entry: {e}"))?;
    match fs.scavenge_entry(&entry) {
        Ok(stegfs_core::RepairOutcome::Intact) => {}
        other => {
            return Err(format!(
                "online repair left survival-1 not fully redundant: {other:?}"
            ))
        }
    }

    // Phase 4: metadata damage beyond tolerance on survival-2 — every
    // header replica destroyed.  The read must fail closed in the deniable
    // absent-object family and the scavenger must report it lost.
    for &b in &metadata_groups(&fs, "survival-2")[0] {
        dev2.zero_block(b)
            .map_err(|e| format!("zero header: {e}"))?;
    }
    fs.purge_read_caches();
    match fs.read_hidden_with_key("survival-2", UAK) {
        Ok(_) => return Err("read with destroyed header returned data".into()),
        Err(e) if e.is_not_found() => {}
        Err(e) => return Err(format!("expected the absent-object family, got: {e}")),
    }
    let report = scavenge(&fs, &[UAK]).map_err(|e| format!("scavenge: {e}"))?;
    if report.objects_lost != 2 || !report.lost.contains(&"survival-2".to_string()) {
        return Err(format!(
            "expected survival-0 and survival-2 lost after metadata destruction: {report:?}"
        ));
    }
    Ok(())
}

/// Operator-facing walk-through of the offline scavenger: build a coded
/// volume, damage it, repair it in place, and narrate the result.  This is
/// what `repro --scavenge` prints.
pub fn scavenge_demo() -> String {
    let mut s =
        String::from("Offline scavenge demo (Disperse{m:2, n:4}, damage then keyed repair)\n");
    let policy = Policy::Disperse { m: 2, n: 4 };
    let files = 4usize;
    let file_kb = 16usize;
    let fs = build_volume(policy, files, file_kb);
    let dev = fs.plain_fs().device().clone();

    let mut all_shares: Vec<u64> = Vec::new();
    for i in 0..files {
        let groups = fs
            .hidden_share_extents(&format!("survival-{i}"), UAK)
            .expect("extents");
        all_shares.extend(groups.into_iter().flatten());
    }
    let damage = dev
        .corrupt_random_in(&all_shares, all_shares.len() / 5, 0xda_ba_9e)
        .expect("damage");
    fs.purge_read_caches();
    let _ = writeln!(
        s,
        "damaged {} of {} share blocks ({} bit-rotted, {} zeroed, {} overwritten)",
        damage.blocks_damaged(),
        all_shares.len(),
        damage.blocks_bitflipped,
        damage.blocks_zeroed,
        damage.blocks_overwritten,
    );

    let report = scavenge(&fs, &[UAK]).expect("scavenge");
    let _ = writeln!(
        s,
        "scavenge: {} scanned, {} intact, {} repaired ({} shares rewritten), {} lost",
        report.objects_scanned,
        report.objects_intact,
        report.objects_repaired,
        report.shares_rewritten,
        report.objects_lost,
    );
    for name in &report.lost {
        let _ = writeln!(s, "  lost: {name}");
    }
    let survived = (0..files)
        .filter(|&i| {
            fs.read_hidden_with_key(&format!("survival-{i}"), UAK)
                .is_ok_and(|got| got == content(i, file_kb * 1024))
        })
        .count();
    let _ = writeln!(
        s,
        "post-repair verification: {survived}/{files} byte-identical"
    );
    s
}

/// Render the sweep as a text table.
pub fn render(points: &[SurvivalPoint]) -> String {
    let mut s = String::from(
        "Survivability sweep (randomized share damage, then keyed scavenge)\n\
         policy           m/n    write-amp   objects   damaged   repaired   lost   survival\n",
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:<15} {:>2}/{:<2} {:>10.2} {:>9} {:>9} {:>10} {:>6} {:>9.0}%",
            p.policy,
            p.m,
            p.n,
            p.write_amp,
            p.objects,
            p.blocks_damaged,
            p.objects_repaired,
            p.objects_lost,
            p.survival_rate * 100.0,
        );
    }
    s
}

/// Serialise the sweep to the `survival` JSON section (an array; the caller
/// merges it into `BENCH.json` next to the other sections).
pub fn section_json(points: &[SurvivalPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"m\": {}, \"n\": {}, \"write_amp\": {:.3}, \
             \"objects\": {}, \"blocks_damaged\": {}, \"objects_repaired\": {}, \
             \"objects_lost\": {}, \"survival_rate\": {:.3}}}{}",
            p.policy,
            p.m,
            p.n,
            p.write_amp,
            p.objects,
            p.blocks_damaged,
            p.objects_repaired,
            p.objects_lost,
            p.survival_rate,
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    s.push_str("  ]");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pins_the_recovery_boundary() {
        smoke().unwrap();
    }

    #[test]
    fn tiny_sweep_orders_policies_sanely() {
        let points = run_sweep(2, 4, 0.12, 99);
        assert_eq!(points.len(), POLICIES.len());
        let by = |name: &str| points.iter().find(|p| p.policy == name).unwrap();
        // Amplification reflects the policy (padding can only raise it).
        assert!((by("plain").write_amp - 1.0).abs() < 0.01);
        assert!(by("replicate-2").write_amp >= 2.0);
        assert!(by("disperse-2of4").write_amp >= 2.0);
        assert!(by("disperse-2of3").write_amp < by("replicate-2").write_amp);
        // Redundant policies must not survive worse than plain under the
        // same damage fraction (plain repairs nothing by construction).
        assert_eq!(by("plain").objects_repaired, 0);
    }

    #[test]
    fn section_json_is_well_formed_enough() {
        let json = section_json(&run_sweep(1, 2, 0.1, 7));
        assert!(json.contains("\"policy\": \"disperse-2of4\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "survival", &json);
        assert!(merged.contains("\"survival\""));
    }
}
