//! `repro` — regenerate the tables and figures of the StegFS paper.
//!
//! ```text
//! repro [--full] [--smoke] [--table N] [--fig N] [--space-summary]
//!       [--vfs-scaling] [--engine-scaling] [--readpath] [--writepath]
//!       [--survival] [--scavenge] [--attribution] [--trace-export [PATH]]
//!       [--all]
//! ```
//!
//! With no arguments (or `--all`) every artefact is produced.  The default
//! scale is a 64 MB volume with proportionally scaled files, which reproduces
//! the *shapes* of every figure in a couple of minutes; `--full` switches to
//! the paper's 1 GB / 100 × (1–2 MB) configuration (expect a long run).

use stegfs_sim::experiments::{
    figure6, figure7, figure8, figure9, render_access_rows, render_figure6, render_space_summary,
    space_summary, tables,
};
use stegfs_sim::WorkloadParams;

struct Options {
    full: bool,
    smoke: bool,
    tables: bool,
    figures: Vec<u32>,
    space: bool,
    vfs_scaling: bool,
    engine_scaling: bool,
    durability: bool,
    readpath: bool,
    writepath: bool,
    survival: bool,
    scavenge_demo: bool,
    attribution: bool,
    trace_export: Option<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        full: false,
        smoke: false,
        tables: false,
        figures: Vec::new(),
        space: false,
        vfs_scaling: false,
        engine_scaling: false,
        durability: false,
        readpath: false,
        writepath: false,
        survival: false,
        scavenge_demo: false,
        attribution: false,
        trace_export: None,
    };
    let mut any_selection = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.full = true,
            "--smoke" => opts.smoke = true,
            "--all" => {
                opts.tables = true;
                opts.figures = vec![6, 7, 8, 9];
                opts.space = true;
                opts.vfs_scaling = true;
                opts.engine_scaling = true;
                opts.durability = true;
                opts.readpath = true;
                opts.writepath = true;
                opts.survival = true;
                opts.attribution = true;
                any_selection = true;
            }
            "--table" => {
                opts.tables = true;
                any_selection = true;
                i += 1; // the table number is accepted but all four print together
            }
            "--tables" => {
                opts.tables = true;
                any_selection = true;
            }
            "--fig" | "--figure" => {
                i += 1;
                let n = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--fig requires a number (6-9)"));
                opts.figures.push(n);
                any_selection = true;
            }
            "--space-summary" => {
                opts.space = true;
                any_selection = true;
            }
            "--vfs-scaling" => {
                opts.vfs_scaling = true;
                any_selection = true;
            }
            "--engine-scaling" => {
                opts.engine_scaling = true;
                any_selection = true;
            }
            "--durability" => {
                opts.durability = true;
                any_selection = true;
            }
            "--readpath" => {
                opts.readpath = true;
                any_selection = true;
            }
            "--writepath" => {
                opts.writepath = true;
                any_selection = true;
            }
            "--survival" => {
                opts.survival = true;
                any_selection = true;
            }
            "--scavenge" => {
                opts.scavenge_demo = true;
                any_selection = true;
            }
            "--attribution" => {
                opts.attribution = true;
                any_selection = true;
            }
            "--trace-export" => {
                // Optional PATH operand; defaults to TRACE.json.
                let path = match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "TRACE.json".to_string(),
                };
                opts.trace_export = Some(path);
                any_selection = true;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if !any_selection {
        opts.tables = true;
        opts.figures = vec![6, 7, 8, 9];
        opts.space = true;
        opts.vfs_scaling = true;
        opts.engine_scaling = true;
        opts.durability = true;
        opts.readpath = true;
        opts.writepath = true;
        opts.survival = true;
        opts.attribution = true;
    }
    opts
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [--full] [--smoke] [--all] [--tables] [--fig N]... [--space-summary]\n\
         \t[--vfs-scaling] [--engine-scaling] [--durability] [--readpath]\n\
         \t[--writepath] [--survival] [--scavenge] [--attribution]\n\
         \t[--trace-export [PATH]]\n\
         \n\
         Regenerates the tables and figures of 'StegFS: A Steganographic File\n\
         System' (Pang, Tan, Zhou — ICDE 2003).  Default scale is a 64 MB\n\
         volume; --full uses the paper's 1 GB configuration; --smoke shrinks\n\
         the scaling sweeps to a seconds-long CI-sized run."
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// One `percentiles` entry: a sweep point's latency distribution, keyed by
/// the sweep it came from.  Collected across whichever sweeps ran and merged
/// into `BENCH.json` as one section so CI can assert on it.
struct PercentileEntry {
    sweep: &'static str,
    concurrency: usize,
    op: &'static str,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentiles_json(entries: &[PercentileEntry]) -> String {
    let mut s = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"sweep\": \"{}\", \"concurrency\": {}, \"op\": \"{}\", \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            e.sweep,
            e.concurrency,
            e.op,
            e.p50_ms,
            e.p99_ms,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    s
}

fn main() {
    let opts = parse_args();
    let mut percentiles: Vec<PercentileEntry> = Vec::new();

    let (params, fig6_volume_mb, fig6_trials, space_volume_mb) = if opts.full {
        (WorkloadParams::paper_defaults(), 1024, 3, 1024)
    } else {
        (WorkloadParams::scaled_quick(), 128, 2, 64)
    };

    println!(
        "StegFS reproduction — {} scale",
        if opts.full {
            "paper (1 GB)"
        } else {
            "scaled (64-128 MB)"
        }
    );
    println!("================================================================");
    println!();

    if opts.tables {
        println!("{}", tables());
    }

    for fig in &opts.figures {
        match fig {
            6 => {
                let rows = figure6(fig6_volume_mb, fig6_trials, params.seed);
                println!("{}", render_figure6(&rows));
            }
            7 => {
                let user_counts = [1usize, 2, 4, 8, 16, 32];
                match figure7(&params, &user_counts) {
                    Ok(rows) => println!(
                        "{}",
                        render_access_rows(
                            "Figure 7: multiple concurrent users",
                            "users",
                            &rows,
                            false
                        )
                    ),
                    Err(e) => eprintln!("figure 7 failed: {e}"),
                }
            }
            8 => {
                // File sizes scaled with the volume: the paper sweeps
                // 200..2000 KB on a 1 GB volume.
                let sizes: Vec<u64> = if opts.full {
                    vec![200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000]
                } else {
                    vec![64, 128, 192, 256, 320, 384, 448, 512]
                };
                match figure8(&params, &sizes, 8) {
                    Ok(rows) => println!(
                        "{}",
                        render_access_rows(
                            "Figure 8: sensitivity to file size (8 users)",
                            "file size (KB)",
                            &rows,
                            true
                        )
                    ),
                    Err(e) => eprintln!("figure 8 failed: {e}"),
                }
            }
            9 => {
                let block_sizes = [512usize, 1024, 2048, 4096, 8192, 16384, 32768, 65536];
                match figure9(&params, &block_sizes) {
                    Ok(rows) => println!(
                        "{}",
                        render_access_rows(
                            "Figure 9: serial file operations (1 user)",
                            "block size (KB)",
                            &rows,
                            false
                        )
                    ),
                    Err(e) => eprintln!("figure 9 failed: {e}"),
                }
            }
            other => eprintln!("unknown figure {other} (expected 6-9)"),
        }
    }

    if opts.space {
        match space_summary(space_volume_mb, params.seed) {
            Ok(rows) => println!("{}", render_space_summary(&rows)),
            Err(e) => eprintln!("space summary failed: {e}"),
        }
    }

    if opts.vfs_scaling {
        // Thread-scaling sweep through the shared-reference VFS front-end:
        // disjoint-object throughput should rise with thread count now that
        // the global volume write lock is gone.  The trajectory is recorded
        // in BENCH.json so successive PRs can be compared.
        let (ops_per_thread, counts): (usize, &[usize]) = if opts.smoke {
            (8, &[1, 4])
        } else if opts.full {
            (256, &stegfs_bench::vfs_scaling::THREAD_COUNTS)
        } else {
            (64, &stegfs_bench::vfs_scaling::THREAD_COUNTS)
        };
        let points = stegfs_bench::vfs_scaling::run_sweep_over(ops_per_thread, counts);
        println!("{}", stegfs_bench::vfs_scaling::render(&points));
        percentiles.extend(points.iter().map(|p| PercentileEntry {
            sweep: "vfs_scaling",
            concurrency: p.threads,
            op: p.op,
            p50_ms: p.p50_us / 1000.0,
            p99_ms: p.p99_us / 1000.0,
        }));
        let section = stegfs_bench::vfs_scaling::section_json(&points);
        match stegfs_bench::bench_json::update_file("BENCH.json", "vfs_scaling", &section) {
            Ok(()) => println!(
                "merged vfs_scaling into BENCH.json ({} points)",
                points.len()
            ),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
    }

    if opts.engine_scaling {
        // Worker-scaling sweep through the request engine: the same
        // LatencyDevice configuration as the VFS sweep, but requests flow
        // from 12 depth-1 clients through the engine's queue and worker
        // pool, and the batched I/O path serves each ~64 KiB operation with
        // one overlapped device submission.
        use stegfs_bench::engine_scaling as es;
        let (clients, ops_per_client, counts): (usize, usize, &[usize]) = if opts.smoke {
            (4, 4, &[1, 4])
        } else if opts.full {
            (es::CLIENTS, 128, &es::WORKER_COUNTS)
        } else {
            (es::CLIENTS, 32, &es::WORKER_COUNTS)
        };
        let sweep = es::run_sweep(clients, ops_per_client, counts);
        println!("{}", es::render(&sweep.points));
        percentiles.extend(sweep.points.iter().map(|p| PercentileEntry {
            sweep: "engine_scaling",
            concurrency: p.workers,
            op: p.op,
            p50_ms: p.p50_ms,
            p99_ms: p.p99_ms,
        }));
        let section = es::section_json(&sweep.points);
        match stegfs_bench::bench_json::update_file("BENCH.json", "engine_scaling", &section) {
            Ok(()) => println!(
                "merged engine_scaling into BENCH.json ({} points)",
                sweep.points.len()
            ),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
        if !sweep.contention.is_empty() {
            for contention in &sweep.contention {
                let (source, wait_ns) = contention.dominant();
                println!(
                    "contention profile ({} @ {} workers): dominant wait source {} ({:.1} ms total wait)",
                    contention.op,
                    contention.workers,
                    source,
                    wait_ns as f64 / 1e6
                );
            }
            match stegfs_bench::bench_json::update_file(
                "BENCH.json",
                "contention",
                &es::contention_section_json(&sweep.contention),
            ) {
                Ok(()) => println!(
                    "merged contention into BENCH.json ({} passes)",
                    sweep.contention.len()
                ),
                Err(e) => eprintln!("could not write BENCH.json: {e}"),
            }
        }
    }

    if opts.readpath {
        // Read-path cache sweep: disabled / cold / warm whole-file hidden
        // reads on the standard LatencyDevice.  Warm rounds must beat cold
        // rounds by well over the 1.5x acceptance bar; the hit/miss deltas
        // land in BENCH.json alongside the throughput.
        use stegfs_bench::readpath as rp;
        let (files, rounds) = if opts.smoke {
            (4, 2)
        } else if opts.full {
            (rp::FILES, 2 * rp::ROUNDS)
        } else {
            (rp::FILES, rp::ROUNDS)
        };
        let points = rp::run_sweep(files, rounds);
        println!("{}", rp::render(&points));
        let section = rp::section_json(&points);
        match stegfs_bench::bench_json::update_file("BENCH.json", "readpath", &section) {
            Ok(()) => println!("merged readpath into BENCH.json ({} points)", points.len()),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
    }

    if opts.writepath {
        // Write-path sweep: cold vs warm-chain full rewrites (the
        // cache-aware write path) and sharded vs globally serialized
        // disjoint rewrites (the sharded allocator vs the old single-lock
        // baseline).  Both phases land in BENCH.json as `writepath`, and
        // the rewrite percentiles join the `percentiles` section CI
        // asserts on.
        use stegfs_bench::writepath as wp;
        let (rounds, ops_per_thread, counts): (usize, usize, &[usize]) = if opts.smoke {
            (6, 4, &[1, 4])
        } else if opts.full {
            (64, 48, &wp::THREAD_COUNTS)
        } else {
            (24, 16, &wp::THREAD_COUNTS)
        };
        let points = wp::run_sweep(rounds, ops_per_thread, counts);
        println!("{}", wp::render(&points));
        percentiles.extend(
            points
                .iter()
                .filter(|p| p.phase == "rewrite" || p.variant == "sharded")
                .map(|p| PercentileEntry {
                    sweep: "writepath",
                    concurrency: p.threads,
                    op: p.variant,
                    p50_ms: p.p50_us / 1000.0,
                    p99_ms: p.p99_us / 1000.0,
                }),
        );
        let section = wp::section_json(&points);
        match stegfs_bench::bench_json::update_file("BENCH.json", "writepath", &section) {
            Ok(()) => println!("merged writepath into BENCH.json ({} points)", points.len()),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
    }

    if opts.durability {
        // Durability sweep: the same engine workload over three stacks —
        // no journal (write-through), journal + write-through cache, and
        // journal + write-back cache with group commit — on a LatencyDevice
        // that prices the flush barrier.  Write-back + group commit must
        // recover most of the unjournaled throughput while staying
        // crash-consistent.
        use stegfs_bench::durability as dur;
        let (clients, ops_per_client, workers) = if opts.smoke {
            (4, 6, 4)
        } else if opts.full {
            (dur::CLIENTS, 96, dur::WORKERS)
        } else {
            (dur::CLIENTS, 48, dur::WORKERS)
        };
        let points = dur::run_sweep(clients, ops_per_client, workers);
        println!("{}", dur::render(&points));
        let section = dur::section_json(&points);
        match stegfs_bench::bench_json::update_file("BENCH.json", "durability", &section) {
            Ok(()) => println!(
                "merged durability into BENCH.json ({} points)",
                points.len()
            ),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
    }

    if opts.survival {
        // Survivability sweep: write amplification vs survival rate under
        // randomized share damage, one point per durability policy, with an
        // offline scavenge pass between damage and the verdict reads.  The
        // smoke variant additionally pins the exact k-of-n boundary
        // (destroy n-m shares per group -> byte-identical; one more ->
        // fail closed), which is what CI asserts on.
        use stegfs_bench::survival as sv;
        if opts.smoke {
            match sv::smoke() {
                Ok(()) => println!("survival smoke: k-of-n boundary holds (recover at n-m losses, fail closed beyond)"),
                Err(e) => {
                    eprintln!("survival smoke FAILED: {e}");
                    std::process::exit(1);
                }
            }
        }
        let (files, file_kb, damage_frac) = if opts.smoke {
            (2, 4, 0.12)
        } else if opts.full {
            (12, 64, 0.15)
        } else {
            (6, 32, 0.15)
        };
        let points = sv::run_sweep(files, file_kb, damage_frac, 0x5743_2003);
        println!("{}", sv::render(&points));
        let section = sv::section_json(&points);
        match stegfs_bench::bench_json::update_file("BENCH.json", "survival", &section) {
            Ok(()) => println!("merged survival into BENCH.json ({} points)", points.len()),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }

        // Metadata-damage sweep: header/chain replicas and data shares
        // destroyed within tolerance per coded policy, healed by the online
        // read-repair queue and verified converged by a scavenge pass.
        let meta_points = sv::run_metadata_sweep(files, file_kb, 0x4d45_5441);
        println!("{}", sv::render_metadata(&meta_points));
        let section = sv::metadata_section_json(&meta_points);
        match stegfs_bench::bench_json::update_file("BENCH.json", "survival_metadata", &section) {
            Ok(()) => println!(
                "merged survival_metadata into BENCH.json ({} points)",
                meta_points.len()
            ),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }

        // Transient-fault point: a FlakyDevice injecting error-then-succeed
        // streaks under a RetryDevice that must absorb every one of them.
        let transient = sv::transient_point(files, file_kb, 0x464c_4159);
        println!("{}", sv::render_transient(&transient));
        let section = sv::transient_section_json(&transient);
        match stegfs_bench::bench_json::update_file("BENCH.json", "survival_transient", &section) {
            Ok(()) => println!("merged survival_transient into BENCH.json"),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
    }

    if opts.attribution {
        // Phase-attribution pass: the durability sweep's journaled
        // write-back configuration with causal span tracing on, rolled up
        // into a per-request-type table of where the latency went
        // (queue wait, shard locks, journal staging, the commit gate's
        // group flush, raw device time, crypto, cache hits/misses).
        use stegfs_bench::attribution as attr;
        let (clients, ops_per_client, workers) = if opts.smoke {
            (4, 8, 4)
        } else if opts.full {
            (12, 96, 8)
        } else {
            (12, 48, 8)
        };
        let run = attr::run(clients, ops_per_client, workers);
        println!("{}", attr::render(&run));
        let section = attr::section_json(&run);
        match stegfs_bench::bench_json::update_file("BENCH.json", "attribution", &section) {
            Ok(()) => println!(
                "merged attribution into BENCH.json ({} request types)",
                run.ops.len()
            ),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
    }

    if let Some(path) = &opts.trace_export {
        // Chrome-trace export: the attribution workload again, but with the
        // whole-tree capture buffer active; the result loads directly into
        // chrome://tracing or ui.perfetto.dev.
        use stegfs_bench::attribution as attr;
        let (clients, ops_per_client, workers) = if opts.smoke { (4, 8, 4) } else { (8, 24, 8) };
        let (json, dropped) = attr::trace_export(clients, ops_per_client, workers, 65536);
        match std::fs::write(path, &json) {
            Ok(()) => println!(
                "wrote chrome trace to {path} ({} bytes, {} events dropped)",
                json.len(),
                dropped
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    if opts.scavenge_demo {
        // Offline scavenger walk-through: damage a coded volume beyond what
        // a plain one could take, then repair it in place and print the
        // report — the operator-facing view of `stegfs_survival::scavenge`.
        use stegfs_bench::survival as sv;
        println!("{}", sv::scavenge_demo());
    }

    if !percentiles.is_empty() {
        let section = percentiles_json(&percentiles);
        match stegfs_bench::bench_json::update_file("BENCH.json", "percentiles", &section) {
            Ok(()) => println!(
                "merged percentiles into BENCH.json ({} entries)",
                percentiles.len()
            ),
            Err(e) => eprintln!("could not write BENCH.json: {e}"),
        }
    }
}
