//! Cold-vs-warm sweep of the hidden-object read path.
//!
//! PR 3 batched the device I/O and PR 4 made writes crash-consistent; the
//! read path still paid full price on every access — locator walk, chain
//! decryption, per-block AES — no matter how recently the same object was
//! read.  The read-path cache (`stegfs_core::readcache`) removes that
//! redundancy *within a signed-on session*; this sweep measures exactly
//! that seam, on the same [`LatencyDevice`] configuration as the
//! `vfs_scaling` / `engine_scaling` sections so the numbers are directly
//! comparable:
//!
//! * **disabled** — the cache switched off (`readpath_cache_blocks: 0`),
//!   i.e. the pre-cache behaviour.
//! * **cold** — cache on, but every round runs in a fresh session (sign-off
//!   purges everything), so every read misses.  This is the price of the
//!   deniability rule "no plaintext outlives its session".
//! * **warm** — cache on, one long-lived session, a priming round, then
//!   measured rounds that hit.
//!
//! Each op is a whole-file positional read of a ~64 KiB hidden file through
//! the VFS.  The pass rows carry the cache hit/miss deltas next to the
//! throughput, and `repro --readpath` merges the result into `BENCH.json`
//! as the `readpath` section.

use crate::vfs_scaling::BLOCK_LATENCY;
use std::sync::Arc;
use std::time::Instant;
use stegfs_blockdev::{LatencyDevice, MemBlockDevice};
use stegfs_core::{CacheStats, StegParams};
use stegfs_vfs::{OpenOptions, Vfs};

/// The device behind the sweep (shared with the VFS/engine sweeps).
pub type SweepDevice = LatencyDevice<MemBlockDevice>;

/// Default number of hidden files in the working set.
pub const FILES: usize = 12;

/// Size of each file in KiB (one whole-file read per op).
pub const FILE_KB: usize = 64;

/// Default measured rounds over the whole working set.
pub const ROUNDS: usize = 16;

/// One measured pass of the sweep.
#[derive(Debug, Clone)]
pub struct ReadpathPoint {
    /// `"disabled"`, `"cold"` or `"warm"`.
    pub pass: &'static str,
    /// Whole-file reads per second.
    pub ops_per_sec: f64,
    /// Total reads in the pass.
    pub total_ops: u64,
    /// Wall-clock time of the pass, in milliseconds.
    pub elapsed_ms: f64,
    /// Cache-counter deltas over the pass.
    pub header_hits: u64,
    /// Header lookups that walked the locator.
    pub header_misses: u64,
    /// Extent-map hits (chain walk skipped).
    pub extent_hits: u64,
    /// Extent-map misses (chain walked).
    pub extent_misses: u64,
    /// Plaintext blocks served from RAM.
    pub block_hits: u64,
    /// Plaintext blocks read and decrypted.
    pub block_misses: u64,
}

fn params(cache_blocks: usize) -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        readpath_cache_blocks: cache_blocks,
        ..StegParams::for_tests()
    }
}

fn file_path(i: usize) -> String {
    format!("/hidden/readpath-{i}")
}

fn build_volume(cache_blocks: usize, files: usize) -> Arc<Vfs<SweepDevice>> {
    let dev = LatencyDevice::symmetric(MemBlockDevice::with_capacity_mb(1024, 48), BLOCK_LATENCY);
    let vfs = Vfs::format(dev, params(cache_blocks)).expect("format");
    let s = vfs.signon("readpath key");
    for i in 0..files {
        let h = vfs
            .open(s, &file_path(i), OpenOptions::read_write())
            .expect("open");
        vfs.write_at(h, 0, &vec![i as u8; FILE_KB * 1024])
            .expect("prefill");
        vfs.close(h).expect("close");
    }
    vfs.signoff(s).expect("signoff");
    Arc::new(vfs)
}

/// Read every file once through `session`-scoped handles; returns the op
/// count.
fn read_round(vfs: &Vfs<SweepDevice>, files: usize) -> u64 {
    let s = vfs.signon("readpath key");
    let mut ops = 0u64;
    for i in 0..files {
        let h = vfs
            .open(s, &file_path(i), OpenOptions::read_only())
            .expect("open");
        let data = vfs.read_at(h, 0, FILE_KB * 1024).expect("read");
        assert_eq!(data.len(), FILE_KB * 1024);
        vfs.close(h).expect("close");
        ops += 1;
    }
    vfs.signoff(s).expect("signoff");
    ops
}

/// As [`read_round`] but inside one already-open session (no purge).
fn read_round_in_session(
    vfs: &Vfs<SweepDevice>,
    session: stegfs_vfs::SessionId,
    files: usize,
) -> u64 {
    let mut ops = 0u64;
    for i in 0..files {
        let h = vfs
            .open(session, &file_path(i), OpenOptions::read_only())
            .expect("open");
        let data = vfs.read_at(h, 0, FILE_KB * 1024).expect("read");
        assert_eq!(data.len(), FILE_KB * 1024);
        vfs.close(h).expect("close");
        ops += 1;
    }
    ops
}

fn delta(after: &CacheStats, before: &CacheStats, point: &mut ReadpathPoint) {
    point.header_hits = after.header_hits - before.header_hits;
    point.header_misses = after.header_misses - before.header_misses;
    point.extent_hits = after.extent_hits - before.extent_hits;
    point.extent_misses = after.extent_misses - before.extent_misses;
    point.block_hits = after.block_hits - before.block_hits;
    point.block_misses = after.block_misses - before.block_misses;
}

fn blank(pass: &'static str, total_ops: u64, elapsed_ms: f64) -> ReadpathPoint {
    ReadpathPoint {
        pass,
        ops_per_sec: total_ops as f64 / (elapsed_ms / 1000.0),
        total_ops,
        elapsed_ms,
        header_hits: 0,
        header_misses: 0,
        extent_hits: 0,
        extent_misses: 0,
        block_hits: 0,
        block_misses: 0,
    }
}

/// Run the three passes; `files` hidden files of [`FILE_KB`] KiB, `rounds`
/// measured rounds each.
pub fn run_sweep(files: usize, rounds: usize) -> Vec<ReadpathPoint> {
    let mut out = Vec::new();

    // Pass 1: cache disabled — the pre-cache read path, every time.
    {
        let vfs = build_volume(0, files);
        read_round(&vfs, files); // device warm-up, no cache to warm
        let start = Instant::now();
        let mut ops = 0;
        for _ in 0..rounds {
            ops += read_round(&vfs, files);
        }
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        out.push(blank("disabled", ops, elapsed));
    }

    // Pass 2 + 3 share a volume: cold rounds (fresh session per round, so
    // sign-off purges between rounds) then warm rounds (one session, primed).
    let vfs = build_volume(StegParams::default().readpath_cache_blocks, files);
    {
        let before = vfs.cache_stats();
        let start = Instant::now();
        let mut ops = 0;
        for _ in 0..rounds {
            ops += read_round(&vfs, files);
        }
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        let mut point = blank("cold", ops, elapsed);
        delta(&vfs.cache_stats(), &before, &mut point);
        out.push(point);
    }
    {
        let s = vfs.signon("readpath key");
        read_round_in_session(&vfs, s, files); // priming round
        let before = vfs.cache_stats();
        let start = Instant::now();
        let mut ops = 0;
        for _ in 0..rounds {
            ops += read_round_in_session(&vfs, s, files);
        }
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        let mut point = blank("warm", ops, elapsed);
        delta(&vfs.cache_stats(), &before, &mut point);
        out.push(point);
        vfs.signoff(s).expect("signoff");
        // The sign-off purge is part of the contract: nothing stays resident.
        assert_eq!(vfs.cache_stats().resident_blocks, 0);
    }
    out
}

/// Render the sweep as a text table.
pub fn render(points: &[ReadpathPoint]) -> String {
    let mut s = String::from(
        "Read-path cache sweep (~64 KB whole-file hidden reads, 1 thread)\n\
         pass         ops/sec   elapsed(ms)   hdr hit/miss   ext hit/miss   blk hit/miss\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:<9} {:>10.0} {:>13.1} {:>8}/{:<6} {:>8}/{:<6} {:>8}/{:<6}\n",
            p.pass,
            p.ops_per_sec,
            p.elapsed_ms,
            p.header_hits,
            p.header_misses,
            p.extent_hits,
            p.extent_misses,
            p.block_hits,
            p.block_misses,
        ));
    }
    let warm = points.iter().find(|p| p.pass == "warm");
    let cold = points.iter().find(|p| p.pass == "cold");
    if let (Some(w), Some(c)) = (warm, cold) {
        s.push_str(&format!(
            "warm/cold speed-up: {:.1}x\n",
            w.ops_per_sec / c.ops_per_sec
        ));
    }
    s
}

/// Serialise the sweep to the `readpath` JSON section (an array; the caller
/// merges it into `BENCH.json` next to the other sections).
pub fn section_json(points: &[ReadpathPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pass\": \"{}\", \"ops_per_sec\": {:.1}, \"total_ops\": {}, \
             \"elapsed_ms\": {:.2}, \"header_hits\": {}, \"header_misses\": {}, \
             \"extent_hits\": {}, \"extent_misses\": {}, \"block_hits\": {}, \
             \"block_misses\": {}}}{}\n",
            p.pass,
            p.ops_per_sec,
            p.total_ops,
            p.elapsed_ms,
            p.header_hits,
            p.header_misses,
            p.extent_hits,
            p.extent_misses,
            p.block_hits,
            p.block_misses,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_warm_beats_cold() {
        let points = run_sweep(2, 2);
        assert_eq!(points.len(), 3);
        let cold = points.iter().find(|p| p.pass == "cold").unwrap();
        let warm = points.iter().find(|p| p.pass == "warm").unwrap();
        assert_eq!(cold.total_ops, 4);
        // Within one cold round the UAK directory itself warms up (it is
        // read once per open), so a few hits are expected — but the data
        // blocks, which dominate, must all miss.
        assert!(
            cold.block_misses > cold.block_hits,
            "fresh sessions must mostly miss: {cold:?}"
        );
        assert!(
            warm.block_misses == 0 && warm.block_hits > 0,
            "primed session must only hit: {warm:?}"
        );
        assert!(
            warm.ops_per_sec > cold.ops_per_sec,
            "warm {} <= cold {}",
            warm.ops_per_sec,
            cold.ops_per_sec
        );
    }

    #[test]
    fn section_json_is_well_formed_enough() {
        let json = section_json(&run_sweep(1, 1));
        assert!(json.contains("\"pass\": \"warm\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "readpath", &json);
        assert!(merged.contains("\"readpath\""));
    }
}
