//! Durability sweep: what does crash consistency cost, and what does
//! write-back + group commit buy back?
//!
//! Three configurations run the same workload — 12 clients streaming small
//! durable writes through the request engine — over the same
//! [`LatencyDevice`] (50 µs per submission, 500 µs per flush barrier, the
//! shape of a disk with a priced cache flush):
//!
//! * **`no_journal`** — the pre-durability stack: write-through cache, no
//!   journal, nothing is crash-consistent.  The throughput ceiling.
//! * **`write_through`** — journaled, write-through cache: every operation
//!   commits through the journal (slot batch + barrier + in-place batch),
//!   with each in-place write paying its own device submission.
//! * **`write_back`** — journaled, write-back cache + group commit: in-place
//!   writes dirty the cache and ride the *next group's* single batched
//!   write-out, and one flush barrier covers every transaction that reached
//!   the commit gate together.  Same crash guarantees as `write_through`,
//!   most of the throughput of `no_journal` back.
//!
//! `repro --durability` records the three trajectories in the `durability`
//! section of `BENCH.json`.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};
use stegfs_blockdev::{BufferCache, CacheMode, LatencyDevice, MemBlockDevice};
use stegfs_core::StegParams;
use stegfs_engine::{Client, Engine, Request, Response};
use stegfs_vfs::{OpenOptions, Vfs, VfsHandle};

/// Per-submission service time (same as the VFS/engine sweeps).
pub const BLOCK_LATENCY: Duration = Duration::from_micros(50);

/// Per-barrier (flush) service time: the cache-flush + FUA cost a real disk
/// charges for durability.
pub const FLUSH_LATENCY: Duration = Duration::from_micros(500);

/// Number of submitting clients.
pub const CLIENTS: usize = 12;

/// Engine workers executing the requests.
pub const WORKERS: usize = 8;

/// Size of each durable write (bytes).
const WRITE_SIZE: usize = 4 * 1024;

/// Size of each prefilled file (bytes); writes patch within it, so the
/// journaled transaction is an in-place redo record, not a reallocation.
const FILE_SIZE: usize = 16 * 1024;

/// The device stack under test.
pub type SweepDevice = BufferCache<LatencyDevice<MemBlockDevice>>;

/// The three durability configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Write-through cache, no journal: fast and crash-unsafe.
    NoJournal,
    /// Journal + write-through cache.
    WriteThrough,
    /// Journal + write-back cache + group commit.
    WriteBackGroupCommit,
}

impl DurabilityMode {
    /// All modes, in presentation order.
    pub const ALL: [DurabilityMode; 3] = [
        DurabilityMode::NoJournal,
        DurabilityMode::WriteThrough,
        DurabilityMode::WriteBackGroupCommit,
    ];

    /// Stable identifier used in tables and `BENCH.json`.
    pub fn name(self) -> &'static str {
        match self {
            DurabilityMode::NoJournal => "no_journal",
            DurabilityMode::WriteThrough => "write_through",
            DurabilityMode::WriteBackGroupCommit => "write_back",
        }
    }

    fn journal_blocks(self) -> u64 {
        match self {
            DurabilityMode::NoJournal => 0,
            _ => 1024,
        }
    }

    fn cache_mode(self) -> CacheMode {
        match self {
            DurabilityMode::WriteBackGroupCommit => CacheMode::WriteBack,
            _ => CacheMode::WriteThrough,
        }
    }
}

/// One measured point of the durability sweep.
#[derive(Debug, Clone)]
pub struct DurabilityPoint {
    /// Configuration name (see [`DurabilityMode::name`]).
    pub mode: &'static str,
    /// Whether writes in this mode are crash-consistent.
    pub durable: bool,
    /// Number of submitting clients.
    pub clients: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Durable 4 KiB writes completed per second (all clients).
    pub ops_per_sec: f64,
    /// Total writes completed.
    pub total_ops: u64,
    /// Wall-clock time of the measured pass, in milliseconds.
    pub elapsed_ms: f64,
    /// Mean submit-to-completion latency per write, in milliseconds.
    pub mean_latency_ms: f64,
}

fn params(mode: DurabilityMode) -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        journal_blocks: mode.journal_blocks(),
        ..StegParams::for_tests()
    }
}

fn build_volume(mode: DurabilityMode, clients: usize) -> Arc<Vfs<SweepDevice>> {
    let disk = LatencyDevice::symmetric(MemBlockDevice::with_capacity_mb(1024, 48), BLOCK_LATENCY)
        .with_flush_latency(FLUSH_LATENCY);
    let dev = BufferCache::with_mode(disk, 4096, mode.cache_mode());
    let vfs = Vfs::format(dev, params(mode)).expect("format");
    for c in 0..clients {
        let s = vfs.signon("durability key");
        for (ns, path) in [("plain", plain_path(c)), ("hidden", hidden_path(c))] {
            let h = vfs
                .open(s, &path, OpenOptions::read_write().create(true))
                .unwrap_or_else(|e| panic!("create {ns} file: {e}"));
            vfs.write_at(h, 0, &vec![0x5au8; FILE_SIZE])
                .expect("prefill");
            vfs.close(h).expect("close");
        }
        vfs.signoff(s).expect("signoff");
    }
    vfs.sync().expect("initial checkpoint");
    Arc::new(vfs)
}

fn plain_path(client: usize) -> String {
    format!("/plain/dur-{client}.dat")
}

fn hidden_path(client: usize) -> String {
    format!("/hidden/dur-{client}")
}

fn open_through_engine(client: &Client<SweepDevice>, path: &str) -> VfsHandle {
    match client
        .call(Request::Open {
            path: path.into(),
            opts: OpenOptions::read_write(),
        })
        .result
        .expect("engine open")
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    }
}

/// One measured pass: every client alternates durable 4 KiB writes between
/// its plain and its hidden file.  Returns `(total ops, elapsed ms, mean
/// latency ms)`.
fn one_pass(
    engine: &Arc<Engine<SweepDevice>>,
    clients: usize,
    ops_per_client: usize,
) -> (u64, f64, f64) {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(engine);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let client = engine.client("durability key");
                let handles = [
                    open_through_engine(&client, &plain_path(c)),
                    open_through_engine(&client, &hidden_path(c)),
                ];
                barrier.wait();
                let mut latency = Duration::ZERO;
                for op in 0..ops_per_client {
                    let h = handles[op % 2];
                    let offset = (op % (FILE_SIZE / WRITE_SIZE)) * WRITE_SIZE;
                    let completion = client.call(Request::WriteAt {
                        handle: h,
                        offset: offset as u64,
                        data: vec![(c * 31 + op) as u8; WRITE_SIZE],
                    });
                    match completion.result.expect("durable write") {
                        Response::Written(n) => assert_eq!(n, WRITE_SIZE),
                        other => panic!("unexpected {other:?}"),
                    }
                    latency += completion.latency;
                }
                barrier.wait();
                for h in handles {
                    client.call(Request::Close { handle: h });
                }
                client.signoff().expect("signoff");
                latency
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed = start.elapsed();
    let mut latency_total = Duration::ZERO;
    for t in threads {
        latency_total += t.join().expect("durability client");
    }
    let total = (clients * ops_per_client) as u64;
    (
        total,
        elapsed.as_secs_f64() * 1000.0,
        latency_total.as_secs_f64() * 1000.0 / total as f64,
    )
}

/// Run the sweep: for each mode, a fresh volume and engine, a warm-up pass,
/// then a measured pass.
pub fn run_sweep(clients: usize, ops_per_client: usize, workers: usize) -> Vec<DurabilityPoint> {
    let mut out = Vec::new();
    for mode in DurabilityMode::ALL {
        let vfs = build_volume(mode, clients);
        let engine = Arc::new(Engine::start(vfs, workers));
        one_pass(&engine, clients, ops_per_client / 4 + 1);
        let (total_ops, elapsed_ms, mean_latency_ms) = one_pass(&engine, clients, ops_per_client);
        out.push(DurabilityPoint {
            mode: mode.name(),
            durable: mode != DurabilityMode::NoJournal,
            clients,
            workers,
            ops_per_sec: total_ops as f64 / (elapsed_ms / 1000.0),
            total_ops,
            elapsed_ms,
            mean_latency_ms,
        });
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("engine still shared"))
            .shutdown();
    }
    out
}

/// Render the sweep as a text table.
pub fn render(points: &[DurabilityPoint]) -> String {
    let clients = points.first().map_or(CLIENTS, |p| p.clients);
    let mut s = format!(
        "Durability sweep (4 KiB durable writes, {clients} clients, priced flush barrier)\n\
         mode           durable      ops/sec   elapsed(ms)   mean latency(ms)\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:<14} {:>7} {:>12.0} {:>13.1} {:>18.2}\n",
            p.mode,
            if p.durable { "yes" } else { "no" },
            p.ops_per_sec,
            p.elapsed_ms,
            p.mean_latency_ms
        ));
    }
    s
}

/// Serialise the sweep to the `durability` JSON section (an array; the
/// caller merges it into `BENCH.json` next to the other sections).
pub fn section_json(points: &[DurabilityPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"durable\": {}, \"clients\": {}, \"workers\": {}, \
             \"ops_per_sec\": {:.1}, \"total_ops\": {}, \"elapsed_ms\": {:.2}, \
             \"mean_latency_ms\": {:.2}}}{}\n",
            p.mode,
            p.durable,
            p.clients,
            p.workers,
            p.ops_per_sec,
            p.total_ops,
            p.elapsed_ms,
            p.mean_latency_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_modes() {
        let points = run_sweep(2, 2, 2);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.total_ops, 4);
            assert!(p.ops_per_sec > 0.0);
        }
        assert!(!points[0].durable);
        assert!(points[1].durable && points[2].durable);
    }

    #[test]
    fn section_json_merges() {
        let json = section_json(&[DurabilityPoint {
            mode: "write_back",
            durable: true,
            clients: 12,
            workers: 8,
            ops_per_sec: 321.0,
            total_ops: 768,
            elapsed_ms: 100.0,
            mean_latency_ms: 12.0,
        }]);
        assert!(json.contains("\"mode\": \"write_back\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "durability", &json);
        assert!(merged.contains("\"durability\""));
    }
}
