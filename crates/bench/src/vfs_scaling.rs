//! Thread-scaling sweep over the `stegfs-vfs` front-end.
//!
//! The shared-reference core redesign removed the global volume write lock;
//! this module measures what that bought: real OS threads driving handle I/O
//! on one `Arc<Vfs>`, swept over thread counts, with two working-set shapes:
//!
//! * **disjoint** — every thread owns its files.  Threads contend only on
//!   the allocator and the device, so throughput should *rise* with thread
//!   count (it was flat behind the old global write lock).
//! * **shared** — all threads hammer the same files.  The per-object locks
//!   serialise them; this is the contention floor for comparison.
//!
//! The device underneath is a [`LatencyDevice`] over the striped in-memory
//! volume: every block transfer *sleeps* a fixed service time, the way the
//! paper's real Ultra ATA disk made every block access cost wall-clock time.
//! That is what makes the sweep meaningful even on a small host: overlapped
//! block I/O shows up as wall-clock speed-up, while anything still funnelled
//! through a global lock stays flat.
//!
//! The sweep is wall-clock based (`std::time::Instant`), reporting ops/sec
//! per `(threads, mode, op)` point.  `repro --vfs-scaling` records the
//! result as JSON in `BENCH.json` so the trajectory is tracked across PRs.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};
use stegfs_blockdev::{LatencyDevice, MemBlockDevice};
use stegfs_core::StegParams;
use stegfs_obs::Histogram;
use stegfs_vfs::{OpenOptions, Vfs};

/// The device used by the sweep.
pub type SweepDevice = LatencyDevice<MemBlockDevice>;

/// Simulated per-block service time (both directions).
pub const BLOCK_LATENCY: Duration = Duration::from_micros(50);

/// Thread counts swept by [`run_sweep`].
pub const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 12];

/// Size of each I/O operation (and of each file) in KiB.
pub const FILE_KB: usize = 64;

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of worker threads.
    pub threads: usize,
    /// Working-set shape: `"disjoint"` or `"shared"`.
    pub mode: &'static str,
    /// Operation: `"read"` or `"write"`.
    pub op: &'static str,
    /// Whole-file handle operations completed per second (all threads).
    pub ops_per_sec: f64,
    /// Total operations completed.
    pub total_ops: u64,
    /// Wall-clock time for the pass, in milliseconds.
    pub elapsed_ms: f64,
    /// Median per-operation latency, in microseconds (sharded log-linear
    /// histogram recorded by the measured pass itself).
    pub p50_us: f64,
    /// 99th-percentile per-operation latency, in microseconds.
    pub p99_us: f64,
    /// Wall-clock spent outside the measured pass for this point: volume
    /// build (split across the point's ops) + warm-up.
    pub setup_ms: f64,
}

fn params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        ..StegParams::for_tests()
    }
}

/// File path for `(thread, file)` under the given mode.  In shared mode all
/// threads map onto thread 0's files.
fn path_for(mode: &str, thread: usize, file: usize) -> String {
    let owner = if mode == "shared" { 0 } else { thread };
    // Half plain, half hidden: both namespaces must scale.
    if file.is_multiple_of(2) {
        format!("/plain/t{owner}-f{file}")
    } else {
        format!("/hidden/t{owner}-f{file}")
    }
}

const FILES_PER_THREAD: usize = 2;

fn build_volume(threads: usize, mode: &'static str) -> Arc<Vfs<SweepDevice>> {
    let dev = LatencyDevice::symmetric(MemBlockDevice::with_capacity_mb(1024, 48), BLOCK_LATENCY);
    let vfs = Vfs::format(dev, params()).expect("format");
    let data = vec![0x5au8; FILE_KB * 1024];
    let owners = if mode == "shared" { 1 } else { threads };
    for t in 0..owners {
        let s = vfs.signon("sweep key");
        for f in 0..FILES_PER_THREAD {
            let p = path_for(mode, t, f);
            let h = vfs.open(s, &p, OpenOptions::read_write()).expect("open");
            vfs.write_at(h, 0, &data).expect("prefill");
            vfs.close(h).expect("close");
        }
        vfs.signoff(s).expect("signoff");
    }
    Arc::new(vfs)
}

fn one_pass(
    vfs: &Arc<Vfs<SweepDevice>>,
    threads: usize,
    mode: &'static str,
    write: bool,
    ops_per_thread: usize,
    latency: &Arc<Histogram>,
) -> (u64, f64) {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let vfs = Arc::clone(vfs);
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(latency);
            thread::spawn(move || {
                let s = vfs.signon("sweep key");
                let data = vec![t as u8; FILE_KB * 1024];
                // Open once, then do positional in-place I/O: the steady
                // state of a long-lived handle, where the redesign pays off.
                let handles: Vec<_> = (0..FILES_PER_THREAD)
                    .map(|f| {
                        vfs.open(s, &path_for(mode, t, f), OpenOptions::read_write())
                            .expect("open")
                    })
                    .collect();
                barrier.wait();
                let timed = latency.is_enabled();
                for op in 0..ops_per_thread {
                    let h = handles[op % handles.len()];
                    let start = if timed { Some(Instant::now()) } else { None };
                    if write {
                        vfs.write_at(h, 0, &data).expect("write");
                    } else {
                        let got = vfs.read_at(h, 0, FILE_KB * 1024).expect("read");
                        assert_eq!(got.len(), FILE_KB * 1024);
                    }
                    if let Some(start) = start {
                        latency.record(start.elapsed().as_nanos() as u64);
                    }
                }
                barrier.wait();
                for h in handles {
                    vfs.close(h).expect("close");
                }
                vfs.signoff(s).expect("signoff");
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed = start.elapsed();
    for w in workers {
        w.join().expect("sweep worker");
    }
    let total = (threads * ops_per_thread) as u64;
    (total, elapsed.as_secs_f64() * 1000.0)
}

/// Build a prepared volume for an externally driven pass (the criterion
/// bench reuses one volume across iterations).
pub fn bench_volume(threads: usize, mode: &'static str) -> Arc<Vfs<SweepDevice>> {
    build_volume(threads, mode)
}

/// Run one externally driven pass over a [`bench_volume`], returning
/// `(total ops, elapsed ms)`.
pub fn bench_pass(
    vfs: &Arc<Vfs<SweepDevice>>,
    threads: usize,
    mode: &'static str,
    write: bool,
    ops_per_thread: usize,
) -> (u64, f64) {
    one_pass(
        vfs,
        threads,
        mode,
        write,
        ops_per_thread,
        &Arc::new(Histogram::disabled()),
    )
}

/// Run the full sweep: every thread count, disjoint and shared working sets,
/// reads and writes.  `ops_per_thread` trades precision for runtime; 64 is
/// enough for a stable ranking, 256+ for quotable numbers.
pub fn run_sweep(ops_per_thread: usize) -> Vec<ScalingPoint> {
    run_sweep_over(ops_per_thread, &THREAD_COUNTS)
}

/// As [`run_sweep`], restricted to the given thread counts (the `--smoke`
/// CI variant sweeps a two-point subset).
pub fn run_sweep_over(ops_per_thread: usize, thread_counts: &[usize]) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for mode in ["disjoint", "shared"] {
        for &threads in thread_counts {
            let build_start = Instant::now();
            let vfs = build_volume(threads, mode);
            // The volume is shared by the read and the write point; split its
            // build cost evenly between them for per-point setup accounting.
            let build_ms = build_start.elapsed().as_secs_f64() * 1000.0 / 2.0;
            for (op, write) in [("read", false), ("write", true)] {
                // One warm-up pass populates caches and steadies the layout.
                let warm_start = Instant::now();
                one_pass(
                    &vfs,
                    threads,
                    mode,
                    write,
                    ops_per_thread / 4 + 1,
                    &Arc::new(Histogram::disabled()),
                );
                let setup_ms = build_ms + warm_start.elapsed().as_secs_f64() * 1000.0;
                let latency = Arc::new(Histogram::new());
                let (total_ops, elapsed_ms) =
                    one_pass(&vfs, threads, mode, write, ops_per_thread, &latency);
                let lat = latency.summary();
                out.push(ScalingPoint {
                    threads,
                    mode,
                    op,
                    ops_per_sec: total_ops as f64 / (elapsed_ms / 1000.0),
                    total_ops,
                    elapsed_ms,
                    p50_us: lat.p50 as f64 / 1_000.0,
                    p99_us: lat.p99 as f64 / 1_000.0,
                    setup_ms,
                });
            }
        }
    }
    out
}

/// Render the sweep as a text table.
pub fn render(points: &[ScalingPoint]) -> String {
    let mut s = String::from(
        "VFS thread-scaling sweep (64 KB whole-file handle ops, ops/sec)\n\
         mode      op     threads      ops/sec   setup(ms)   elapsed(ms)    p50(us)    p99(us)\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:<9} {:<6} {:>7} {:>12.0} {:>11.1} {:>13.1} {:>10.0} {:>10.0}\n",
            p.mode, p.op, p.threads, p.ops_per_sec, p.setup_ms, p.elapsed_ms, p.p50_us, p.p99_us
        ));
    }
    s
}

/// Serialise the sweep to the `vfs_scaling` JSON section (an array; the
/// caller merges it into `BENCH.json` next to the other sections).
pub fn section_json(points: &[ScalingPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"mode\": \"{}\", \"op\": \"{}\", \"ops_per_sec\": {:.1}, \"total_ops\": {}, \"elapsed_ms\": {:.2}, \"setup_ms\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            p.threads,
            p.mode,
            p.op,
            p.ops_per_sec,
            p.total_ops,
            p.elapsed_ms,
            p.setup_ms,
            p.p50_us,
            p.p99_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_points() {
        // One thread count, minimal ops: just proves the harness works.
        let vfs = build_volume(2, "disjoint");
        let latency = Arc::new(Histogram::new());
        let (ops, ms) = one_pass(&vfs, 2, "disjoint", true, 2, &latency);
        assert_eq!(ops, 4);
        assert!(ms > 0.0);
        let lat = latency.summary();
        assert_eq!(lat.count, 4);
        assert!(lat.p50 > 0);
        assert!(lat.p99 >= lat.p50);
        let vfs = build_volume(2, "shared");
        let (ops, _) = one_pass(
            &vfs,
            2,
            "shared",
            false,
            2,
            &Arc::new(Histogram::disabled()),
        );
        assert_eq!(ops, 4);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = vec![ScalingPoint {
            threads: 4,
            mode: "disjoint",
            op: "read",
            ops_per_sec: 123.4,
            total_ops: 256,
            elapsed_ms: 2074.9,
            p50_us: 812.0,
            p99_us: 1904.5,
            setup_ms: 310.2,
        }];
        let section = section_json(&points);
        assert!(section.contains("\"threads\": 4"));
        assert_eq!(section.matches('{').count(), section.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "vfs_scaling", &section);
        assert!(merged.contains("\"vfs_scaling\""));
    }
}
