//! Write-path sweep: what the sharded allocator and the cache-aware write
//! path bought.
//!
//! Two phases, both on a [`LatencyDevice`] that prices every block transfer
//! the way the paper's Ultra ATA disk did:
//!
//! * **rewrite** — single-threaded full rewrites of one hidden file, *cold*
//!   (read caches purged before every rewrite, so the chain walk pays
//!   device latency) versus *warm* (back-to-back rewrites; the write path
//!   serves the chain from the generation-checked extent cache and does
//!   zero chain-walk I/O).  The gap is the tentpole's cache-aware-write
//!   win.
//! * **scaling** — disjoint whole-file rewrites from N threads, *sharded*
//!   (the per-segment bitmap locks, as shipped) versus *serialized* (the
//!   same workload behind one global mutex, emulating the old single
//!   allocator lock).  The sharded curve should rise with threads; the
//!   serialized one is the flat baseline it broke away from.
//!
//! `repro --writepath` records both phases as the `writepath` section of
//! `BENCH.json`; the `--smoke` CI variant additionally lands the rewrite
//! percentiles in the `percentiles` section, where CI asserts
//! `0 < p50 <= p99`.

use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use stegfs_blockdev::{LatencyDevice, MemBlockDevice};
use stegfs_core::{ObjectKind, StegFs, StegParams};
use stegfs_obs::Histogram;

/// The device used by the sweep.
pub type SweepDevice = LatencyDevice<MemBlockDevice>;

/// Simulated per-block service time (both directions).
pub const BLOCK_LATENCY: Duration = Duration::from_micros(50);

/// Thread counts swept by the scaling phase.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Size of the rewritten file in KiB.
pub const FILE_KB: usize = 64;

const UAK: &str = "writepath sweep key";

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct WritepathPoint {
    /// `"rewrite"` (single-threaded cold/warm) or `"scaling"` (threaded).
    pub phase: &'static str,
    /// `"cold"` / `"warm"` for rewrites; `"sharded"` / `"serialized"` for
    /// the scaling phase.
    pub variant: &'static str,
    /// Worker threads (1 for the rewrite phase).
    pub threads: usize,
    /// Whole-file rewrites completed per second (all threads).
    pub ops_per_sec: f64,
    /// Total rewrites completed.
    pub total_ops: u64,
    /// Wall-clock time for the measured pass, in milliseconds.
    pub elapsed_ms: f64,
    /// Median per-rewrite latency, in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-rewrite latency, in microseconds.
    pub p99_us: f64,
}

fn params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        ..StegParams::for_tests()
    }
}

fn fresh_volume() -> StegFs<SweepDevice> {
    let dev = LatencyDevice::symmetric(MemBlockDevice::with_capacity_mb(1024, 48), BLOCK_LATENCY);
    StegFs::format(dev, params()).expect("format writepath volume")
}

/// Single-threaded rewrite pass: `rounds` full rewrites of one 64 KiB
/// hidden file, cold (purging the read caches before every rewrite) or
/// warm (chain served from the extent cache the previous rewrite
/// republished).
fn rewrite_point(variant: &'static str, rounds: usize) -> WritepathPoint {
    let fs = fresh_volume();
    fs.steg_create("wp", UAK, ObjectKind::File).expect("create");
    fs.write_hidden_with_key("wp", UAK, &vec![0xa5u8; FILE_KB * 1024])
        .expect("prefill");
    // One read warms the extent map for the first warm-round rewrite.
    let _ = fs.read_hidden_with_key("wp", UAK).expect("warm read");

    let latency = Histogram::new();
    let start = Instant::now();
    for r in 0..rounds {
        if variant == "cold" {
            fs.purge_read_caches();
        }
        let body = vec![r as u8; FILE_KB * 1024];
        let t0 = Instant::now();
        fs.write_hidden_with_key("wp", UAK, &body).expect("rewrite");
        latency.record(t0.elapsed().as_nanos() as u64);
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    let lat = latency.summary();
    WritepathPoint {
        phase: "rewrite",
        variant,
        threads: 1,
        ops_per_sec: rounds as f64 / (elapsed_ms / 1000.0),
        total_ops: rounds as u64,
        elapsed_ms,
        p50_us: lat.p50 as f64 / 1_000.0,
        p99_us: lat.p99 as f64 / 1_000.0,
    }
}

/// Threaded scaling pass: every thread rewrites its own hidden file (its
/// own UAK, so nothing above the allocator is shared).  `serialized` wraps
/// each rewrite in one global mutex — the old single-allocator-lock write
/// curve, reconstructed as a baseline.
fn scaling_point(variant: &'static str, threads: usize, ops_per_thread: usize) -> WritepathPoint {
    let fs = Arc::new(fresh_volume());
    for t in 0..threads {
        let uak = format!("{UAK} {t}");
        fs.steg_create("wp", &uak, ObjectKind::File)
            .expect("create");
        fs.write_hidden_with_key("wp", &uak, &vec![t as u8; FILE_KB * 1024])
            .expect("prefill");
    }
    let gate = (variant == "serialized").then(|| Arc::new(Mutex::new(())));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let latency = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let fs = Arc::clone(&fs);
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(&latency);
            let gate = gate.clone();
            thread::spawn(move || {
                let uak = format!("{UAK} {t}");
                let data = vec![t as u8 ^ 0x55; FILE_KB * 1024];
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let t0 = Instant::now();
                    let _held = gate.as_ref().map(|g| g.lock().expect("gate"));
                    fs.write_hidden_with_key("wp", &uak, &data).expect("write");
                    drop(_held);
                    latency.record(t0.elapsed().as_nanos() as u64);
                }
                barrier.wait();
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    for w in workers {
        w.join().expect("writepath worker");
    }
    let total_ops = (threads * ops_per_thread) as u64;
    let lat = latency.summary();
    WritepathPoint {
        phase: "scaling",
        variant,
        threads,
        ops_per_sec: total_ops as f64 / (elapsed_ms / 1000.0),
        total_ops,
        elapsed_ms,
        p50_us: lat.p50 as f64 / 1_000.0,
        p99_us: lat.p99 as f64 / 1_000.0,
    }
}

/// Run the full sweep: cold and warm rewrites, then sharded and serialized
/// scaling over `thread_counts`.
pub fn run_sweep(
    rounds: usize,
    ops_per_thread: usize,
    thread_counts: &[usize],
) -> Vec<WritepathPoint> {
    let mut out = Vec::new();
    for variant in ["cold", "warm"] {
        out.push(rewrite_point(variant, rounds));
    }
    for variant in ["sharded", "serialized"] {
        for &threads in thread_counts {
            out.push(scaling_point(variant, threads, ops_per_thread));
        }
    }
    out
}

/// Render the sweep as a text table.
pub fn render(points: &[WritepathPoint]) -> String {
    let mut s = String::from(
        "Write-path sweep (64 KiB whole-file hidden rewrites, ops/sec)\n\
         phase     variant      threads      ops/sec   elapsed(ms)    p50(us)    p99(us)\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:<9} {:<12} {:>7} {:>12.0} {:>13.1} {:>10.0} {:>10.0}\n",
            p.phase, p.variant, p.threads, p.ops_per_sec, p.elapsed_ms, p.p50_us, p.p99_us
        ));
    }
    s
}

/// Serialise the sweep to the `writepath` JSON section (an array; the
/// caller merges it into `BENCH.json` next to the other sections).
pub fn section_json(points: &[WritepathPoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"phase\": \"{}\", \"variant\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.1}, \"total_ops\": {}, \"elapsed_ms\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            p.phase,
            p.variant,
            p.threads,
            p.ops_per_sec,
            p.total_ops,
            p.elapsed_ms,
            p.p50_us,
            p.p99_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_points() {
        let points = run_sweep(2, 2, &[2]);
        assert_eq!(points.len(), 4); // cold, warm, sharded@2, serialized@2
        for p in &points {
            assert!(
                p.ops_per_sec > 0.0,
                "{}/{} has no throughput",
                p.phase,
                p.variant
            );
            assert!(p.p50_us > 0.0, "{}/{} has zero p50", p.phase, p.variant);
            assert!(p.p99_us >= p.p50_us, "{}/{} p99 < p50", p.phase, p.variant);
        }
        assert_eq!(points[0].variant, "cold");
        assert_eq!(points[1].variant, "warm");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = vec![WritepathPoint {
            phase: "rewrite",
            variant: "warm",
            threads: 1,
            ops_per_sec: 456.7,
            total_ops: 24,
            elapsed_ms: 52.5,
            p50_us: 1800.0,
            p99_us: 2950.0,
        }];
        let section = section_json(&points);
        assert!(section.contains("\"variant\": \"warm\""));
        assert_eq!(section.matches('{').count(), section.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "writepath", &section);
        assert!(merged.contains("\"writepath\""));
    }
}
