//! Phase-attribution sweep: *where* does a request's latency go?
//!
//! The engine sweeps measure end-to-end percentiles; this sweep answers the
//! follow-up question by running a journaled multi-user workload — the
//! durability sweep's configuration (write-back cache, priced flush
//! barrier, checkpoint daemon on) with reads mixed in — with causal span
//! tracing active, and rolling each request type's span trees up into a
//! per-phase table: p50/p99 self-time and share-of-total for `queue_wait`,
//! `uak_shard`, `journal_stage`, `gate_flush`, `device_io`, `crypto`, and
//! the rest of [`stegfs_obs::PHASE_NAMES`].  Because phases record *self*
//! time (nested children subtracted), each op's phase totals partition its
//! measured wall time — the per-phase sums stay consistent with the
//! end-to-end totals by construction.
//!
//! `repro --attribution` records the table as the `attribution` section of
//! `BENCH.json`; `repro --trace-export` replays the same workload with the
//! chrome-trace capture buffer active and writes the resulting
//! `chrome://tracing` / Perfetto JSON.

use crate::durability::{BLOCK_LATENCY, FLUSH_LATENCY};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;
use stegfs_blockdev::{BufferCache, CacheMode, LatencyDevice, MemBlockDevice};
use stegfs_core::StegParams;
use stegfs_engine::{Client, Engine, Request, Response};
use stegfs_obs::{HistSummary, WatchdogSummary, ENGINE_OPS};
use stegfs_vfs::{OpenOptions, Vfs, VfsHandle};

/// Size of each write (bytes).
const WRITE_SIZE: usize = 4 * 1024;

/// Size of each prefilled file (bytes).
const FILE_SIZE: usize = 16 * 1024;

/// The device stack under test (same as the durability sweep).
pub type SweepDevice = BufferCache<LatencyDevice<MemBlockDevice>>;

/// One phase's roll-up within one request type.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name (one of [`stegfs_obs::PHASE_NAMES`]).
    pub phase: &'static str,
    /// Self-time summary across the pass's requests of this type.
    pub summary: HistSummary,
    /// This phase's share of the op's total attributed time (0..=1).
    pub share: f64,
}

/// One request type's attribution table.
#[derive(Debug, Clone)]
pub struct OpRow {
    /// [`ENGINE_OPS`] name.
    pub op: &'static str,
    /// End-to-end (submit → completion) latency summary of the pass.
    pub e2e: HistSummary,
    /// Sum of every phase's total self-time for this op (ns).
    pub phase_total_ns: u64,
    /// Every phase, in [`stegfs_obs::PHASE_NAMES`] order (fixed shape).
    pub phases: Vec<PhaseRow>,
}

/// Result of [`run`]: one row per exercised request type, plus the stall
/// watchdog's view of the pass.
pub struct AttributionRun {
    /// Submitting clients.
    pub clients: usize,
    /// Engine workers.
    pub workers: usize,
    /// Rows for ops that completed at least one request, [`ENGINE_OPS`]
    /// order.
    pub ops: Vec<OpRow>,
    /// Watchdog gauges covering the measured pass.
    pub watchdog: WatchdogSummary,
}

fn params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        journal_blocks: 1024,
        checkpoint_daemon: true,
        ..StegParams::for_tests()
    }
}

fn plain_path(client: usize) -> String {
    format!("/plain/attr-{client}.dat")
}

fn hidden_path(client: usize) -> String {
    format!("/hidden/attr-{client}")
}

fn build_volume(clients: usize) -> Arc<Vfs<SweepDevice>> {
    let disk = LatencyDevice::symmetric(MemBlockDevice::with_capacity_mb(1024, 48), BLOCK_LATENCY)
        .with_flush_latency(FLUSH_LATENCY);
    let dev = BufferCache::with_mode(disk, 4096, CacheMode::WriteBack);
    let vfs = Vfs::format(dev, params()).expect("format");
    for c in 0..clients {
        let s = vfs.signon("attribution key");
        for path in [plain_path(c), hidden_path(c)] {
            let h = vfs
                .open(s, &path, OpenOptions::read_write().create(true))
                .expect("create");
            vfs.write_at(h, 0, &vec![0x5au8; FILE_SIZE])
                .expect("prefill");
            vfs.close(h).expect("close");
        }
        vfs.signoff(s).expect("signoff");
    }
    vfs.sync().expect("initial checkpoint");
    Arc::new(vfs)
}

fn open_through_engine(client: &Client<SweepDevice>, path: &str) -> VfsHandle {
    match client
        .call(Request::Open {
            path: path.into(),
            opts: OpenOptions::read_write(),
        })
        .result
        .expect("engine open")
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    }
}

/// One pass in the paper's per-access model: every iteration is a whole
/// file access — open, one 4 KiB I/O, close — alternating between the
/// client's plain and hidden file.  Hidden opens resolve the UAK directory
/// under the uak shard locks (the convoy the attribution table exists to
/// expose); writes are journaled in-place patches except every eighth,
/// which appends past end-of-file so the allocator's claim path shows up
/// too.  3 writes : 1 read, so the journaled write path dominates.
///
/// With `signoff = false` the sessions are left signed on — sign-off
/// zeroizes the slow-request and chrome-trace captures (deniability
/// contract), so the trace exporter must read them out first.
fn one_pass(
    engine: &Arc<Engine<SweepDevice>>,
    clients: usize,
    ops_per_client: usize,
    signoff: bool,
) {
    let barrier = Arc::new(Barrier::new(clients));
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(engine);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let client = engine.client("attribution key");
                barrier.wait();
                let mut appends = 0u64;
                for op in 0..ops_per_client {
                    let path = if op % 2 == 0 {
                        plain_path(c)
                    } else {
                        hidden_path(c)
                    };
                    let h = open_through_engine(&client, &path);
                    if op % 4 == 3 {
                        let offset = ((op % (FILE_SIZE / WRITE_SIZE)) * WRITE_SIZE) as u64;
                        let completion = client.call(Request::ReadAt {
                            handle: h,
                            offset,
                            len: WRITE_SIZE,
                        });
                        match completion.result.expect("read") {
                            Response::Data(d) => assert_eq!(d.len(), WRITE_SIZE),
                            other => panic!("unexpected {other:?}"),
                        }
                    } else {
                        let offset = if op % 8 == 1 {
                            // Extending write: allocation + rewrite path.
                            appends += 1;
                            FILE_SIZE as u64 + appends * WRITE_SIZE as u64
                        } else {
                            ((op % (FILE_SIZE / WRITE_SIZE)) * WRITE_SIZE) as u64
                        };
                        let completion = client.call(Request::WriteAt {
                            handle: h,
                            offset,
                            data: vec![(c * 31 + op) as u8; WRITE_SIZE],
                        });
                        match completion.result.expect("write") {
                            Response::Written(n) => assert_eq!(n, WRITE_SIZE),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    client.call(Request::Close { handle: h });
                }
                if signoff {
                    client.signoff().expect("signoff");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("attribution client");
    }
}

/// Run the attribution pass: build the journaled volume, warm up, reset the
/// registry, run the measured pass, and roll the per-(op, phase) self-time
/// histograms up into [`OpRow`]s.
pub fn run(clients: usize, ops_per_client: usize, workers: usize) -> AttributionRun {
    let vfs = build_volume(clients);
    let engine = Arc::new(Engine::start(vfs, workers));
    one_pass(&engine, clients, ops_per_client / 4 + 1, true);
    let obs = Arc::clone(engine.vfs().obs());
    obs.reset();
    one_pass(&engine, clients, ops_per_client, true);
    // Give the checkpoint daemon at least one tick inside the window so the
    // watchdog's sample counters cover the measured pass.
    thread::sleep(Duration::from_millis(60));
    let snapshot = obs.snapshot();
    let attribution = obs.attribution.summary();
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();

    let mut ops = Vec::new();
    for (i, name) in ENGINE_OPS.iter().enumerate() {
        let e2e = snapshot.engine.latency.get(i).copied().unwrap_or_default();
        if e2e.count == 0 {
            continue;
        }
        let table = attribution.op(name).expect("fixed-shape attribution");
        let phase_total_ns: u64 = table.phases.iter().map(|(_, s)| s.total).sum();
        let phases = table
            .phases
            .iter()
            .map(|&(phase, summary)| PhaseRow {
                phase,
                summary,
                share: if phase_total_ns == 0 {
                    0.0
                } else {
                    summary.total as f64 / phase_total_ns as f64
                },
            })
            .collect();
        ops.push(OpRow {
            op: name,
            e2e,
            phase_total_ns,
            phases,
        });
    }
    AttributionRun {
        clients,
        workers,
        ops,
        watchdog: snapshot.watchdog,
    }
}

/// Run a short traced pass with the chrome-trace capture buffer active and
/// return the `chrome://tracing` JSON (plus how many events overflowed the
/// buffer).
pub fn trace_export(
    clients: usize,
    ops_per_client: usize,
    workers: usize,
    capacity: usize,
) -> (String, u64) {
    let vfs = build_volume(clients);
    let engine = Arc::new(Engine::start(vfs, workers));
    let obs = Arc::clone(engine.vfs().obs());
    obs.capture.begin(capacity);
    // No signoff: signing off would zeroize the capture before `take`.
    one_pass(&engine, clients, ops_per_client, false);
    let (events, dropped) = obs.capture.take();
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still shared"))
        .shutdown();
    (stegfs_obs::chrome_trace_json(&events), dropped)
}

/// Render the run as text tables, one per request type.
pub fn render(run: &AttributionRun) -> String {
    let mut s = format!(
        "Phase attribution ({} clients, {} workers, journaled write-back volume)\n",
        run.clients, run.workers
    );
    for op in &run.ops {
        s.push_str(&format!(
            "\n{}  ({} reqs, e2e p50 {:.3} ms, p99 {:.3} ms)\n\
             phase            count     p50(us)     p99(us)   total(ms)   share\n",
            op.op,
            op.e2e.count,
            op.e2e.p50 as f64 / 1e6,
            op.e2e.p99 as f64 / 1e6,
        ));
        for row in &op.phases {
            if row.summary.count == 0 {
                continue;
            }
            s.push_str(&format!(
                "{:<14} {:>7} {:>11.1} {:>11.1} {:>11.2} {:>6.1}%\n",
                row.phase,
                row.summary.count,
                row.summary.p50 as f64 / 1e3,
                row.summary.p99 as f64 / 1e3,
                row.summary.total as f64 / 1e6,
                row.share * 100.0
            ));
        }
    }
    s.push_str(&format!(
        "\nwatchdog: ring occupancy {}‰ (hwm {}‰), {} samples ({} stalled), {} steals\n",
        run.watchdog.ring_occupancy_permille,
        run.watchdog.ring_occupancy_hwm_permille,
        run.watchdog.samples,
        run.watchdog.stall_samples,
        run.watchdog.checkpoint_steals
    ));
    s
}

/// Serialise the run to the `attribution` JSON section.
pub fn section_json(run: &AttributionRun) -> String {
    let mut s = String::from("{\n    \"ops\": [\n");
    for (i, op) in run.ops.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"op\": \"{}\", \"clients\": {}, \"workers\": {}, \"e2e\": {}, \
             \"phase_total_ns\": {}, \"phases\": {{",
            op.op,
            run.clients,
            run.workers,
            op.e2e.to_json(),
            op.phase_total_ns
        ));
        for (j, row) in op.phases.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"total_ns\": {}, \"share\": {:.4}}}",
                row.phase,
                row.summary.count,
                row.summary.p50,
                row.summary.p99,
                row.summary.total,
                row.share
            ));
        }
        s.push_str(&format!(
            "}}}}{}\n",
            if i + 1 == run.ops.len() { "" } else { "," }
        ));
    }
    s.push_str(&format!(
        "    ],\n    \"watchdog\": {}\n  }}",
        run.watchdog.to_json()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase<'a>(op: &'a OpRow, name: &str) -> &'a PhaseRow {
        op.phases
            .iter()
            .find(|r| r.phase == name)
            .expect("fixed phase set")
    }

    #[test]
    fn tiny_run_attributes_hidden_write_phases() {
        let run = run(2, 16, 2);
        let write = run
            .ops
            .iter()
            .find(|o| o.op == "write_at")
            .expect("write_at exercised");
        assert!(write.e2e.count > 0);
        // The journaled write path must attribute across the named phases.
        for required in ["queue_wait", "journal_stage", "gate_flush", "device_io"] {
            assert!(
                phase(write, required).summary.count > 0,
                "phase {required} unpopulated on the write path"
            );
        }
        let populated = write.phases.iter().filter(|r| r.summary.count > 0).count();
        assert!(populated >= 6, "only {populated} phases populated");
        // Hidden opens resolve the UAK directory under the uak shard locks.
        let open = run
            .ops
            .iter()
            .find(|o| o.op == "open")
            .expect("open exercised");
        assert!(
            phase(open, "uak_shard").summary.count > 0,
            "uak_shard unpopulated on the open path"
        );
        // Self-time partitions wall time: phase sums cannot exceed the
        // end-to-end total.
        assert!(write.phase_total_ns <= write.e2e.total);
        assert!(write.phase_total_ns > 0);
        for row in &write.phases {
            assert!(row.summary.p50 <= row.summary.p99);
        }
        let share_sum: f64 = write.phases.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-6);
        assert!(run.watchdog.samples > 0, "daemon must sample the watchdog");
    }

    #[test]
    fn section_json_merges() {
        let run = run(2, 4, 2);
        let json = section_json(&run);
        assert!(json.contains("\"ops\""));
        assert!(json.contains("\"watchdog\""));
        assert!(json.contains("\"uak_shard\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "attribution", &json);
        assert!(merged.contains("\"attribution\""));
    }

    #[test]
    fn trace_export_is_chrome_trace_shaped() {
        let (json, _dropped) = trace_export(2, 4, 2, 4096);
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"cat\": \"request\""));
        assert!(json.contains("\"cat\": \"phase\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn phase_names_cover_the_required_set() {
        for required in ["uak_shard", "journal_stage", "gate_flush", "device_io"] {
            assert!(stegfs_obs::PHASE_NAMES.contains(&required));
        }
    }
}
