//! Worker-scaling sweep through the `stegfs-engine` request engine.
//!
//! The paper's Figures 7–9 measure StegFS as a *server*: many users submit
//! file operations, the kernel driver executes them against one volume.
//! [`crate::vfs_scaling`] measures the raw `Vfs` under direct threads; this
//! sweep measures the same volume behind the request engine — a fixed
//! multi-user client population (12 depth-1 clients, the shape of the
//! paper's Figure 7 runs) against an engine of 1/2/4/8/12 workers, so the
//! curve shows how much of the offered concurrency the engine's worker pool
//! actually converts into throughput.
//!
//! The file set reuses [`stegfs_sim::FileSpec`] generation (uniform sizes
//! just under 64 KiB, half `/plain`, half `/hidden`), and the device is the
//! same [`LatencyDevice`] configuration as the VFS sweep, so the two
//! `BENCH.json` sections are directly comparable.  Since the I/O path now
//! batches whole extent lists into single submissions, a 64 KiB operation
//! costs one overlapped service time instead of ~64 sequential ones — the
//! engine curve must therefore sit at or above the direct-`Vfs` trajectory,
//! which `repro --engine-scaling` records next to it.

use crate::vfs_scaling::BLOCK_LATENCY;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};
use stegfs_blockdev::{LatencyDevice, MemBlockDevice};
use stegfs_core::StegParams;
use stegfs_engine::{Client, Engine, Request, Response};
use stegfs_sim::{FileSpec, WorkloadParams};
use stegfs_vfs::{OpenOptions, Vfs, VfsHandle};

/// The device behind the sweep (shared with the VFS sweep).
pub type SweepDevice = LatencyDevice<MemBlockDevice>;

/// Worker counts swept by [`run_sweep`].
pub const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 12];

/// Number of concurrent depth-1 clients (the multi-user population).
pub const CLIENTS: usize = 12;

/// Files per client: one plain, one hidden.
const FILES_PER_CLIENT: usize = 2;

/// One measured point of the engine sweep.
#[derive(Debug, Clone)]
pub struct EnginePoint {
    /// Number of engine worker threads.
    pub workers: usize,
    /// Number of submitting clients.
    pub clients: usize,
    /// Operation: `"read"` or `"write"`.
    pub op: &'static str,
    /// Whole-file requests completed per second (all clients).
    pub ops_per_sec: f64,
    /// Total requests completed.
    pub total_ops: u64,
    /// Wall-clock time of the pass, in milliseconds.
    pub elapsed_ms: f64,
    /// Mean submit-to-completion latency per request, in milliseconds.
    pub mean_latency_ms: f64,
    /// Median submit-to-completion latency, in milliseconds (from the
    /// volume's obs registry, reset per measured pass).
    pub p50_ms: f64,
    /// 99th-percentile submit-to-completion latency, in milliseconds.
    pub p99_ms: f64,
    /// Wall-clock spent *outside* the measured pass for this point: volume
    /// build + engine start (amortised over the point's ops) + warm-up.
    pub setup_ms: f64,
}

/// The contention profile of one measured pass: the full obs snapshot plus
/// which wait source dominated.  `repro` merges one report per pass into
/// `BENCH.json` as the `contention` section (an array), so the dominant
/// wait source is visible *across* the curve — not just at the heaviest
/// write pass — turning "writes collapse at 12 workers" into a named,
/// quantified culprit with the trajectory that led there.
pub struct ContentionReport {
    /// Worker count of the profiled pass.
    pub workers: usize,
    /// Operation of the profiled pass.
    pub op: &'static str,
    /// Registry snapshot covering exactly the measured pass (reset before).
    pub snapshot: stegfs_obs::Snapshot,
}

impl ContentionReport {
    /// The wait source with the largest total wait: one of the named lock
    /// families or the journal commit gate.  Returns `(name, total wait
    /// ns)`.
    pub fn dominant(&self) -> (&'static str, u64) {
        let mut best = ("none", 0u64);
        for (name, lock) in &self.snapshot.locks {
            if lock.wait.total > best.1 {
                best = (name, lock.wait.total);
            }
        }
        if self.snapshot.gate.stall_ns.total > best.1 {
            best = ("journal.commit_gate", self.snapshot.gate.stall_ns.total);
        }
        best
    }

    /// Serialise one pass as a JSON object (an element of the `contention`
    /// section array).
    pub fn section_json(&self) -> String {
        let (source, wait_ns) = self.dominant();
        format!(
            "{{\"workers\": {}, \"op\": \"{}\", \"dominant_wait_source\": \"{}\", \
             \"dominant_wait_total_ns\": {}, \"snapshot\": {}}}",
            self.workers,
            self.op,
            source,
            wait_ns,
            self.snapshot.to_json()
        )
    }
}

/// Serialise every pass's report as the `contention` JSON section (an
/// array, one element per measured pass in sweep order).
pub fn contention_section_json(reports: &[ContentionReport]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&r.section_json());
        s.push_str(if i + 1 == reports.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    s
}

/// Result of [`run_sweep`]: the throughput/latency points plus the
/// contention profile of every measured pass.
pub struct EngineSweep {
    /// One point per `(worker count, op)`.
    pub points: Vec<EnginePoint>,
    /// One obs snapshot per measured pass, in sweep order (parallel to
    /// `points`).
    pub contention: Vec<ContentionReport>,
}

fn params() -> StegParams {
    // Overhead baselines for the identical sweep: `STEGFS_BENCH_OBS=off`
    // runs fully uninstrumented, `=notrace` keeps the flat metrics but
    // disables the causal span layer — the difference between `notrace`
    // and the default isolates what request tracing itself costs.
    let mode = std::env::var("STEGFS_BENCH_OBS").unwrap_or_default();
    let obs_enabled = mode != "off";
    let tracing = obs_enabled && mode != "notrace";
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        obs_enabled,
        trace_capacity: if tracing {
            stegfs_obs::TRACE_CAPACITY
        } else {
            0
        },
        ..StegParams::for_tests()
    }
}

/// The workload file set: sizes drawn by the sim generator (Table 3 shape,
/// scaled to the sweep's 64 KiB operation size).
fn file_set(clients: usize) -> Vec<FileSpec> {
    let workload = WorkloadParams {
        volume_mb: 48,
        file_count: clients * FILES_PER_CLIENT,
        file_size_min: 63 * 1024,
        file_size_max: 64 * 1024,
        ..WorkloadParams::scaled_quick()
    };
    workload.generate_files()
}

/// Unified-namespace path of spec `index` for `client`: even files plain,
/// odd files hidden, so both namespaces carry half the load.
fn path_for(specs: &[FileSpec], client: usize, file: usize) -> String {
    let index = client * FILES_PER_CLIENT + file;
    let name = &specs[index].name;
    if file.is_multiple_of(2) {
        format!("/plain/{name}")
    } else {
        format!("/hidden/{name}")
    }
}

fn build_volume(specs: &[FileSpec], clients: usize) -> Arc<Vfs<SweepDevice>> {
    let dev = LatencyDevice::symmetric(MemBlockDevice::with_capacity_mb(1024, 48), BLOCK_LATENCY);
    let vfs = Vfs::format(dev, params()).expect("format");
    for c in 0..clients {
        let s = vfs.signon("sweep key");
        for f in 0..FILES_PER_CLIENT {
            let index = c * FILES_PER_CLIENT + f;
            let p = path_for(specs, c, f);
            let h = vfs.open(s, &p, OpenOptions::read_write()).expect("open");
            vfs.write_at(h, 0, &vec![0x5au8; specs[index].size as usize])
                .expect("prefill");
            vfs.close(h).expect("close");
        }
        vfs.signoff(s).expect("signoff");
    }
    Arc::new(vfs)
}

fn open_through_engine(client: &Client<SweepDevice>, path: &str) -> VfsHandle {
    match client
        .call(Request::Open {
            path: path.into(),
            opts: OpenOptions::read_write(),
        })
        .result
        .expect("engine open")
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    }
}

/// One measured pass: every client streams `ops_per_client` whole-file
/// depth-1 requests through the engine.  Returns
/// `(total ops, elapsed ms, mean latency ms)`.
fn one_pass(
    engine: &Arc<Engine<SweepDevice>>,
    specs: &Arc<Vec<FileSpec>>,
    clients: usize,
    write: bool,
    ops_per_client: usize,
) -> (u64, f64, f64) {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(engine);
            let specs = Arc::clone(specs);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let client = engine.client("sweep key");
                let handles: Vec<(VfsHandle, usize)> = (0..FILES_PER_CLIENT)
                    .map(|f| {
                        let index = c * FILES_PER_CLIENT + f;
                        (
                            open_through_engine(&client, &path_for(&specs, c, f)),
                            specs[index].size as usize,
                        )
                    })
                    .collect();
                barrier.wait();
                let mut latency = Duration::ZERO;
                for op in 0..ops_per_client {
                    let (h, size) = handles[op % handles.len()];
                    let completion = if write {
                        client.call(Request::WriteAt {
                            handle: h,
                            offset: 0,
                            data: vec![c as u8; size],
                        })
                    } else {
                        client.call(Request::ReadAt {
                            handle: h,
                            offset: 0,
                            len: size,
                        })
                    };
                    match completion.result.expect("engine op") {
                        Response::Data(d) => assert_eq!(d.len(), size),
                        Response::Written(n) => assert_eq!(n, size),
                        other => panic!("unexpected {other:?}"),
                    }
                    latency += completion.latency;
                }
                barrier.wait();
                for (h, _) in handles {
                    client.call(Request::Close { handle: h });
                }
                client.signoff().expect("signoff");
                latency
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed = start.elapsed();
    let mut latency_total = Duration::ZERO;
    for w in workers {
        latency_total += w.join().expect("sweep client");
    }
    let total = (clients * ops_per_client) as u64;
    (
        total,
        elapsed.as_secs_f64() * 1000.0,
        latency_total.as_secs_f64() * 1000.0 / total as f64,
    )
}

/// [`stegfs_obs::ENGINE_OPS`] index of the request type a pass issues.
fn pass_op_index(write: bool) -> usize {
    if write {
        5 // write_at
    } else {
        3 // read_at
    }
}

/// Run the sweep: for each worker count, a fresh volume and engine, a
/// warm-up pass, then a measured read pass and a measured write pass.  The
/// obs registry is reset before each measured pass, so its percentiles and
/// the returned [`ContentionReport`]s (one per measured pass) cover exactly
/// that pass.
pub fn run_sweep(clients: usize, ops_per_client: usize, worker_counts: &[usize]) -> EngineSweep {
    let specs = Arc::new(file_set(clients));
    let mut points = Vec::new();
    let mut contention = Vec::new();
    for &workers in worker_counts {
        let build_start = Instant::now();
        let vfs = build_volume(&specs, clients);
        let engine = Arc::new(Engine::start(vfs, workers));
        // The volume build serves both ops of this worker count equally.
        let build_ms = build_start.elapsed().as_secs_f64() * 1000.0 / 2.0;
        for (op, write) in [("read", false), ("write", true)] {
            let warm_start = Instant::now();
            one_pass(&engine, &specs, clients, write, ops_per_client / 4 + 1);
            let setup_ms = build_ms + warm_start.elapsed().as_secs_f64() * 1000.0;
            let obs = Arc::clone(engine.vfs().obs());
            obs.reset();
            let (total_ops, elapsed_ms, mean_latency_ms) =
                one_pass(&engine, &specs, clients, write, ops_per_client);
            let snapshot = obs.snapshot();
            let latency = snapshot
                .engine
                .latency
                .get(pass_op_index(write))
                .copied()
                .unwrap_or_default();
            points.push(EnginePoint {
                workers,
                clients,
                op,
                ops_per_sec: total_ops as f64 / (elapsed_ms / 1000.0),
                total_ops,
                elapsed_ms,
                mean_latency_ms,
                p50_ms: latency.p50 as f64 / 1e6,
                p99_ms: latency.p99 as f64 / 1e6,
                setup_ms,
            });
            contention.push(ContentionReport {
                workers,
                op,
                snapshot,
            });
        }
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("engine still shared"))
            .shutdown();
    }
    EngineSweep { points, contention }
}

/// Render the sweep as a text table.
pub fn render(points: &[EnginePoint]) -> String {
    let mut s = String::from(
        "Engine worker-scaling sweep (~64 KB whole-file requests, 12 clients)\n\
         op     workers      ops/sec   setup(ms)   elapsed(ms)   mean(ms)   p50(ms)   p99(ms)\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:<6} {:>7} {:>12.0} {:>11.1} {:>13.1} {:>10.2} {:>9.2} {:>9.2}\n",
            p.op,
            p.workers,
            p.ops_per_sec,
            p.setup_ms,
            p.elapsed_ms,
            p.mean_latency_ms,
            p.p50_ms,
            p.p99_ms
        ));
    }
    s
}

/// Serialise the sweep to the `engine_scaling` JSON section (an array; the
/// caller merges it into `BENCH.json` next to the other sections).
pub fn section_json(points: &[EnginePoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"op\": \"{}\", \"ops_per_sec\": {:.1}, \
             \"total_ops\": {}, \"elapsed_ms\": {:.2}, \"mean_latency_ms\": {:.2}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"setup_ms\": {:.2}}}{}\n",
            p.workers,
            p.clients,
            p.op,
            p.ops_per_sec,
            p.total_ops,
            p.elapsed_ms,
            p.mean_latency_ms,
            p.p50_ms,
            p.p99_ms,
            p.setup_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_points_and_contention() {
        let sweep = run_sweep(2, 2, &[2]);
        assert_eq!(sweep.points.len(), 2);
        for p in &sweep.points {
            assert_eq!(p.total_ops, 4);
            assert!(p.ops_per_sec > 0.0);
            assert!(p.mean_latency_ms > 0.0);
            assert!(p.p50_ms > 0.0, "p50 must come from the measured pass");
            assert!(p.p99_ms >= p.p50_ms);
            assert!(p.setup_ms > 0.0);
        }
        assert_eq!(
            sweep.contention.len(),
            sweep.points.len(),
            "every measured pass must be profiled"
        );
        assert_eq!(sweep.contention[0].op, "read");
        let last = sweep.contention.last().expect("write pass profiled");
        assert_eq!(last.op, "write");
        let json = contention_section_json(&sweep.contention);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"dominant_wait_source\""));
        assert!(json.contains("\"engine.queue\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn section_json_is_well_formed_enough() {
        let json = section_json(&[EnginePoint {
            workers: 12,
            clients: 12,
            op: "read",
            ops_per_sec: 1234.5,
            total_ops: 768,
            elapsed_ms: 622.2,
            mean_latency_ms: 9.7,
            p50_ms: 8.8,
            p99_ms: 20.4,
            setup_ms: 350.0,
        }]);
        assert!(json.contains("\"workers\": 12"));
        assert!(json.contains("\"p99_ms\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "engine_scaling", &json);
        assert!(merged.contains("\"engine_scaling\""));
    }
}
