//! Worker-scaling sweep through the `stegfs-engine` request engine.
//!
//! The paper's Figures 7–9 measure StegFS as a *server*: many users submit
//! file operations, the kernel driver executes them against one volume.
//! [`crate::vfs_scaling`] measures the raw `Vfs` under direct threads; this
//! sweep measures the same volume behind the request engine — a fixed
//! multi-user client population (12 depth-1 clients, the shape of the
//! paper's Figure 7 runs) against an engine of 1/2/4/8/12 workers, so the
//! curve shows how much of the offered concurrency the engine's worker pool
//! actually converts into throughput.
//!
//! The file set reuses [`stegfs_sim::FileSpec`] generation (uniform sizes
//! just under 64 KiB, half `/plain`, half `/hidden`), and the device is the
//! same [`LatencyDevice`] configuration as the VFS sweep, so the two
//! `BENCH.json` sections are directly comparable.  Since the I/O path now
//! batches whole extent lists into single submissions, a 64 KiB operation
//! costs one overlapped service time instead of ~64 sequential ones — the
//! engine curve must therefore sit at or above the direct-`Vfs` trajectory,
//! which `repro --engine-scaling` records next to it.

use crate::vfs_scaling::BLOCK_LATENCY;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};
use stegfs_blockdev::{LatencyDevice, MemBlockDevice};
use stegfs_core::StegParams;
use stegfs_engine::{Client, Engine, Request, Response};
use stegfs_sim::{FileSpec, WorkloadParams};
use stegfs_vfs::{OpenOptions, Vfs, VfsHandle};

/// The device behind the sweep (shared with the VFS sweep).
pub type SweepDevice = LatencyDevice<MemBlockDevice>;

/// Worker counts swept by [`run_sweep`].
pub const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 12];

/// Number of concurrent depth-1 clients (the multi-user population).
pub const CLIENTS: usize = 12;

/// Files per client: one plain, one hidden.
const FILES_PER_CLIENT: usize = 2;

/// One measured point of the engine sweep.
#[derive(Debug, Clone)]
pub struct EnginePoint {
    /// Number of engine worker threads.
    pub workers: usize,
    /// Number of submitting clients.
    pub clients: usize,
    /// Operation: `"read"` or `"write"`.
    pub op: &'static str,
    /// Whole-file requests completed per second (all clients).
    pub ops_per_sec: f64,
    /// Total requests completed.
    pub total_ops: u64,
    /// Wall-clock time of the pass, in milliseconds.
    pub elapsed_ms: f64,
    /// Mean submit-to-completion latency per request, in milliseconds.
    pub mean_latency_ms: f64,
}

fn params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        ..StegParams::for_tests()
    }
}

/// The workload file set: sizes drawn by the sim generator (Table 3 shape,
/// scaled to the sweep's 64 KiB operation size).
fn file_set(clients: usize) -> Vec<FileSpec> {
    let workload = WorkloadParams {
        volume_mb: 48,
        file_count: clients * FILES_PER_CLIENT,
        file_size_min: 63 * 1024,
        file_size_max: 64 * 1024,
        ..WorkloadParams::scaled_quick()
    };
    workload.generate_files()
}

/// Unified-namespace path of spec `index` for `client`: even files plain,
/// odd files hidden, so both namespaces carry half the load.
fn path_for(specs: &[FileSpec], client: usize, file: usize) -> String {
    let index = client * FILES_PER_CLIENT + file;
    let name = &specs[index].name;
    if file.is_multiple_of(2) {
        format!("/plain/{name}")
    } else {
        format!("/hidden/{name}")
    }
}

fn build_volume(specs: &[FileSpec], clients: usize) -> Arc<Vfs<SweepDevice>> {
    let dev = LatencyDevice::symmetric(MemBlockDevice::with_capacity_mb(1024, 48), BLOCK_LATENCY);
    let vfs = Vfs::format(dev, params()).expect("format");
    for c in 0..clients {
        let s = vfs.signon("sweep key");
        for f in 0..FILES_PER_CLIENT {
            let index = c * FILES_PER_CLIENT + f;
            let p = path_for(specs, c, f);
            let h = vfs.open(s, &p, OpenOptions::read_write()).expect("open");
            vfs.write_at(h, 0, &vec![0x5au8; specs[index].size as usize])
                .expect("prefill");
            vfs.close(h).expect("close");
        }
        vfs.signoff(s).expect("signoff");
    }
    Arc::new(vfs)
}

fn open_through_engine(client: &Client<SweepDevice>, path: &str) -> VfsHandle {
    match client
        .call(Request::Open {
            path: path.into(),
            opts: OpenOptions::read_write(),
        })
        .result
        .expect("engine open")
    {
        Response::Handle(h) => h,
        other => panic!("open returned {other:?}"),
    }
}

/// One measured pass: every client streams `ops_per_client` whole-file
/// depth-1 requests through the engine.  Returns
/// `(total ops, elapsed ms, mean latency ms)`.
fn one_pass(
    engine: &Arc<Engine<SweepDevice>>,
    specs: &Arc<Vec<FileSpec>>,
    clients: usize,
    write: bool,
    ops_per_client: usize,
) -> (u64, f64, f64) {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(engine);
            let specs = Arc::clone(specs);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let client = engine.client("sweep key");
                let handles: Vec<(VfsHandle, usize)> = (0..FILES_PER_CLIENT)
                    .map(|f| {
                        let index = c * FILES_PER_CLIENT + f;
                        (
                            open_through_engine(&client, &path_for(&specs, c, f)),
                            specs[index].size as usize,
                        )
                    })
                    .collect();
                barrier.wait();
                let mut latency = Duration::ZERO;
                for op in 0..ops_per_client {
                    let (h, size) = handles[op % handles.len()];
                    let completion = if write {
                        client.call(Request::WriteAt {
                            handle: h,
                            offset: 0,
                            data: vec![c as u8; size],
                        })
                    } else {
                        client.call(Request::ReadAt {
                            handle: h,
                            offset: 0,
                            len: size,
                        })
                    };
                    match completion.result.expect("engine op") {
                        Response::Data(d) => assert_eq!(d.len(), size),
                        Response::Written(n) => assert_eq!(n, size),
                        other => panic!("unexpected {other:?}"),
                    }
                    latency += completion.latency;
                }
                barrier.wait();
                for (h, _) in handles {
                    client.call(Request::Close { handle: h });
                }
                client.signoff().expect("signoff");
                latency
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    barrier.wait();
    let elapsed = start.elapsed();
    let mut latency_total = Duration::ZERO;
    for w in workers {
        latency_total += w.join().expect("sweep client");
    }
    let total = (clients * ops_per_client) as u64;
    (
        total,
        elapsed.as_secs_f64() * 1000.0,
        latency_total.as_secs_f64() * 1000.0 / total as f64,
    )
}

/// Run the sweep: for each worker count, a fresh volume and engine, a
/// warm-up pass, then a measured read pass and a measured write pass.
pub fn run_sweep(
    clients: usize,
    ops_per_client: usize,
    worker_counts: &[usize],
) -> Vec<EnginePoint> {
    let specs = Arc::new(file_set(clients));
    let mut out = Vec::new();
    for &workers in worker_counts {
        let vfs = build_volume(&specs, clients);
        let engine = Arc::new(Engine::start(vfs, workers));
        for (op, write) in [("read", false), ("write", true)] {
            one_pass(&engine, &specs, clients, write, ops_per_client / 4 + 1);
            let (total_ops, elapsed_ms, mean_latency_ms) =
                one_pass(&engine, &specs, clients, write, ops_per_client);
            out.push(EnginePoint {
                workers,
                clients,
                op,
                ops_per_sec: total_ops as f64 / (elapsed_ms / 1000.0),
                total_ops,
                elapsed_ms,
                mean_latency_ms,
            });
        }
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("engine still shared"))
            .shutdown();
    }
    out
}

/// Render the sweep as a text table.
pub fn render(points: &[EnginePoint]) -> String {
    let mut s = String::from(
        "Engine worker-scaling sweep (~64 KB whole-file requests, 12 clients)\n\
         op     workers      ops/sec   elapsed(ms)   mean latency(ms)\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:<6} {:>7} {:>12.0} {:>13.1} {:>18.2}\n",
            p.op, p.workers, p.ops_per_sec, p.elapsed_ms, p.mean_latency_ms
        ));
    }
    s
}

/// Serialise the sweep to the `engine_scaling` JSON section (an array; the
/// caller merges it into `BENCH.json` next to the other sections).
pub fn section_json(points: &[EnginePoint]) -> String {
    let mut s = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"op\": \"{}\", \"ops_per_sec\": {:.1}, \
             \"total_ops\": {}, \"elapsed_ms\": {:.2}, \"mean_latency_ms\": {:.2}}}{}\n",
            p.workers,
            p.clients,
            p.op,
            p.ops_per_sec,
            p.total_ops,
            p.elapsed_ms,
            p.mean_latency_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_points() {
        let points = run_sweep(2, 2, &[2]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.total_ops, 4);
            assert!(p.ops_per_sec > 0.0);
            assert!(p.mean_latency_ms > 0.0);
        }
    }

    #[test]
    fn section_json_is_well_formed_enough() {
        let json = section_json(&[EnginePoint {
            workers: 12,
            clients: 12,
            op: "read",
            ops_per_sec: 1234.5,
            total_ops: 768,
            elapsed_ms: 622.2,
            mean_latency_ms: 9.7,
        }]);
        assert!(json.contains("\"workers\": 12"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let merged = crate::bench_json::merge_section(None, "engine_scaling", &json);
        assert!(merged.contains("\"engine_scaling\""));
    }
}
