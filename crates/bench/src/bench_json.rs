//! Section-merging writer for `BENCH.json`.
//!
//! `BENCH.json` is one flat JSON object whose top-level keys are benchmark
//! sections (`"vfs_scaling"`, `"engine_scaling"`, ...), each written by a
//! different `repro` flag.  Rewriting the whole file from one sweep would
//! silently drop every other sweep's trajectory, so this module *merges*: it
//! scans the existing file's top-level sections (a tiny purpose-built
//! scanner — the workspace has no serde), replaces or appends the section
//! being written, and preserves everything else verbatim.

/// Split the top level of a JSON object into `(key, raw value)` pairs, in
/// order.  Returns `None` when `text` is not a parseable flat object (the
/// caller then starts a fresh file).  Values are kept as raw slices — the
/// scanner only needs to find their extents, which takes brace/bracket depth
/// tracking and string awareness, not a full JSON parser.
fn split_sections(text: &str) -> Option<Vec<(String, String)>> {
    let bytes = text.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(&b'}') => return Some(out),
            Some(&b'"') => {}
            _ => return None,
        }
        let (key, after_key) = scan_string(bytes, i)?;
        i = skip_ws(bytes, after_key);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let value_start = i;
        i = scan_value(bytes, i)?;
        out.push((key, text[value_start..i].trim().to_string()));
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(&b',') => i += 1,
            Some(&b'}') => return Some(out),
            _ => return None,
        }
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    i
}

/// Scan the string starting at `bytes[start] == b'"'`; returns the unescaped
/// content (escapes are preserved raw — keys here are plain identifiers) and
/// the index just past the closing quote.
fn scan_string(bytes: &[u8], start: usize) -> Option<(String, usize)> {
    let mut i = start + 1;
    let mut s = String::new();
    loop {
        match bytes.get(i)? {
            b'"' => return Some((s, i + 1)),
            b'\\' => {
                s.push(*bytes.get(i + 1)? as char);
                i += 2;
            }
            &c => {
                s.push(c as char);
                i += 1;
            }
        }
    }
}

/// Scan one JSON value starting at `start`; returns the index just past it.
fn scan_value(bytes: &[u8], start: usize) -> Option<usize> {
    match bytes.get(start)? {
        b'"' => scan_string(bytes, start).map(|(_, end)| end),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut i = start;
            loop {
                match bytes.get(i)? {
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(i + 1);
                        }
                    }
                    b'"' => {
                        i = scan_string(bytes, i)?.1;
                        continue;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        // A scalar: runs to the next comma or closing brace at this level.
        _ => {
            let mut i = start;
            while !matches!(bytes.get(i), None | Some(b',' | b'}' | b']')) {
                i += 1;
            }
            Some(i)
        }
    }
}

/// Merge `(key, value_json)` into `existing` (the previous file contents, or
/// `None` / unparseable to start fresh), returning the new file contents.
/// The section replaces an existing entry of the same key in place and
/// appends otherwise; every other section is preserved byte for byte.
pub fn merge_section(existing: Option<&str>, key: &str, value_json: &str) -> String {
    let mut sections = existing.and_then(split_sections).unwrap_or_default();
    let value = value_json.trim().to_string();
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = value,
        None => sections.push((key.to_string(), value)),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in sections.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {}{}\n",
            k,
            v,
            if i + 1 == sections.len() { "" } else { "," }
        ));
    }
    out.push_str("}\n");
    out
}

/// Read `path` (tolerating a missing file), merge the section, write back.
pub fn update_file(path: &str, key: &str, value_json: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), key, value_json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_file_gets_one_section() {
        let out = merge_section(None, "a", "[1, 2]");
        assert_eq!(out, "{\n  \"a\": [1, 2]\n}\n");
    }

    #[test]
    fn merging_preserves_other_sections() {
        let first = merge_section(None, "vfs_scaling", "[{\"threads\": 1}]");
        let second = merge_section(Some(&first), "engine_scaling", "[{\"workers\": 12}]");
        assert!(second.contains("\"vfs_scaling\": [{\"threads\": 1}]"));
        assert!(second.contains("\"engine_scaling\": [{\"workers\": 12}]"));
        // Re-writing a section replaces it in place, keeping the other.
        let third = merge_section(Some(&second), "vfs_scaling", "[{\"threads\": 2}]");
        assert!(third.contains("\"vfs_scaling\": [{\"threads\": 2}]"));
        assert!(!third.contains("\"threads\": 1"));
        assert!(third.contains("\"engine_scaling\": [{\"workers\": 12}]"));
        // The result stays parseable by our own scanner.
        assert_eq!(split_sections(&third).unwrap().len(), 2);
    }

    #[test]
    fn real_bench_shapes_roundtrip() {
        let json = "{\n  \"vfs_scaling\": [\n    {\"threads\": 1, \"mode\": \"disjoint\", \
                    \"ops_per_sec\": 117.3},\n    {\"threads\": 12, \"mode\": \"shared\", \
                    \"ops_per_sec\": 114.8}\n  ]\n}\n";
        let sections = split_sections(json).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, "vfs_scaling");
        assert!(sections[0].1.starts_with('['));
        let merged = merge_section(Some(json), "engine_scaling", "[]");
        let again = split_sections(&merged).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again[0].1, sections[0].1, "old section preserved verbatim");
    }

    #[test]
    fn garbage_input_starts_fresh() {
        for garbage in ["", "not json", "[1,2,3]", "{\"unterminated\": "] {
            let out = merge_section(Some(garbage), "k", "7");
            assert_eq!(out, "{\n  \"k\": 7\n}\n");
        }
    }

    #[test]
    fn strings_with_braces_do_not_confuse_the_scanner() {
        let tricky = "{\"a\": \"”{[\\\"}]\", \"b\": [1, \"x}\"], \"c\": 3.5}";
        let sections = split_sections(tricky).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[2], ("c".to_string(), "3.5".to_string()));
    }
}
