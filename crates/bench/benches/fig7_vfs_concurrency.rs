//! Figure 7, VFS edition: concurrent access time through the `stegfs-vfs`
//! front-end with *real OS threads* driving handle-based I/O on one shared
//! volume — the scenario the paper measures with its kernel driver, which
//! the library-level fig7 bench can only interleave cooperatively.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::{Arc, Barrier};
use std::thread;
use stegfs_blockdev::{MemBlockDevice, SharedDevice};
use stegfs_core::StegParams;
use stegfs_vfs::{OpenOptions, Vfs};

const FILE_KB: usize = 64;
const FILES_PER_USER: usize = 4;

fn params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        ..StegParams::for_tests()
    }
}

fn build_volume(users: usize) -> Arc<Vfs<SharedDevice>> {
    let dev = SharedDevice::new(MemBlockDevice::with_capacity_mb(1024, 32));
    let vfs = Vfs::format(dev, params()).expect("format");
    let data = vec![0x5au8; FILE_KB * 1024];
    for u in 0..users {
        let s = vfs.signon(&format!("user {u}"));
        for f in 0..FILES_PER_USER {
            // Half the working set plain, half hidden: mixed traffic.
            let path = if f % 2 == 0 {
                format!("/plain/u{u}-f{f}")
            } else {
                format!("/hidden/u{u}-f{f}")
            };
            let h = vfs.open(s, &path, OpenOptions::read_write()).expect("open");
            vfs.write_at(h, 0, &data).expect("prepare");
            vfs.close(h).expect("close");
        }
    }
    Arc::new(vfs)
}

fn one_pass(vfs: &Arc<Vfs<SharedDevice>>, users: usize, write: bool) {
    let barrier = Arc::new(Barrier::new(users));
    let workers: Vec<_> = (0..users)
        .map(|u| {
            let vfs = Arc::clone(vfs);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let s = vfs.signon(&format!("user {u}"));
                barrier.wait();
                let data = vec![u as u8; FILE_KB * 1024];
                for f in 0..FILES_PER_USER {
                    let path = if f % 2 == 0 {
                        format!("/plain/u{u}-f{f}")
                    } else {
                        format!("/hidden/u{u}-f{f}")
                    };
                    let h = vfs.open(s, &path, OpenOptions::read_write()).expect("open");
                    if write {
                        vfs.write_at(h, 0, &data).expect("write");
                    } else {
                        let got = vfs.read_at(h, 0, FILE_KB * 1024).expect("read");
                        assert_eq!(got.len(), FILE_KB * 1024);
                    }
                    vfs.close(h).expect("close");
                }
                vfs.signoff(s).expect("signoff");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("bench worker");
    }
}

fn fig7_vfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_vfs_concurrency");
    group.sample_size(10);
    for users in [1usize, 2, 8] {
        let vfs = build_volume(users);
        group.bench_with_input(BenchmarkId::new("read", users), &users, |b, &users| {
            b.iter(|| one_pass(&vfs, users, false));
        });
        group.bench_with_input(BenchmarkId::new("write", users), &users, |b, &users| {
            b.iter(|| one_pass(&vfs, users, true));
        });
    }
    group.finish();
}

criterion_group!(benches, fig7_vfs);
criterion_main!(benches);
