//! Figure 7, VFS edition: concurrent access through the `stegfs-vfs`
//! front-end with *real OS threads* driving handle-based I/O on one shared
//! volume — the scenario the paper measures with its kernel driver, which
//! the library-level fig7 bench can only interleave cooperatively.
//!
//! Since the shared-reference core redesign there is no global volume lock,
//! so this bench is a thread-*scaling* sweep: 1/2/4/8/12 threads over
//! disjoint and shared working sets.  Disjoint throughput should rise with
//! thread count; shared throughput is the per-object contention floor.
//! `repro --vfs-scaling` runs the same sweep standalone and records ops/sec
//! per point in `BENCH.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stegfs_bench::vfs_scaling::{run_sweep, THREAD_COUNTS};

fn fig7_vfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_vfs_concurrency");
    group.sample_size(10);
    for mode in ["disjoint", "shared"] {
        for &threads in &THREAD_COUNTS {
            let vfs = stegfs_bench::vfs_scaling::bench_volume(threads, mode);
            for (op, write) in [("read", false), ("write", true)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{mode}/{op}"), threads),
                    &threads,
                    |b, &threads| {
                        b.iter(|| {
                            stegfs_bench::vfs_scaling::bench_pass(&vfs, threads, mode, write, 4)
                        });
                    },
                );
            }
        }
    }
    group.finish();

    // One quick standalone sweep so `cargo bench` also prints the ops/sec
    // trajectory in the scaling shape the acceptance criteria quote.
    let points = run_sweep(16);
    println!("{}", stegfs_bench::vfs_scaling::render(&points));
}

criterion_group!(benches, fig7_vfs);
criterion_main!(benches);
