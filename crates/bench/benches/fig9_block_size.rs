//! Figure 9: serial (single-user) file operations across block sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stegfs_bench::bench_workload;
use stegfs_sim::driver::{run_access, Operation};
use stegfs_sim::schemes::{build_scheme, SchemeKind};
use stegfs_sim::AccessPattern;

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_block_size");
    group.sample_size(10);
    for block_size in [1024usize, 8192, 65536] {
        for kind in [
            SchemeKind::CleanDisk,
            SchemeKind::FragDisk,
            SchemeKind::StegFs,
        ] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), block_size),
                &block_size,
                |b, &block_size| {
                    let mut p = bench_workload();
                    p.block_size = block_size;
                    p.users = 1;
                    let specs = p.generate_files();
                    let mut scheme = build_scheme(kind, &p).unwrap();
                    scheme.prepare(&specs, &p).unwrap();
                    b.iter(|| {
                        run_access(
                            scheme.as_mut(),
                            &specs,
                            1,
                            AccessPattern::Serial,
                            Operation::Read,
                        )
                        .unwrap()
                        .avg_access_time_s()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
