//! Figure 8: sensitivity to file size (normalized access time, s/KB).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stegfs_bench::bench_workload;
use stegfs_sim::driver::{run_access, Operation};
use stegfs_sim::schemes::{build_scheme, SchemeKind};
use stegfs_sim::AccessPattern;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_file_size");
    group.sample_size(10);
    for file_kb in [64u64, 256] {
        for kind in [SchemeKind::CleanDisk, SchemeKind::StegFs] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), file_kb),
                &file_kb,
                |b, &file_kb| {
                    let mut p = bench_workload();
                    p.file_size_min = (file_kb - 1) * 1024;
                    p.file_size_max = file_kb * 1024;
                    p.users = 4;
                    let specs = p.generate_files();
                    let mut scheme = build_scheme(kind, &p).unwrap();
                    scheme.prepare(&specs, &p).unwrap();
                    b.iter(|| {
                        run_access(
                            scheme.as_mut(),
                            &specs,
                            4,
                            AccessPattern::Interleaved,
                            Operation::Read,
                        )
                        .unwrap()
                        .normalized_s_per_kb()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
