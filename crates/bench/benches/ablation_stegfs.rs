//! Ablation benches for the StegFS design choices called out in DESIGN.md:
//! the cost of the keyed locator as occupancy grows, the overhead of the
//! internal free pool, and the price of the abandoned-block camouflage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{ObjectKind, StegFs, StegParams};

fn params_with(abandoned_pct: f64, fb_max: usize) -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        abandoned_pct,
        free_blocks_min: 0,
        free_blocks_max: fb_max,
        ..StegParams::for_tests()
    }
}

/// How much usable space does each camouflage feature cost?
fn ablation_space_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_space");
    group.sample_size(10);
    for (label, abandoned, fb_max) in [
        ("bare", 0.0, 0usize),
        ("abandoned_1pct", 1.0, 0),
        ("abandoned_plus_pool", 1.0, 10),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let fs = StegFs::format(
                    MemBlockDevice::new(1024, 8192),
                    params_with(abandoned, fb_max),
                )
                .unwrap();
                fs.steg_create("probe", "uak", ObjectKind::File).unwrap();
                fs.write_hidden_with_key("probe", "uak", &vec![1u8; 64 * 1024])
                    .unwrap();
                fs.space_report().unwrap().free_blocks
            });
        });
    }
    group.finish();
}

/// Locator cost as the volume fills up: more allocated candidates must be
/// decrypted and rejected before the header is found.
fn ablation_locator_occupancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_locator");
    group.sample_size(10);
    for occupancy_files in [0usize, 50, 150] {
        group.bench_with_input(
            BenchmarkId::new("open_hidden", occupancy_files),
            &occupancy_files,
            |b, &n| {
                let fs =
                    StegFs::format(MemBlockDevice::new(1024, 8192), params_with(1.0, 4)).unwrap();
                fs.steg_create("needle", "uak", ObjectKind::File).unwrap();
                for i in 0..n {
                    fs.write_plain(&format!("/hay-{i}"), &vec![0u8; 8 * 1024])
                        .unwrap();
                }
                b.iter(|| fs.open_hidden("needle", "uak").unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_space_overhead, ablation_locator_occupancy);
criterion_main!(benches);
