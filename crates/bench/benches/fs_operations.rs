//! Micro-benchmarks of file-system-level operations: plain file I/O on the
//! substrate versus hidden-file I/O through StegFS, on the same in-memory
//! device (no disk model — this isolates CPU/structure costs, the complement
//! of the simulated-time experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stegfs_blockdev::MemBlockDevice;
use stegfs_core::{ObjectKind, StegFs, StegParams};
use stegfs_fs::{AllocPolicy, FormatOptions, PlainFs};

const FILE_SIZE: usize = 256 * 1024;

fn steg_params() -> StegParams {
    StegParams {
        random_fill: false,
        dummy_file_count: 0,
        ..StegParams::for_tests()
    }
}

fn bench_plain_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("plain_fs");
    group.throughput(Throughput::Bytes(FILE_SIZE as u64));
    let data = vec![0x42u8; FILE_SIZE];

    group.bench_function("write_256k", |b| {
        b.iter_with_setup(
            || {
                PlainFs::format(
                    MemBlockDevice::new(1024, 8192),
                    FormatOptions {
                        policy: AllocPolicy::Contiguous,
                        ..FormatOptions::default()
                    },
                )
                .unwrap()
            },
            |fs| fs.write_file("/f", &data).unwrap(),
        );
    });

    let fs = PlainFs::format(MemBlockDevice::new(1024, 8192), FormatOptions::default()).unwrap();
    fs.write_file("/f", &data).unwrap();
    group.bench_function("read_256k", |b| {
        b.iter(|| fs.read_file("/f").unwrap());
    });
    group.finish();
}

fn bench_hidden_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("stegfs_hidden");
    group.throughput(Throughput::Bytes(FILE_SIZE as u64));
    let data = vec![0x42u8; FILE_SIZE];

    group.bench_function("write_256k", |b| {
        b.iter_with_setup(
            || {
                let fs = StegFs::format(MemBlockDevice::new(1024, 8192), steg_params()).unwrap();
                fs.steg_create("f", "uak", ObjectKind::File).unwrap();
                fs
            },
            |fs| fs.write_hidden_with_key("f", "uak", &data).unwrap(),
        );
    });

    let fs = StegFs::format(MemBlockDevice::new(1024, 8192), steg_params()).unwrap();
    fs.steg_create("f", "uak", ObjectKind::File).unwrap();
    fs.write_hidden_with_key("f", "uak", &data).unwrap();
    group.bench_function("read_256k", |b| {
        b.iter(|| fs.read_hidden_with_key("f", "uak").unwrap());
    });

    for occupancy in [10u64, 200] {
        group.bench_with_input(
            BenchmarkId::new("open_after_occupancy", occupancy),
            &occupancy,
            |b, &occupancy| {
                let fs = StegFs::format(MemBlockDevice::new(1024, 8192), steg_params()).unwrap();
                fs.steg_create("target", "uak", ObjectKind::File).unwrap();
                // Crowd the volume so the locator has to skip allocated blocks.
                for i in 0..occupancy {
                    fs.write_plain(&format!("/crowd-{i}"), &vec![0u8; 4096])
                        .unwrap();
                }
                b.iter(|| fs.open_hidden("target", "uak").unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plain_fs, bench_hidden_fs);
criterion_main!(benches);
