//! Figure 6: StegRand effective space utilization vs replication factor.
//! The bench measures the allocation-model sweep itself; the `repro` binary
//! prints the resulting table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stegfs_baselines::stegrand::StegRandSpaceModel;

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_stegrand_space");
    group.sample_size(10);
    for replication in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("until_first_loss_128mb_1kb", replication),
            &replication,
            |b, &replication| {
                b.iter(|| {
                    let mut model = StegRandSpaceModel::new(128 * 1024, replication, 42);
                    model.run_until_loss(1024, |rng| rng.next_in_range(1024, 2048) as u32)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
