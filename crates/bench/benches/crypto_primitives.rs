//! Micro-benchmarks of the cryptographic building blocks StegFS leans on:
//! SHA-256 (signatures, locator), AES-CTR (block encryption) and the keyed
//! block locator itself.  The paper argues decryption cost is negligible
//! next to I/O ("a 2 MBytes file can be decrypted in less than 120 ms");
//! these benches let you check that claim on your own hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stegfs_crypto::modes::{derive_iv, CtrCipher};
use stegfs_crypto::prng::BlockLocator;
use stegfs_crypto::sha256::sha256;
use stegfs_crypto::Aes;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 64 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(data));
        });
    }
    group.finish();
}

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes256");
    let aes = Aes::new(&[7u8; 32]);
    group.bench_function("single_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            block
        });
    });

    // The paper's reference point: decrypting a 2 MB file.
    let ctr = CtrCipher::new(&[7u8; 32]);
    for size in [1024usize, 2 * 1024 * 1024] {
        let mut data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("ctr_transform", size), &size, |b, _| {
            b.iter(|| {
                let iv = derive_iv(&[7u8; 32], 9);
                ctr.apply(&iv, &mut data);
            });
        });
    }
    group.finish();
}

fn bench_locator(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_locator");
    for probes in [1usize, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("candidates", probes),
            &probes,
            |b, &probes| {
                b.iter(|| {
                    let mut locator =
                        BlockLocator::new(b"user:/budget", b"file access key", 1 << 20);
                    locator.candidates(probes)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_aes, bench_locator);
criterion_main!(benches);
