//! Figure 7: read/write access time vs number of concurrent users.
//! Each bench iteration runs one full measured pass for one scheme at one
//! concurrency level on the scaled workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stegfs_bench::bench_workload;
use stegfs_sim::driver::{run_access, Operation};
use stegfs_sim::schemes::{build_scheme, SchemeKind};
use stegfs_sim::AccessPattern;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_concurrency");
    group.sample_size(10);
    let params = bench_workload();
    let specs = params.generate_files();
    for kind in [
        SchemeKind::CleanDisk,
        SchemeKind::StegFs,
        SchemeKind::StegRand,
    ] {
        for users in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), users),
                &users,
                |b, &users| {
                    let mut p = params.clone();
                    p.users = users;
                    let mut scheme = build_scheme(kind, &p).unwrap();
                    scheme.prepare(&specs, &p).unwrap();
                    b.iter(|| {
                        run_access(
                            scheme.as_mut(),
                            &specs,
                            users,
                            AccessPattern::Interleaved,
                            Operation::Read,
                        )
                        .unwrap()
                        .avg_access_time_s()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
