//! The [`BlockDevice`] trait and the in-memory reference implementation.

use crate::error::{BlockError, BlockResult};
use parking_lot::Mutex;
use std::sync::Arc;

/// Identifier of a block within a device (0-based).
pub type BlockId = u64;

/// A fixed-block-size random-access storage volume.
///
/// Every backend in this workspace — the in-memory volume, the file-backed
/// volume, the timing-model wrapper, the metering wrapper and the buffer
/// cache — implements this trait, so the file-system layers above are
/// agnostic to where the bytes actually live.
///
/// All I/O takes `&self`: a device is expected to admit *concurrent* block
/// transfers, providing whatever interior locking it needs (the in-memory
/// volume stripes its storage so disjoint blocks transfer in parallel; the
/// file-backed volume serialises on its file handle).  This is what lets the
/// shared-reference file-system layers above overlap block I/O from many
/// threads instead of funnelling every transfer through one volume lock.
pub trait BlockDevice {
    /// Size of each block in bytes.  Constant for the lifetime of the device.
    fn block_size(&self) -> usize;

    /// Total number of blocks in the device.
    fn total_blocks(&self) -> u64;

    /// Read block `block` into `buf`.
    ///
    /// `buf.len()` must equal [`block_size`](Self::block_size).
    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()>;

    /// Write `buf` to block `block`.
    ///
    /// `buf.len()` must equal [`block_size`](Self::block_size).
    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()>;

    /// Read a batch of blocks in **one submission**: `buf` is the
    /// concatenation of the blocks named by `blocks`, in order, so
    /// `buf.len()` must equal `blocks.len() * block_size`.
    ///
    /// The default implementation loops block at a time, so every backend is
    /// automatically batch-capable; backends with a cheaper bulk path
    /// override it ([`MemBlockDevice`] copies under one pass,
    /// [`crate::LatencyDevice`] charges the batch one *overlapped* service
    /// time instead of sleeping per block, [`crate::MeteredDevice`] counts
    /// the whole batch as a single submission).  Batches may name the same
    /// block more than once; writes apply in order, so the last write wins,
    /// exactly as the fallback loop behaves.
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        let bs = self.block_size();
        check_batch(blocks.len(), buf.len(), bs)?;
        for (i, &block) in blocks.iter().enumerate() {
            self.read_block(block, &mut buf[i * bs..(i + 1) * bs])?;
        }
        Ok(())
    }

    /// Write a batch of blocks in **one submission**; the counterpart of
    /// [`read_blocks`](Self::read_blocks), with the same layout contract.
    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        let bs = self.block_size();
        check_batch(blocks.len(), buf.len(), bs)?;
        for (i, &block) in blocks.iter().enumerate() {
            self.write_block(block, &buf[i * bs..(i + 1) * bs])?;
        }
        Ok(())
    }

    /// Flush any buffered state to the backing store.  Defaults to a no-op.
    fn flush(&self) -> BlockResult<()> {
        Ok(())
    }

    /// Capacity of the device in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.total_blocks() * self.block_size() as u64
    }

    /// Convenience: read a block into a freshly allocated vector.
    fn read_block_vec(&self, block: BlockId) -> BlockResult<Vec<u8>> {
        let mut buf = vec![0u8; self.block_size()];
        self.read_block(block, &mut buf)?;
        Ok(buf)
    }
}

pub(crate) fn check_batch(blocks: usize, buf_len: usize, block_size: usize) -> BlockResult<()> {
    let expected = blocks
        .checked_mul(block_size)
        .ok_or(BlockError::BadBufferLength {
            got: buf_len,
            expected: usize::MAX,
        })?;
    if buf_len != expected {
        return Err(BlockError::BadBufferLength {
            got: buf_len,
            expected,
        });
    }
    Ok(())
}

pub(crate) fn check_access(
    block: BlockId,
    total: u64,
    buf_len: usize,
    block_size: usize,
) -> BlockResult<()> {
    if block >= total {
        return Err(BlockError::OutOfRange { block, total });
    }
    if buf_len != block_size {
        return Err(BlockError::BadBufferLength {
            got: buf_len,
            expected: block_size,
        });
    }
    Ok(())
}

/// Number of independently locked storage stripes in a [`MemBlockDevice`].
pub const MEM_STRIPES: usize = 64;

/// An in-memory block device.
///
/// This is the workhorse backend for tests and for the performance
/// experiments (which measure *simulated* disk time, not host I/O time).
/// Storage is striped over [`MEM_STRIPES`] independently locked segments
/// (block `b` lives in stripe `b % MEM_STRIPES`), so concurrent transfers of
/// different blocks proceed in parallel.
pub struct MemBlockDevice {
    block_size: usize,
    stripes: Vec<Mutex<Vec<u8>>>,
    total_blocks: u64,
}

impl MemBlockDevice {
    /// Create a zero-filled volume of `total_blocks` blocks of `block_size`
    /// bytes each.
    ///
    /// # Panics
    /// Panics if `block_size` is 0 or `total_blocks` is 0.
    pub fn new(block_size: usize, total_blocks: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(total_blocks > 0, "device must contain at least one block");
        let bytes = (block_size as u64)
            .checked_mul(total_blocks)
            .expect("device size overflows usize");
        usize::try_from(bytes).expect("device too large for memory");
        let blocks_per_stripe = (total_blocks as usize).div_ceil(MEM_STRIPES);
        MemBlockDevice {
            block_size,
            stripes: (0..MEM_STRIPES)
                .map(|_| Mutex::new(vec![0u8; blocks_per_stripe * block_size]))
                .collect(),
            total_blocks,
        }
    }

    /// Create a volume sized in whole megabytes, a convenience used by the
    /// experiment harness (the paper's default volume is 1 GB).
    pub fn with_capacity_mb(block_size: usize, megabytes: u64) -> Self {
        let total_blocks = megabytes * 1024 * 1024 / block_size as u64;
        Self::new(block_size, total_blocks)
    }

    fn slot(&self, block: BlockId) -> (&Mutex<Vec<u8>>, usize) {
        let stripe = (block as usize) % MEM_STRIPES;
        let index = (block as usize) / MEM_STRIPES;
        (&self.stripes[stripe], index * self.block_size)
    }

    /// Copy of the raw volume bytes in block order (used by tests and by the
    /// backup path, which images raw blocks).
    pub fn snapshot_raw(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.total_blocks as usize * self.block_size];
        for b in 0..self.total_blocks {
            let (stripe, start) = self.slot(b);
            let data = stripe.lock();
            let dst = b as usize * self.block_size;
            out[dst..dst + self.block_size].copy_from_slice(&data[start..start + self.block_size]);
        }
        out
    }
}

impl BlockDevice for MemBlockDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        check_access(block, self.total_blocks, buf.len(), self.block_size)?;
        let (stripe, start) = self.slot(block);
        let data = stripe.lock();
        buf.copy_from_slice(&data[start..start + self.block_size]);
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        check_access(block, self.total_blocks, buf.len(), self.block_size)?;
        let (stripe, start) = self.slot(block);
        let mut data = stripe.lock();
        data[start..start + self.block_size].copy_from_slice(buf);
        Ok(())
    }

    // The native batch paths validate the whole submission up front, then
    // stream the copies in one pass (one stripe acquisition per block, no
    // per-block re-validation or dispatch).
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        check_batch(blocks.len(), buf.len(), self.block_size)?;
        for &block in blocks {
            if block >= self.total_blocks {
                return Err(BlockError::OutOfRange {
                    block,
                    total: self.total_blocks,
                });
            }
        }
        for (i, &block) in blocks.iter().enumerate() {
            let (stripe, start) = self.slot(block);
            let data = stripe.lock();
            buf[i * self.block_size..(i + 1) * self.block_size]
                .copy_from_slice(&data[start..start + self.block_size]);
        }
        Ok(())
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        check_batch(blocks.len(), buf.len(), self.block_size)?;
        for &block in blocks {
            if block >= self.total_blocks {
                return Err(BlockError::OutOfRange {
                    block,
                    total: self.total_blocks,
                });
            }
        }
        for (i, &block) in blocks.iter().enumerate() {
            let (stripe, start) = self.slot(block);
            let mut data = stripe.lock();
            data[start..start + self.block_size]
                .copy_from_slice(&buf[i * self.block_size..(i + 1) * self.block_size]);
        }
        Ok(())
    }
}

/// A cloneable, thread-safe handle to a block device.
///
/// The multi-user experiments interleave requests from several logical users
/// against one volume; `SharedDevice` provides the single point of
/// serialisation.  It also lets the file-system layer and the StegFS layer
/// hold handles to the same underlying volume.
pub struct SharedDevice {
    inner: Arc<Mutex<Box<dyn BlockDevice + Send>>>,
}

impl Clone for SharedDevice {
    fn clone(&self) -> Self {
        SharedDevice {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl SharedDevice {
    /// Wrap a device in a shared handle.
    pub fn new<D: BlockDevice + Send + 'static>(device: D) -> Self {
        SharedDevice {
            inner: Arc::new(Mutex::new(Box::new(device))),
        }
    }

    /// Run a closure with exclusive access to the underlying device.
    pub fn with<R>(&self, f: impl FnOnce(&mut (dyn BlockDevice + Send)) -> R) -> R {
        let mut guard = self.inner.lock();
        f(guard.as_mut())
    }

    /// Read one block through a shared (`&self`) handle.
    ///
    /// The `BlockDevice` trait takes `&mut self`; these helpers let code that
    /// only holds a clone of the handle — a reader thread, an adversary
    /// scanning the raw volume — do I/O without declaring the handle `mut`.
    pub fn read_block_shared(&self, block: BlockId) -> BlockResult<Vec<u8>> {
        self.with(|d| d.read_block_vec(block))
    }

    /// Write one block through a shared (`&self`) handle.
    pub fn write_block_shared(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        self.with(|d| d.write_block(block, buf))
    }

    /// Number of clones of this handle currently alive.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Recover the boxed inner device if this is the last handle; otherwise
    /// return the handle unchanged.
    pub fn try_into_inner(self) -> Result<Box<dyn BlockDevice + Send>, SharedDevice> {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => Ok(mutex.into_inner()),
            Err(inner) => Err(SharedDevice { inner }),
        }
    }
}

impl BlockDevice for SharedDevice {
    fn block_size(&self) -> usize {
        self.inner.lock().block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.lock().total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        self.inner.lock().read_block(block, buf)
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        self.inner.lock().write_block(block, buf)
    }

    // Forward batches whole, so a wrapped device that counts or overlaps
    // submissions sees one submission, not a loop of singles.
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        self.inner.lock().read_blocks(blocks, buf)
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        self.inner.lock().write_blocks(blocks, buf)
    }

    fn flush(&self) -> BlockResult<()> {
        self.inner.lock().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let dev = MemBlockDevice::new(512, 8);
        let pattern: Vec<u8> = (0..512).map(|i| (i % 256) as u8).collect();
        dev.write_block(3, &pattern).unwrap();
        let mut buf = vec![0u8; 512];
        dev.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, pattern);
        // Neighbouring blocks untouched.
        dev.read_block(2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        dev.read_block(4, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let dev = MemBlockDevice::new(512, 8);
        let buf = vec![0u8; 512];
        assert_eq!(
            dev.write_block(8, &buf),
            Err(BlockError::OutOfRange { block: 8, total: 8 })
        );
        let mut rbuf = vec![0u8; 512];
        assert_eq!(
            dev.read_block(100, &mut rbuf),
            Err(BlockError::OutOfRange {
                block: 100,
                total: 8
            })
        );
    }

    #[test]
    fn wrong_buffer_length_rejected() {
        let dev = MemBlockDevice::new(512, 8);
        let buf = vec![0u8; 100];
        assert_eq!(
            dev.write_block(0, &buf),
            Err(BlockError::BadBufferLength {
                got: 100,
                expected: 512
            })
        );
    }

    #[test]
    fn capacity_and_geometry() {
        let dev = MemBlockDevice::new(1024, 2048);
        assert_eq!(dev.block_size(), 1024);
        assert_eq!(dev.total_blocks(), 2048);
        assert_eq!(dev.capacity_bytes(), 2 * 1024 * 1024);

        let dev = MemBlockDevice::with_capacity_mb(1024, 1);
        assert_eq!(dev.total_blocks(), 1024);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_rejected() {
        MemBlockDevice::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        MemBlockDevice::new(512, 0);
    }

    #[test]
    fn read_block_vec_helper() {
        let dev = MemBlockDevice::new(16, 4);
        dev.write_block(1, &[7u8; 16]).unwrap();
        assert_eq!(dev.read_block_vec(1).unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn shared_device_clones_view_same_storage() {
        let a = SharedDevice::new(MemBlockDevice::new(64, 4));
        let b = a.clone();
        a.write_block(2, &[0xaa; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        b.read_block(2, &mut buf).unwrap();
        assert_eq!(buf, vec![0xaa; 64]);
        assert_eq!(b.block_size(), 64);
        assert_eq!(b.total_blocks(), 4);
        b.flush().unwrap();
    }

    #[test]
    fn shared_device_with_closure() {
        let dev = SharedDevice::new(MemBlockDevice::new(32, 2));
        let total = dev.with(|d| d.total_blocks());
        assert_eq!(total, 2);
    }

    #[test]
    fn shared_device_shared_ref_io() {
        let dev = SharedDevice::new(MemBlockDevice::new(64, 4));
        let reader = dev.clone();
        dev.write_block_shared(1, &[0x5a; 64]).unwrap();
        assert_eq!(reader.read_block_shared(1).unwrap(), vec![0x5a; 64]);
        assert_eq!(dev.handle_count(), 2);
    }

    #[test]
    fn shared_device_try_into_inner() {
        let dev = SharedDevice::new(MemBlockDevice::new(64, 4));
        let clone = dev.clone();
        // Two handles alive: recovery fails and returns the handle.
        let dev = match dev.try_into_inner() {
            Err(handle) => handle,
            Ok(_) => panic!("unwrap must fail while a clone is alive"),
        };
        drop(clone);
        // Last handle: recovery succeeds.
        let Ok(inner) = dev.try_into_inner() else {
            panic!("sole handle must unwrap");
        };
        assert_eq!(inner.total_blocks(), 4);
    }
}
