//! A block device backed by a regular file on the host file system.
//!
//! Used by the runnable examples so that a StegFS volume survives between
//! invocations, exactly like the disk-partition-backed volumes of the
//! original Linux driver.

use crate::device::{check_access, check_batch, BlockDevice, BlockId};
use crate::error::BlockResult;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A volume stored in a single file; block `i` lives at byte offset
/// `i * block_size`.  Transfers serialise on the file handle (the seek and
/// the read/write must be one atomic pair).
pub struct FileBlockDevice {
    file: Mutex<File>,
    block_size: usize,
    total_blocks: u64,
}

impl FileBlockDevice {
    /// Create (or truncate) a volume file of `total_blocks * block_size`
    /// bytes.
    pub fn create<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        total_blocks: u64,
    ) -> BlockResult<Self> {
        assert!(block_size > 0 && total_blocks > 0, "empty device");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(block_size as u64 * total_blocks)?;
        Ok(FileBlockDevice {
            file: Mutex::new(file),
            block_size,
            total_blocks,
        })
    }

    /// Open an existing volume file created by [`create`](Self::create).
    /// The block size must be supplied by the caller (StegFS records it in
    /// the superblock, which the file-system layer reads).
    pub fn open<P: AsRef<Path>>(path: P, block_size: usize) -> BlockResult<Self> {
        assert!(block_size > 0, "block size must be positive");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let total_blocks = len / block_size as u64;
        Ok(FileBlockDevice {
            file: Mutex::new(file),
            block_size,
            total_blocks,
        })
    }
}

impl BlockDevice for FileBlockDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        check_access(block, self.total_blocks, buf.len(), self.block_size)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(block * self.block_size as u64))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        check_access(block, self.total_blocks, buf.len(), self.block_size)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(block * self.block_size as u64))?;
        file.write_all(buf)?;
        Ok(())
    }

    // Batches transfer under one hold of the file lock (one seek+transfer
    // pair per block, but no per-block lock churn and no interleaving with
    // other submissions).  The whole submission is validated before any
    // byte moves, matching the in-memory backend: an invalid block anywhere
    // in the batch fails it without a torn prefix.
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        check_batch(blocks.len(), buf.len(), self.block_size)?;
        for &block in blocks {
            check_access(block, self.total_blocks, self.block_size, self.block_size)?;
        }
        let mut file = self.file.lock();
        for (i, &block) in blocks.iter().enumerate() {
            file.seek(SeekFrom::Start(block * self.block_size as u64))?;
            file.read_exact(&mut buf[i * self.block_size..(i + 1) * self.block_size])?;
        }
        Ok(())
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        check_batch(blocks.len(), buf.len(), self.block_size)?;
        for &block in blocks {
            check_access(block, self.total_blocks, self.block_size, self.block_size)?;
        }
        let mut file = self.file.lock();
        for (i, &block) in blocks.iter().enumerate() {
            file.seek(SeekFrom::Start(block * self.block_size as u64))?;
            file.write_all(&buf[i * self.block_size..(i + 1) * self.block_size])?;
        }
        Ok(())
    }

    fn flush(&self) -> BlockResult<()> {
        self.file.lock().flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BlockError;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "stegfs-blockdev-test-{}-{}",
            std::process::id(),
            name
        ));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = temp_path("roundtrip");
        {
            let dev = FileBlockDevice::create(&path, 256, 16).unwrap();
            assert_eq!(dev.total_blocks(), 16);
            dev.write_block(5, &[0x5a; 256]).unwrap();
            dev.flush().unwrap();
        }
        {
            let dev = FileBlockDevice::open(&path, 256).unwrap();
            assert_eq!(dev.total_blocks(), 16);
            assert_eq!(dev.block_size(), 256);
            let mut buf = vec![0u8; 256];
            dev.read_block(5, &mut buf).unwrap();
            assert_eq!(buf, vec![0x5a; 256]);
            dev.read_block(6, &mut buf).unwrap();
            assert_eq!(buf, vec![0u8; 256]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_and_bad_buffer() {
        let path = temp_path("bounds");
        let dev = FileBlockDevice::create(&path, 128, 4).unwrap();
        assert_eq!(
            dev.write_block(4, &[0u8; 128]),
            Err(BlockError::OutOfRange { block: 4, total: 4 })
        );
        assert_eq!(
            dev.write_block(0, &[0u8; 64]),
            Err(BlockError::BadBufferLength {
                got: 64,
                expected: 128
            })
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_missing_file_fails() {
        let path = temp_path("does-not-exist");
        assert!(FileBlockDevice::open(&path, 512).is_err());
    }

    #[test]
    fn capacity_matches_file_length() {
        let path = temp_path("capacity");
        let dev = FileBlockDevice::create(&path, 512, 32).unwrap();
        assert_eq!(dev.capacity_bytes(), 512 * 32);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 512 * 32);
        drop(dev);
        std::fs::remove_file(&path).unwrap();
    }
}
