//! Crash fault injection for durability testing.
//!
//! [`CrashDevice`] models a volatile write cache in front of stable storage,
//! the way a real disk (or the OS page cache) behaves across a power cut:
//!
//! * writes land in a **pending set** and are immediately visible to reads,
//!   but nothing reaches the wrapped device until [`flush`](BlockDevice::flush)
//!   — the barrier every journaling protocol is built on;
//! * [`crash`](CrashDevice::crash) simulates the power cut: a seeded,
//!   deterministic choice applies some pending writes, drops others, and
//!   *tears* a few (only a prefix of the block's bytes survives) — batched
//!   submissions tear per block, so a crash can land mid-batch;
//! * [`fail_after_writes`](CrashDevice::fail_after_writes) arms a trip wire
//!   that makes the device start refusing writes after N more block writes,
//!   so a test can stop a multi-block update at any interior point before
//!   crashing it.
//!
//! The wrapper is cloneable ([`Arc`]-shared): the file system under test owns
//! one handle while the test harness keeps another to pull the plug and to
//! remount the surviving state.

use crate::device::{check_batch, BlockDevice, BlockId};
use crate::error::{BlockError, BlockResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// What [`CrashDevice::crash`] did to each pending write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashReport {
    /// Pending writes applied whole.
    pub applied: usize,
    /// Pending writes dropped entirely.
    pub dropped: usize,
    /// Pending writes torn (a proper prefix survived).
    pub torn: usize,
}

struct Pending {
    /// Unsynced writes in submission order (one entry per block write, even
    /// within a batch).
    log: Vec<(BlockId, Vec<u8>)>,
    /// Latest pending image per block, for read-back.
    latest: HashMap<BlockId, Vec<u8>>,
    /// Remaining writes before the injected failure trips (`None` = armed
    /// off).
    writes_until_fail: Option<u64>,
    /// Once tripped, every write and flush fails until the next crash.
    failed: bool,
    flushes: u64,
}

struct Shared<D: BlockDevice> {
    inner: D,
    pending: Mutex<Pending>,
}

/// A fault-injection wrapper that buffers unsynced writes and can "lose
/// power" at any point.  See the module docs for the model.
pub struct CrashDevice<D: BlockDevice> {
    shared: Arc<Shared<D>>,
}

impl<D: BlockDevice> Clone for CrashDevice<D> {
    fn clone(&self) -> Self {
        CrashDevice {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<D: BlockDevice> CrashDevice<D> {
    /// Wrap `inner`.  The returned handle (and every clone) shares one
    /// pending set and one stable store.
    pub fn new(inner: D) -> Self {
        CrashDevice {
            shared: Arc::new(Shared {
                inner,
                pending: Mutex::new(Pending {
                    log: Vec::new(),
                    latest: HashMap::new(),
                    writes_until_fail: None,
                    failed: false,
                    flushes: 0,
                }),
            }),
        }
    }

    /// Number of block writes currently buffered (not yet flushed).
    pub fn pending_writes(&self) -> usize {
        self.shared.pending.lock().log.len()
    }

    /// Number of successful flush barriers so far.
    pub fn flushes(&self) -> u64 {
        self.shared.pending.lock().flushes
    }

    /// Arm the failure trip wire: after `n` more block writes succeed, every
    /// subsequent write and flush fails with an I/O error, freezing the
    /// pending set mid-update until [`crash`](Self::crash) is called.
    pub fn fail_after_writes(&self, n: u64) {
        let mut p = self.shared.pending.lock();
        p.writes_until_fail = Some(n);
        p.failed = false;
    }

    /// Disarm the trip wire and clear a tripped failure without crashing.
    pub fn clear_failure(&self) {
        let mut p = self.shared.pending.lock();
        p.writes_until_fail = None;
        p.failed = false;
    }

    /// Pull the plug: deterministically (by `seed`) apply, drop, or tear the
    /// pending writes in submission order, then clear the pending set and
    /// any armed failure.  The device remains usable afterwards — remount it
    /// to observe the surviving state.
    pub fn crash(&self, seed: u64) -> CrashReport {
        let mut p = self.shared.pending.lock();
        let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut report = CrashReport::default();
        let log = std::mem::take(&mut p.log);
        for (block, data) in log {
            match next() % 100 {
                // Half the queue tends to make it to the platter whole...
                0..=49 => {
                    let _ = self.shared.inner.write_block(block, &data);
                    report.applied += 1;
                }
                // ...a third is lost entirely...
                50..=84 => report.dropped += 1,
                // ...and the rest is torn: only a proper prefix survives
                // over whatever the stable store already held.
                _ => {
                    if let Ok(mut old) = self.shared.inner.read_block_vec(block) {
                        let cut = 1 + (next() as usize) % (data.len().max(2) - 1);
                        old[..cut].copy_from_slice(&data[..cut]);
                        let _ = self.shared.inner.write_block(block, &old);
                    }
                    report.torn += 1;
                }
            }
        }
        p.latest.clear();
        p.writes_until_fail = None;
        p.failed = false;
        report
    }

    fn admit_write(&self, p: &mut Pending) -> BlockResult<()> {
        if p.failed {
            return Err(injected_failure());
        }
        if let Some(left) = p.writes_until_fail {
            if left == 0 {
                p.failed = true;
                return Err(injected_failure());
            }
            p.writes_until_fail = Some(left - 1);
        }
        Ok(())
    }
}

fn injected_failure() -> BlockError {
    BlockError::Io(std::io::Error::other("injected crash: device unreachable"))
}

impl<D: BlockDevice> BlockDevice for CrashDevice<D> {
    fn block_size(&self) -> usize {
        self.shared.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.shared.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        let p = self.shared.pending.lock();
        if buf.len() == self.block_size() {
            if let Some(data) = p.latest.get(&block) {
                buf.copy_from_slice(data);
                return Ok(());
            }
        }
        self.shared.inner.read_block(block, buf)
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        if block >= self.total_blocks() {
            return Err(BlockError::OutOfRange {
                block,
                total: self.total_blocks(),
            });
        }
        if buf.len() != self.block_size() {
            return Err(BlockError::BadBufferLength {
                got: buf.len(),
                expected: self.block_size(),
            });
        }
        let mut p = self.shared.pending.lock();
        self.admit_write(&mut p)?;
        p.log.push((block, buf.to_vec()));
        p.latest.insert(block, buf.to_vec());
        Ok(())
    }

    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        let bs = self.block_size();
        check_batch(blocks.len(), buf.len(), bs)?;
        // Serve pending hits, gather misses into one inner submission.
        let mut missing: Vec<(usize, BlockId)> = Vec::new();
        {
            let p = self.shared.pending.lock();
            for (i, &block) in blocks.iter().enumerate() {
                match p.latest.get(&block) {
                    Some(data) => buf[i * bs..(i + 1) * bs].copy_from_slice(data),
                    None => missing.push((i, block)),
                }
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        let miss_blocks: Vec<BlockId> = missing.iter().map(|&(_, b)| b).collect();
        let mut miss_buf = vec![0u8; miss_blocks.len() * bs];
        self.shared.inner.read_blocks(&miss_blocks, &mut miss_buf)?;
        for (j, &(i, _)) in missing.iter().enumerate() {
            buf[i * bs..(i + 1) * bs].copy_from_slice(&miss_buf[j * bs..(j + 1) * bs]);
        }
        Ok(())
    }

    // Batched writes enqueue one pending entry per block, so a crash (or the
    // failure trip wire) can land in the middle of a batch.
    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        let bs = self.block_size();
        check_batch(blocks.len(), buf.len(), bs)?;
        let total = self.total_blocks();
        for &block in blocks {
            if block >= total {
                return Err(BlockError::OutOfRange { block, total });
            }
        }
        let mut p = self.shared.pending.lock();
        for (i, &block) in blocks.iter().enumerate() {
            self.admit_write(&mut p)?;
            let data = buf[i * bs..(i + 1) * bs].to_vec();
            p.log.push((block, data.clone()));
            p.latest.insert(block, data);
        }
        Ok(())
    }

    /// The barrier: every pending write reaches stable storage before this
    /// returns.  After a successful flush there is nothing left to tear.
    fn flush(&self) -> BlockResult<()> {
        let mut p = self.shared.pending.lock();
        if p.failed {
            return Err(injected_failure());
        }
        let log = std::mem::take(&mut p.log);
        for (block, data) in &log {
            self.shared.inner.write_block(*block, data)?;
        }
        p.latest.clear();
        self.shared.inner.flush()?;
        p.flushes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;

    const BS: usize = 64;

    #[test]
    fn reads_see_unsynced_writes_but_stable_store_does_not() {
        let dev = CrashDevice::new(MemBlockDevice::new(BS, 8));
        dev.write_block(3, &[7u8; BS]).unwrap();
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![7u8; BS]);
        assert_eq!(dev.pending_writes(), 1);
        // Crash with a seed that drops everything is not guaranteed, so
        // instead verify the pending/flush split directly: a clone sees the
        // write, flushing empties the queue.
        let clone = dev.clone();
        assert_eq!(clone.read_block_vec(3).unwrap(), vec![7u8; BS]);
        dev.flush().unwrap();
        assert_eq!(dev.pending_writes(), 0);
        assert_eq!(dev.flushes(), 1);
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![7u8; BS]);
    }

    #[test]
    fn crash_loses_or_tears_unsynced_writes_only() {
        for seed in 0..32u64 {
            let dev = CrashDevice::new(MemBlockDevice::new(BS, 8));
            dev.write_block(0, &[0xaa; BS]).unwrap();
            dev.flush().unwrap(); // durable
            dev.write_block(0, &[0xbb; BS]).unwrap(); // at risk
            dev.write_block(1, &[0xcc; BS]).unwrap(); // at risk
            let report = dev.crash(seed);
            assert_eq!(report.applied + report.dropped + report.torn, 2);
            assert_eq!(dev.pending_writes(), 0);
            let b0 = dev.read_block_vec(0).unwrap();
            // Block 0 is the old durable data, the new data, or a tear of
            // the two; block 1 is zeros, the new data, or a tear.
            assert!(b0.iter().all(|&b| b == 0xaa || b == 0xbb));
            let b1 = dev.read_block_vec(1).unwrap();
            assert!(b1.iter().all(|&b| b == 0 || b == 0xcc));
        }
    }

    #[test]
    fn torn_batch_is_possible() {
        // With per-block pending entries, some seed must tear a batch apart.
        let mut seen_partial = false;
        for seed in 0..64u64 {
            let dev = CrashDevice::new(MemBlockDevice::new(BS, 16));
            let blocks: Vec<u64> = (0..8).collect();
            let data = vec![0x5au8; 8 * BS];
            dev.write_blocks(&blocks, &data).unwrap();
            dev.crash(seed);
            let survived = (0..8)
                .filter(|&b| dev.read_block_vec(b).unwrap() == vec![0x5au8; BS])
                .count();
            if survived > 0 && survived < 8 {
                seen_partial = true;
                break;
            }
        }
        assert!(seen_partial, "no seed produced a mid-batch crash");
    }

    #[test]
    fn fail_after_writes_trips_and_crash_clears() {
        let dev = CrashDevice::new(MemBlockDevice::new(BS, 8));
        dev.fail_after_writes(2);
        dev.write_block(0, &[1; BS]).unwrap();
        dev.write_block(1, &[2; BS]).unwrap();
        assert!(dev.write_block(2, &[3; BS]).is_err());
        assert!(dev.flush().is_err(), "tripped device refuses the barrier");
        dev.crash(1);
        dev.write_block(2, &[3; BS]).unwrap();
        dev.flush().unwrap();
        assert_eq!(dev.read_block_vec(2).unwrap(), vec![3; BS]);
    }

    #[test]
    fn batched_reads_merge_pending_and_stable() {
        let dev = CrashDevice::new(MemBlockDevice::new(BS, 8));
        dev.write_block(1, &[9; BS]).unwrap();
        dev.flush().unwrap();
        dev.write_block(2, &[8; BS]).unwrap(); // pending
        let mut buf = vec![0u8; 3 * BS];
        dev.read_blocks(&[1, 2, 3], &mut buf).unwrap();
        assert_eq!(&buf[..BS], &[9u8; BS][..]);
        assert_eq!(&buf[BS..2 * BS], &[8u8; BS][..]);
        assert_eq!(&buf[2 * BS..], &[0u8; BS][..]);
    }

    #[test]
    fn geometry_and_bad_args() {
        let dev = CrashDevice::new(MemBlockDevice::new(BS, 8));
        assert_eq!(dev.block_size(), BS);
        assert_eq!(dev.total_blocks(), 8);
        assert!(matches!(
            dev.write_block(99, &[0; BS]),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            dev.write_block(0, &[0; 10]),
            Err(BlockError::BadBufferLength { .. })
        ));
        assert!(dev.write_blocks(&[99], &[0; BS]).is_err());
    }
}
