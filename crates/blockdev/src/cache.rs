//! A small LRU buffer cache, write-through or write-back.
//!
//! Figure 5 of the paper places StegFS above the Linux buffer cache.  The
//! cache is not essential to the steganographic design, but it matters for
//! fidelity of the workloads: metadata blocks (the superblock, bitmap blocks
//! and inode-table blocks) are touched on every operation and would otherwise
//! dominate the simulated I/O time in a way the real system never exhibits.
//!
//! Two modes ([`CacheMode`]):
//!
//! * **write-through** (the default, and the only mode before the journal
//!   landed): writes update both the cache and the underlying device, so the
//!   on-"disk" image is always current and crash / backup experiments can
//!   image the raw device at any point.
//! * **write-back**: writes dirty the cache and reach the device only at
//!   [`flush`](BlockDevice::flush) (one batched submission for all dirty
//!   blocks, then the inner barrier) or when a dirty block is evicted.  This
//!   is the mode the journaled stack runs in: the journal's group commit
//!   provides the flush barriers, so many small writes amortize into one
//!   device submission — the write-back win `repro --durability` measures.
//!   Crash consistency in this mode comes entirely from the journal: the
//!   cache itself promises only that a successful `flush` is a barrier.

use crate::device::{check_batch, BlockDevice, BlockId};
use crate::error::{BlockError, BlockResult};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Write policy of a [`BufferCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Every write goes straight to the device (and the cache).
    WriteThrough,
    /// Writes dirty the cache; the device sees them at flush or eviction.
    WriteBack,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read requests served from the cache.
    pub hits: u64,
    /// Read requests that had to go to the device.
    pub misses: u64,
    /// Number of cache entries evicted.
    pub evictions: u64,
    /// Dirty blocks written to the device by flushes or evictions
    /// (write-back mode only).
    pub write_backs: u64,
}

struct Entry {
    data: Vec<u8>,
    tick: u64,
    dirty: bool,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<BlockId, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// LRU cache over a [`BlockDevice`]; see the module docs for the two modes.
///
/// One lock guards the whole cache, held across the device transfer on the
/// miss/write paths: consistency requires that a racing read cannot
/// re-insert pre-write data over a fresh write.  Workloads that need
/// parallel device I/O talk to the device directly (the VFS stack does not
/// use this cache for content I/O; the journaled write path and the
/// single-threaded simulation harness do).
pub struct BufferCache<D: BlockDevice> {
    inner: D,
    capacity: usize,
    mode: CacheMode,
    state: Mutex<CacheState>,
}

impl<D: BlockDevice> BufferCache<D> {
    /// Create a write-through cache holding at most `capacity_blocks` blocks.
    ///
    /// # Panics
    /// Panics if `capacity_blocks` is zero.
    pub fn new(inner: D, capacity_blocks: usize) -> Self {
        Self::with_mode(inner, capacity_blocks, CacheMode::WriteThrough)
    }

    /// Create a write-back cache holding at most `capacity_blocks` blocks.
    ///
    /// # Panics
    /// Panics if `capacity_blocks` is zero.
    pub fn new_write_back(inner: D, capacity_blocks: usize) -> Self {
        Self::with_mode(inner, capacity_blocks, CacheMode::WriteBack)
    }

    /// Create a cache with an explicit [`CacheMode`].
    ///
    /// # Panics
    /// Panics if `capacity_blocks` is zero.
    pub fn with_mode(inner: D, capacity_blocks: usize, mode: CacheMode) -> Self {
        assert!(capacity_blocks > 0, "cache must hold at least one block");
        BufferCache {
            inner,
            capacity: capacity_blocks,
            mode,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// The cache's write policy.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats.clone()
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True if the cache currently holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.state.lock().entries.is_empty()
    }

    /// Number of dirty blocks awaiting write-back.
    pub fn dirty_blocks(&self) -> usize {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| e.dirty)
            .count()
    }

    /// Drop all cached blocks.  In write-back mode, dirty blocks are first
    /// written to the device (without a barrier) so no data is lost.
    pub fn invalidate(&self) -> BlockResult<()> {
        let mut state = self.state.lock();
        self.write_back_dirty(&mut state)?;
        state.entries.clear();
        Ok(())
    }

    /// Access the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap the cache, returning the underlying device.  Dirty blocks are
    /// **not** written back; call [`flush`](BlockDevice::flush) first.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Write every dirty block down in one batched submission (no barrier).
    /// Caller holds the state lock.
    fn write_back_dirty(&self, state: &mut CacheState) -> BlockResult<()> {
        let bs = self.inner.block_size();
        let mut dirty: Vec<BlockId> = state
            .entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&b, _)| b)
            .collect();
        if dirty.is_empty() {
            return Ok(());
        }
        dirty.sort_unstable();
        let mut buf = vec![0u8; dirty.len() * bs];
        for (i, b) in dirty.iter().enumerate() {
            buf[i * bs..(i + 1) * bs].copy_from_slice(&state.entries[b].data);
        }
        self.inner.write_blocks(&dirty, &buf)?;
        for b in &dirty {
            if let Some(e) = state.entries.get_mut(b) {
                e.dirty = false;
            }
        }
        state.stats.write_backs += dirty.len() as u64;
        Ok(())
    }

    /// Insert (or refresh) an entry, evicting the LRU victim if needed.  A
    /// dirty victim is written to the device first, so eviction never loses
    /// data.  Caller holds the state lock.
    fn insert(
        &self,
        state: &mut CacheState,
        block: BlockId,
        data: Vec<u8>,
        dirty: bool,
    ) -> BlockResult<()> {
        state.tick += 1;
        let tick = state.tick;
        if state.entries.len() >= self.capacity && !state.entries.contains_key(&block) {
            if let Some((&victim, _)) = state.entries.iter().min_by_key(|(_, e)| e.tick) {
                let entry = state.entries.remove(&victim).expect("victim exists");
                if entry.dirty {
                    self.inner.write_block(victim, &entry.data)?;
                    state.stats.write_backs += 1;
                }
                state.stats.evictions += 1;
            }
        }
        let dirty = dirty
            || state
                .entries
                .get(&block)
                .is_some_and(|e| e.dirty && self.mode == CacheMode::WriteBack);
        state.entries.insert(block, Entry { data, tick, dirty });
        Ok(())
    }

    /// Validate a write's geometry against the inner device so write-back
    /// mode reports errors at write time, like write-through does.
    fn check_write(&self, block: BlockId, len: usize) -> BlockResult<()> {
        if block >= self.inner.total_blocks() {
            return Err(BlockError::OutOfRange {
                block,
                total: self.inner.total_blocks(),
            });
        }
        if len != self.inner.block_size() {
            return Err(BlockError::BadBufferLength {
                got: len,
                expected: self.inner.block_size(),
            });
        }
        Ok(())
    }
}

impl CacheState {
    fn touch(&mut self, block: BlockId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&block) {
            entry.tick = tick;
        }
    }
}

impl<D: BlockDevice> BlockDevice for BufferCache<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        let mut state = self.state.lock();
        if buf.len() == self.inner.block_size() {
            if let Some(entry) = state.entries.get(&block) {
                buf.copy_from_slice(&entry.data);
                state.stats.hits += 1;
                state.touch(block);
                return Ok(());
            }
        }
        self.inner.read_block(block, buf)?;
        state.stats.misses += 1;
        self.insert(&mut state, block, buf.to_vec(), false)?;
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        let mut state = self.state.lock();
        match self.mode {
            CacheMode::WriteThrough => {
                // Device first so a device error leaves the cache consistent
                // with the (unchanged) device contents; the state lock is
                // held across the transfer so a racing miss cannot resurrect
                // pre-write data.
                self.inner.write_block(block, buf)?;
                self.insert(&mut state, block, buf.to_vec(), false)
            }
            CacheMode::WriteBack => {
                self.check_write(block, buf.len())?;
                self.insert(&mut state, block, buf.to_vec(), true)
            }
        }
    }

    // Batched reads serve hits from the cache and gather every miss into one
    // inner submission; batched writes go through in one submission
    // (write-through) or dirty the cache (write-back).  Both run under one
    // hold of the cache lock, the same consistency rule as the single-block
    // paths.
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        let bs = self.inner.block_size();
        if buf.len() != blocks.len() * bs {
            // Delegate the error shape to the inner device.
            return self.inner.read_blocks(blocks, buf);
        }
        let mut state = self.state.lock();
        let mut missing: Vec<(usize, BlockId)> = Vec::new();
        for (i, &block) in blocks.iter().enumerate() {
            if let Some(entry) = state.entries.get(&block) {
                buf[i * bs..(i + 1) * bs].copy_from_slice(&entry.data);
                state.stats.hits += 1;
                state.touch(block);
            } else {
                missing.push((i, block));
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        let miss_blocks: Vec<BlockId> = missing.iter().map(|&(_, b)| b).collect();
        let mut miss_buf = vec![0u8; miss_blocks.len() * bs];
        self.inner.read_blocks(&miss_blocks, &mut miss_buf)?;
        for (j, &(i, block)) in missing.iter().enumerate() {
            let data = &miss_buf[j * bs..(j + 1) * bs];
            buf[i * bs..(i + 1) * bs].copy_from_slice(data);
            state.stats.misses += 1;
            self.insert(&mut state, block, data.to_vec(), false)?;
        }
        Ok(())
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        let bs = self.inner.block_size();
        let mut state = self.state.lock();
        match self.mode {
            CacheMode::WriteThrough => {
                self.inner.write_blocks(blocks, buf)?;
                if buf.len() == blocks.len() * bs {
                    for (i, &block) in blocks.iter().enumerate() {
                        self.insert(&mut state, block, buf[i * bs..(i + 1) * bs].to_vec(), false)?;
                    }
                }
                Ok(())
            }
            CacheMode::WriteBack => {
                check_batch(blocks.len(), buf.len(), bs)?;
                for &block in blocks {
                    self.check_write(block, bs)?;
                }
                for (i, &block) in blocks.iter().enumerate() {
                    self.insert(&mut state, block, buf[i * bs..(i + 1) * bs].to_vec(), true)?;
                }
                Ok(())
            }
        }
    }

    /// The barrier: write-back mode pushes every dirty block down in one
    /// batched submission, then flushes the inner device.
    fn flush(&self) -> BlockResult<()> {
        {
            let mut state = self.state.lock();
            self.write_back_dirty(&mut state)?;
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;
    use crate::metered::MeteredDevice;

    #[test]
    fn repeated_reads_hit_cache() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        let mut buf = vec![0u8; 64];
        cache.read_block(5, &mut buf).unwrap();
        cache.read_block(5, &mut buf).unwrap();
        cache.read_block(5, &mut buf).unwrap();
        assert_eq!(
            io.snapshot().reads,
            1,
            "only the first read reaches the device"
        );
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn writes_are_write_through() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        cache.write_block(3, &[0xaa; 64]).unwrap();
        assert_eq!(io.snapshot().writes, 1);
        // Read after write is a cache hit and returns the written data.
        let mut buf = vec![0u8; 64];
        cache.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, vec![0xaa; 64]);
        assert_eq!(io.snapshot().reads, 0);
        // The device itself also holds the data.
        let inner = cache.into_inner().into_inner();
        assert_eq!(inner.read_block_vec(3).unwrap(), vec![0xaa; 64]);
    }

    #[test]
    fn write_back_defers_until_flush() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new_write_back(metered, 8);
        assert_eq!(cache.mode(), CacheMode::WriteBack);
        cache.write_block(3, &[0xaa; 64]).unwrap();
        cache.write_blocks(&[4, 5], &[0xbb; 128]).unwrap();
        assert_eq!(io.snapshot().writes, 0, "nothing reaches the device yet");
        assert_eq!(cache.dirty_blocks(), 3);
        // Reads see the dirty data.
        let mut buf = vec![0u8; 64];
        cache.read_block(4, &mut buf).unwrap();
        assert_eq!(buf, vec![0xbb; 64]);
        // One flush pushes all three in one batched submission.
        cache.flush().unwrap();
        let s = io.snapshot();
        assert_eq!(s.writes, 3);
        assert_eq!(s.write_submissions, 1);
        assert_eq!(cache.dirty_blocks(), 0);
        assert_eq!(cache.stats().write_backs, 3);
        // A second flush writes nothing.
        cache.flush().unwrap();
        assert_eq!(io.snapshot().writes, 3);
        let inner = cache.into_inner().into_inner();
        assert_eq!(inner.read_block_vec(3).unwrap(), vec![0xaa; 64]);
        assert_eq!(inner.read_block_vec(5).unwrap(), vec![0xbb; 64]);
    }

    #[test]
    fn write_back_eviction_preserves_dirty_data() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new_write_back(metered, 2);
        cache.write_block(0, &[1; 64]).unwrap();
        cache.write_block(1, &[2; 64]).unwrap();
        cache.write_block(2, &[3; 64]).unwrap(); // evicts dirty block 0
        assert_eq!(io.snapshot().writes, 1, "evicted dirty block written down");
        assert_eq!(cache.stats().evictions, 1);
        let mut buf = vec![0u8; 64];
        cache.read_block(0, &mut buf).unwrap(); // re-reads the written-back data
        assert_eq!(buf, vec![1u8; 64]);
        cache.flush().unwrap();
        let inner = cache.into_inner().into_inner();
        for (b, v) in [(0u64, 1u8), (1, 2), (2, 3)] {
            assert_eq!(inner.read_block_vec(b).unwrap(), vec![v; 64]);
        }
    }

    #[test]
    fn write_back_rejects_bad_writes_at_write_time() {
        let cache = BufferCache::new_write_back(MemBlockDevice::new(64, 4), 4);
        assert!(matches!(
            cache.write_block(99, &[0; 64]),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            cache.write_block(0, &[0; 5]),
            Err(BlockError::BadBufferLength { .. })
        ));
        assert!(cache.write_blocks(&[99], &[0; 64]).is_err());
    }

    #[test]
    fn lru_eviction_prefers_old_entries() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 16), 2);
        let mut buf = vec![0u8; 64];
        cache.read_block(0, &mut buf).unwrap();
        cache.read_block(1, &mut buf).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.read_block(0, &mut buf).unwrap();
        cache.read_block(2, &mut buf).unwrap(); // evicts 1
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        // 0 still cached (hit), 1 must miss again.
        let hits_before = cache.stats().hits;
        cache.read_block(0, &mut buf).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1);
        let misses_before = cache.stats().misses;
        cache.read_block(1, &mut buf).unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn batched_read_gathers_misses_into_one_submission() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        // Warm blocks 2 and 5.
        let mut one = vec![0u8; 64];
        cache.read_block(2, &mut one).unwrap();
        cache.read_block(5, &mut one).unwrap();
        io.reset();
        // Batch of 4: two hits, two misses -> one inner submission of 2.
        let mut buf = vec![0u8; 4 * 64];
        cache.read_blocks(&[2, 3, 5, 6], &mut buf).unwrap();
        let s = io.snapshot();
        assert_eq!(s.reads, 2, "only the misses reach the device");
        assert_eq!(s.read_submissions, 1, "misses gathered into one batch");
        assert_eq!(cache.stats().hits, 2);
        // A repeat of the same batch is now all hits.
        cache.read_blocks(&[2, 3, 5, 6], &mut buf).unwrap();
        assert_eq!(io.snapshot().reads, 2);
    }

    #[test]
    fn batched_write_is_write_through_and_caches() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        let data: Vec<u8> = (0..3 * 64).map(|i| (i % 251) as u8).collect();
        cache.write_blocks(&[1, 4, 7], &data).unwrap();
        let s = io.snapshot();
        assert_eq!(s.writes, 3);
        assert_eq!(s.write_submissions, 1);
        // Reads come straight from the cache.
        let mut buf = vec![0u8; 3 * 64];
        cache.read_blocks(&[1, 4, 7], &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(io.snapshot().reads, 0);
    }

    #[test]
    fn invalidate_clears_entries_but_not_device() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 4), 4);
        cache.write_block(1, &[7u8; 64]).unwrap();
        assert!(!cache.is_empty());
        cache.invalidate().unwrap();
        assert!(cache.is_empty());
        let mut buf = vec![0u8; 64];
        cache.read_block(1, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 64]);
    }

    #[test]
    fn write_back_invalidate_preserves_dirty_data() {
        let cache = BufferCache::new_write_back(MemBlockDevice::new(64, 4), 4);
        cache.write_block(1, &[7u8; 64]).unwrap();
        cache.invalidate().unwrap();
        assert!(cache.is_empty());
        let mut buf = vec![0u8; 64];
        cache.read_block(1, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 64]);
    }

    #[test]
    fn wrong_buffer_length_bypasses_cache_and_errors() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 4), 4);
        let mut small = vec![0u8; 10];
        assert!(cache.read_block(0, &mut small).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_capacity_rejected() {
        BufferCache::new(MemBlockDevice::new(64, 4), 0);
    }

    #[test]
    fn geometry_passthrough() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 4), 4);
        assert_eq!(cache.block_size(), 64);
        assert_eq!(cache.total_blocks(), 4);
        assert_eq!(cache.capacity_bytes(), 256);
        cache.flush().unwrap();
    }
}
