//! A small write-through LRU buffer cache.
//!
//! Figure 5 of the paper places StegFS above the Linux buffer cache.  The
//! cache is not essential to the steganographic design, but it matters for
//! fidelity of the workloads: metadata blocks (the superblock, bitmap blocks
//! and inode-table blocks) are touched on every operation and would otherwise
//! dominate the simulated I/O time in a way the real system never exhibits.
//!
//! The cache is write-through: writes update both the cache and the
//! underlying device, so the on-"disk" image is always current and crash /
//! backup experiments can image the raw device at any point.

use crate::device::{BlockDevice, BlockId};
use crate::error::BlockResult;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read requests served from the cache.
    pub hits: u64,
    /// Read requests that had to go to the device.
    pub misses: u64,
    /// Number of cache entries evicted.
    pub evictions: u64,
}

#[derive(Default)]
struct CacheState {
    // block -> (data, last use tick)
    entries: HashMap<BlockId, (Vec<u8>, u64)>,
    tick: u64,
    stats: CacheStats,
}

/// Write-through LRU cache over a [`BlockDevice`].
///
/// One lock guards the whole cache, held across the device transfer on the
/// miss/write paths: write-through consistency requires that a racing read
/// cannot re-insert pre-write data over a fresh write.  Workloads that need
/// parallel device I/O talk to the device directly (the VFS stack does not
/// use this cache; the single-threaded simulation harness does).
pub struct BufferCache<D: BlockDevice> {
    inner: D,
    capacity: usize,
    state: Mutex<CacheState>,
}

impl<D: BlockDevice> BufferCache<D> {
    /// Create a cache holding at most `capacity_blocks` blocks.
    ///
    /// # Panics
    /// Panics if `capacity_blocks` is zero.
    pub fn new(inner: D, capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0, "cache must hold at least one block");
        BufferCache {
            inner,
            capacity: capacity_blocks,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats.clone()
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True if the cache currently holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.state.lock().entries.is_empty()
    }

    /// Drop all cached blocks (the device already holds every write, so no
    /// data is lost).
    pub fn invalidate(&self) {
        self.state.lock().entries.clear();
    }

    /// Access the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap the cache, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl CacheState {
    fn touch(&mut self, block: BlockId) {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&block) {
            entry.1 = self.tick;
        }
    }

    fn insert(&mut self, block: BlockId, data: Vec<u8>, capacity: usize) {
        self.tick += 1;
        if self.entries.len() >= capacity && !self.entries.contains_key(&block) {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, t))| *t) {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(block, (data, self.tick));
    }
}

impl<D: BlockDevice> BlockDevice for BufferCache<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        let mut state = self.state.lock();
        if buf.len() == self.inner.block_size() {
            if let Some((data, _)) = state.entries.get(&block) {
                buf.copy_from_slice(data);
                state.stats.hits += 1;
                state.touch(block);
                return Ok(());
            }
        }
        self.inner.read_block(block, buf)?;
        state.stats.misses += 1;
        state.insert(block, buf.to_vec(), self.capacity);
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        // Write-through: device first so a device error leaves the cache
        // consistent with the (unchanged) device contents; the state lock is
        // held across the transfer so a racing miss cannot resurrect
        // pre-write data.
        let mut state = self.state.lock();
        self.inner.write_block(block, buf)?;
        state.insert(block, buf.to_vec(), self.capacity);
        Ok(())
    }

    // Batched reads serve hits from the cache and gather every miss into one
    // inner submission; batched writes go through in one submission and then
    // populate the cache.  Both run under one hold of the cache lock, the
    // same consistency rule as the single-block paths.
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        let bs = self.inner.block_size();
        if buf.len() != blocks.len() * bs {
            // Delegate the error shape to the inner device.
            return self.inner.read_blocks(blocks, buf);
        }
        let mut state = self.state.lock();
        let mut missing: Vec<(usize, BlockId)> = Vec::new();
        for (i, &block) in blocks.iter().enumerate() {
            if let Some((data, _)) = state.entries.get(&block) {
                buf[i * bs..(i + 1) * bs].copy_from_slice(data);
                state.stats.hits += 1;
                state.touch(block);
            } else {
                missing.push((i, block));
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        let miss_blocks: Vec<BlockId> = missing.iter().map(|&(_, b)| b).collect();
        let mut miss_buf = vec![0u8; miss_blocks.len() * bs];
        self.inner.read_blocks(&miss_blocks, &mut miss_buf)?;
        for (j, &(i, block)) in missing.iter().enumerate() {
            let data = &miss_buf[j * bs..(j + 1) * bs];
            buf[i * bs..(i + 1) * bs].copy_from_slice(data);
            state.stats.misses += 1;
            state.insert(block, data.to_vec(), self.capacity);
        }
        Ok(())
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        let mut state = self.state.lock();
        self.inner.write_blocks(blocks, buf)?;
        let bs = self.inner.block_size();
        if buf.len() == blocks.len() * bs {
            for (i, &block) in blocks.iter().enumerate() {
                state.insert(block, buf[i * bs..(i + 1) * bs].to_vec(), self.capacity);
            }
        }
        Ok(())
    }

    fn flush(&self) -> BlockResult<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;
    use crate::metered::MeteredDevice;

    #[test]
    fn repeated_reads_hit_cache() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        let mut buf = vec![0u8; 64];
        cache.read_block(5, &mut buf).unwrap();
        cache.read_block(5, &mut buf).unwrap();
        cache.read_block(5, &mut buf).unwrap();
        assert_eq!(
            io.snapshot().reads,
            1,
            "only the first read reaches the device"
        );
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn writes_are_write_through() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        cache.write_block(3, &[0xaa; 64]).unwrap();
        assert_eq!(io.snapshot().writes, 1);
        // Read after write is a cache hit and returns the written data.
        let mut buf = vec![0u8; 64];
        cache.read_block(3, &mut buf).unwrap();
        assert_eq!(buf, vec![0xaa; 64]);
        assert_eq!(io.snapshot().reads, 0);
        // The device itself also holds the data.
        let inner = cache.into_inner().into_inner();
        assert_eq!(inner.read_block_vec(3).unwrap(), vec![0xaa; 64]);
    }

    #[test]
    fn lru_eviction_prefers_old_entries() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 16), 2);
        let mut buf = vec![0u8; 64];
        cache.read_block(0, &mut buf).unwrap();
        cache.read_block(1, &mut buf).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.read_block(0, &mut buf).unwrap();
        cache.read_block(2, &mut buf).unwrap(); // evicts 1
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        // 0 still cached (hit), 1 must miss again.
        let hits_before = cache.stats().hits;
        cache.read_block(0, &mut buf).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1);
        let misses_before = cache.stats().misses;
        cache.read_block(1, &mut buf).unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn batched_read_gathers_misses_into_one_submission() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        // Warm blocks 2 and 5.
        let mut one = vec![0u8; 64];
        cache.read_block(2, &mut one).unwrap();
        cache.read_block(5, &mut one).unwrap();
        io.reset();
        // Batch of 4: two hits, two misses -> one inner submission of 2.
        let mut buf = vec![0u8; 4 * 64];
        cache.read_blocks(&[2, 3, 5, 6], &mut buf).unwrap();
        let s = io.snapshot();
        assert_eq!(s.reads, 2, "only the misses reach the device");
        assert_eq!(s.read_submissions, 1, "misses gathered into one batch");
        assert_eq!(cache.stats().hits, 2);
        // A repeat of the same batch is now all hits.
        cache.read_blocks(&[2, 3, 5, 6], &mut buf).unwrap();
        assert_eq!(io.snapshot().reads, 2);
    }

    #[test]
    fn batched_write_is_write_through_and_caches() {
        let metered = MeteredDevice::new(MemBlockDevice::new(64, 16));
        let io = metered.stats_handle();
        let cache = BufferCache::new(metered, 8);
        let data: Vec<u8> = (0..3 * 64).map(|i| (i % 251) as u8).collect();
        cache.write_blocks(&[1, 4, 7], &data).unwrap();
        let s = io.snapshot();
        assert_eq!(s.writes, 3);
        assert_eq!(s.write_submissions, 1);
        // Reads come straight from the cache.
        let mut buf = vec![0u8; 3 * 64];
        cache.read_blocks(&[1, 4, 7], &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(io.snapshot().reads, 0);
    }

    #[test]
    fn invalidate_clears_entries_but_not_device() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 4), 4);
        cache.write_block(1, &[7u8; 64]).unwrap();
        assert!(!cache.is_empty());
        cache.invalidate();
        assert!(cache.is_empty());
        let mut buf = vec![0u8; 64];
        cache.read_block(1, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 64]);
    }

    #[test]
    fn wrong_buffer_length_bypasses_cache_and_errors() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 4), 4);
        let mut small = vec![0u8; 10];
        assert!(cache.read_block(0, &mut small).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_capacity_rejected() {
        BufferCache::new(MemBlockDevice::new(64, 4), 0);
    }

    #[test]
    fn geometry_passthrough() {
        let cache = BufferCache::new(MemBlockDevice::new(64, 4), 4);
        assert_eq!(cache.block_size(), 64);
        assert_eq!(cache.total_blocks(), 4);
        assert_eq!(cache.capacity_bytes(), 256);
        cache.flush().unwrap();
    }
}
