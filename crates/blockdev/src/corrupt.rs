//! Media-damage fault injection for survivability testing.
//!
//! [`CorruptingDevice`] is the damage analogue of [`crate::CrashDevice`]:
//! where a crash loses writes *in flight*, corruption damages data *at
//! rest* — latent sector errors, bit rot, a misdirected write from another
//! tool scribbling over the region.  The wrapper passes all I/O straight
//! through to the inner device and exposes deterministic, seeded damage
//! primitives the survivability experiments aim at a mounted (or unmounted)
//! volume:
//!
//! * [`flip_bits`](CorruptingDevice::flip_bits) — a few random bit flips
//!   inside one block (bit rot);
//! * [`zero_block`](CorruptingDevice::zero_block) — the block reads back as
//!   zeros (a remapped-but-lost sector);
//! * [`overwrite_region`](CorruptingDevice::overwrite_region) — a run of
//!   blocks replaced with seeded junk (a misdirected bulk write);
//! * [`corrupt_random_in`](CorruptingDevice::corrupt_random_in) — a seeded
//!   mixture of the three spread over a block range.
//!
//! Damage is applied by writing through to the inner device immediately, so
//! it survives remounts and is visible to every clone.  Nothing here models
//! *detection* — that is the job of the coded read path and the scavenger,
//! which is exactly what the injector exists to exercise.

use crate::device::{BlockDevice, BlockId};
use crate::error::BlockResult;
use std::sync::Arc;

/// Tally of damage applied by a [`CorruptingDevice`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Individual bits flipped across all bit-rotted blocks.
    pub bits_flipped: usize,
    /// Blocks that received bit flips.
    pub blocks_bitflipped: usize,
    /// Blocks replaced with zeros.
    pub blocks_zeroed: usize,
    /// Blocks replaced with seeded junk.
    pub blocks_overwritten: usize,
}

impl CorruptionReport {
    /// Total number of blocks touched by any damage mode.
    pub fn blocks_damaged(&self) -> usize {
        self.blocks_bitflipped + self.blocks_zeroed + self.blocks_overwritten
    }

    /// Merge another report into this one.
    pub fn absorb(&mut self, other: CorruptionReport) {
        self.bits_flipped += other.bits_flipped;
        self.blocks_bitflipped += other.blocks_bitflipped;
        self.blocks_zeroed += other.blocks_zeroed;
        self.blocks_overwritten += other.blocks_overwritten;
    }
}

/// A pass-through wrapper with seeded media-damage primitives.  See the
/// module docs for the model.
pub struct CorruptingDevice<D: BlockDevice> {
    inner: Arc<D>,
}

impl<D: BlockDevice> Clone for CorruptingDevice<D> {
    fn clone(&self) -> Self {
        CorruptingDevice {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The xorshift step shared by the damage primitives: deterministic per
/// seed, cheap, and good enough to scatter damage.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

impl<D: BlockDevice> CorruptingDevice<D> {
    /// Wrap `inner`.  The returned handle (and every clone) shares the one
    /// underlying store; damage applied through any handle is visible to
    /// all.
    pub fn new(inner: D) -> Self {
        CorruptingDevice {
            inner: Arc::new(inner),
        }
    }

    /// Flip `count` pseudorandomly chosen bits (deterministic in `seed`)
    /// inside `block`.
    pub fn flip_bits(
        &self,
        block: BlockId,
        count: usize,
        seed: u64,
    ) -> BlockResult<CorruptionReport> {
        let mut data = self.inner.read_block_vec(block)?;
        let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
        for _ in 0..count {
            let r = xorshift(&mut rng);
            let bit = (r % (data.len() as u64 * 8)) as usize;
            data[bit / 8] ^= 1 << (bit % 8);
        }
        self.inner.write_block(block, &data)?;
        Ok(CorruptionReport {
            bits_flipped: count,
            blocks_bitflipped: usize::from(count > 0),
            ..CorruptionReport::default()
        })
    }

    /// Replace `block` with zeros, as a lost-then-remapped sector reads.
    pub fn zero_block(&self, block: BlockId) -> BlockResult<CorruptionReport> {
        self.inner
            .write_block(block, &vec![0u8; self.inner.block_size()])?;
        Ok(CorruptionReport {
            blocks_zeroed: 1,
            ..CorruptionReport::default()
        })
    }

    /// Replace `count` blocks starting at `start` with seeded junk — the
    /// misdirected-bulk-write case.  The junk is full-entropy xorshift
    /// output, so damaged blocks still look like every other block of a
    /// StegFS volume.
    pub fn overwrite_region(
        &self,
        start: BlockId,
        count: u64,
        seed: u64,
    ) -> BlockResult<CorruptionReport> {
        let bs = self.inner.block_size();
        let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut report = CorruptionReport::default();
        for block in start..start + count {
            let mut junk = vec![0u8; bs];
            for chunk in junk.chunks_mut(8) {
                let bytes = xorshift(&mut rng).to_be_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
            self.inner.write_block(block, &junk)?;
            report.blocks_overwritten += 1;
        }
        Ok(report)
    }

    /// Damage `count` distinct blocks chosen pseudorandomly (deterministic
    /// in `seed`) from `blocks`, mixing the three damage modes.  Blocks are
    /// drawn without replacement; if `count` exceeds the candidate set,
    /// every candidate is damaged once.
    pub fn corrupt_random_in(
        &self,
        blocks: &[BlockId],
        count: usize,
        seed: u64,
    ) -> BlockResult<CorruptionReport> {
        let mut rng = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut pool: Vec<BlockId> = blocks.to_vec();
        let mut report = CorruptionReport::default();
        for _ in 0..count.min(blocks.len()) {
            let pick = (xorshift(&mut rng) % pool.len() as u64) as usize;
            let block = pool.swap_remove(pick);
            let outcome = match xorshift(&mut rng) % 3 {
                0 => self.flip_bits(
                    block,
                    1 + (xorshift(&mut rng) % 8) as usize,
                    xorshift(&mut rng),
                )?,
                1 => self.zero_block(block)?,
                _ => self.overwrite_region(block, 1, xorshift(&mut rng))?,
            };
            report.absorb(outcome);
        }
        Ok(report)
    }
}

impl<D: BlockDevice> BlockDevice for CorruptingDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        self.inner.read_block(block, buf)
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        self.inner.write_block(block, buf)
    }

    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        self.inner.read_blocks(blocks, buf)
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        self.inner.write_blocks(blocks, buf)
    }

    fn flush(&self) -> BlockResult<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;

    const BS: usize = 64;

    fn filled(total: u64, byte: u8) -> CorruptingDevice<MemBlockDevice> {
        let dev = CorruptingDevice::new(MemBlockDevice::new(BS, total));
        for b in 0..total {
            dev.write_block(b, &[byte; BS]).unwrap();
        }
        dev
    }

    #[test]
    fn passthrough_io_is_faithful() {
        let dev = filled(8, 0x42);
        assert_eq!(dev.block_size(), BS);
        assert_eq!(dev.total_blocks(), 8);
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![0x42; BS]);
        let clone = dev.clone();
        clone.write_block(3, &[7; BS]).unwrap();
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![7; BS]);
        dev.flush().unwrap();
    }

    #[test]
    fn flip_bits_changes_exactly_that_many_bits_or_fewer() {
        let dev = filled(4, 0x00);
        let report = dev.flip_bits(2, 5, 99).unwrap();
        assert_eq!(report.bits_flipped, 5);
        let data = dev.read_block_vec(2).unwrap();
        let set: u32 = data.iter().map(|b| b.count_ones()).sum();
        // Two flips can land on the same bit and cancel; parity is fixed.
        assert!((1..=5).contains(&set));
        assert_eq!(set % 2, 1);
        // Other blocks untouched.
        assert_eq!(dev.read_block_vec(1).unwrap(), vec![0; BS]);
    }

    #[test]
    fn zero_and_overwrite_are_deterministic_and_scoped() {
        let dev = filled(8, 0xaa);
        dev.zero_block(1).unwrap();
        assert_eq!(dev.read_block_vec(1).unwrap(), vec![0; BS]);

        let r = dev.overwrite_region(4, 2, 7).unwrap();
        assert_eq!(r.blocks_overwritten, 2);
        let got4 = dev.read_block_vec(4).unwrap();
        let got5 = dev.read_block_vec(5).unwrap();
        assert_ne!(got4, vec![0xaa; BS]);
        assert_ne!(got4, got5, "junk stream advances across the region");
        // Same seed on a fresh device reproduces the same junk.
        let dev2 = filled(8, 0xaa);
        dev2.overwrite_region(4, 2, 7).unwrap();
        assert_eq!(dev2.read_block_vec(4).unwrap(), got4);
        // Neighbours untouched.
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![0xaa; BS]);
        assert_eq!(dev.read_block_vec(6).unwrap(), vec![0xaa; BS]);
    }

    #[test]
    fn corrupt_random_in_damages_requested_count_without_replacement() {
        let dev = filled(16, 0x55);
        let candidates: Vec<u64> = (0..16).collect();
        let report = dev.corrupt_random_in(&candidates, 6, 1234).unwrap();
        assert_eq!(report.blocks_damaged(), 6);
        let visibly_damaged = (0..16)
            .filter(|&b| dev.read_block_vec(b).unwrap() != vec![0x55; BS])
            .count();
        // Every pick is distinct; a flipped block can in principle cancel
        // back to identity but zero/overwrite picks cannot.
        assert!(visibly_damaged <= 6);
        assert!(visibly_damaged >= report.blocks_zeroed + report.blocks_overwritten);
        // Asking for more than the pool damages each candidate at most once.
        let dev2 = filled(4, 0x55);
        let r2 = dev2.corrupt_random_in(&[0, 1, 2, 3], 10, 5).unwrap();
        assert_eq!(r2.blocks_damaged(), 4);
    }
}
