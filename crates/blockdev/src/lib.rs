//! # stegfs-blockdev
//!
//! Block storage substrate for the StegFS reproduction.
//!
//! The original system is a Linux 2.4 file-system driver sitting between the
//! VFS and the buffer cache, talking to a real Ultra ATA disk (Table 2 of the
//! paper).  This crate replaces that stack with a small set of composable
//! user-space pieces:
//!
//! * [`BlockDevice`] — the trait every storage backend implements: fixed-size
//!   blocks, addressed by [`BlockId`], read and written whole.  Besides the
//!   single-block transfers it carries a *batched* submission pair
//!   ([`BlockDevice::read_blocks`] / [`BlockDevice::write_blocks`]): the
//!   file-system layers hand a whole extent list down in one call, so a
//!   multi-block object read costs one submission instead of one round-trip
//!   per block.  Every backend is batch-capable (the trait provides a
//!   fallback loop); the in-memory volume, the cache and the meter implement
//!   it natively, and [`LatencyDevice`] *overlaps* the batch — one service
//!   time per submission, io_uring-style, instead of a sleep per block.
//! * [`MemBlockDevice`] — a `Vec`-backed volume used by unit tests and the
//!   simulation experiments (a 1 GB volume of 1 KB blocks fits comfortably in
//!   memory).
//! * [`FileBlockDevice`] — a volume backed by a regular file, so the examples
//!   can create persistent images on the host file system.
//! * [`DiskModel`] / [`SimDisk`] — a mechanical-disk timing model (seek +
//!   rotation + transfer + read-ahead).  It does not sleep; it advances a
//!   virtual clock, which is what the performance experiments measure.
//! * [`MeteredDevice`] — wraps any device and counts reads, writes and
//!   simulated service time.
//! * [`BufferCache`] — a small LRU cache mirroring the role of the kernel
//!   buffer cache in Figure 5 of the paper; write-through by default, with a
//!   write-back mode ([`CacheMode`]) for the journaled stack, where the
//!   journal's group-commit flushes provide the barriers.
//! * [`CrashDevice`] — fault injection for the durability tests: buffers
//!   unsynced writes, and `crash()` applies, drops or tears an arbitrary
//!   seeded subset of them (including mid-batch) before remount.
//! * [`CorruptingDevice`] — the damage analogue for the survivability
//!   tests: seeded bit flips, block zeroing and region overwrites applied
//!   to data *at rest*, exercised by the coded read path and the scavenger.
//! * [`FlakyDevice`] — seeded *transient* error injection (error-then-
//!   succeed, never damage-at-rest), the third fault family alongside
//!   crashes and corruption.
//! * [`RetryDevice`] — bounded retry-with-backoff above a flaky backend:
//!   transient I/O errors are reissued up to N attempts and only then
//!   surfaced unchanged, so a momentary glitch no longer reads as object
//!   loss.
//! * [`LatencyDevice`] — real-time per-block service latency (it actually
//!   sleeps, outside every lock), used by the thread-scaling benchmarks to
//!   show concurrent block I/O overlapping on the wall clock.
//!
//! [`BlockDevice`] I/O takes `&self`: every backend carries its own interior
//! locking (the in-memory volume stripes its storage so disjoint blocks
//! transfer in parallel; the file/cache/model wrappers serialise on the state
//! they genuinely share), which is what lets the shared-reference file-system
//! layers above drive one volume from many threads without a global device
//! lock.  [`SharedDevice`] remains the cloneable boxed handle used where two
//! owners need the same device object.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod corrupt;
pub mod crash;
pub mod device;
pub mod disk_model;
pub mod error;
pub mod file;
pub mod flaky;
pub mod latency;
pub mod metered;
pub mod observed;
pub mod retry;

pub use cache::{BufferCache, CacheMode};
pub use corrupt::{CorruptingDevice, CorruptionReport};
pub use crash::{CrashDevice, CrashReport};
pub use device::{BlockDevice, BlockId, MemBlockDevice, SharedDevice};
pub use disk_model::{DiskClock, DiskModel, DiskParameters, DiskStats, SimDisk};
pub use error::{BlockError, BlockResult};
pub use file::FileBlockDevice;
pub use flaky::FlakyDevice;
pub use latency::LatencyDevice;
pub use metered::{IoStats, MeteredDevice};
pub use observed::ObservedDevice;
pub use retry::RetryDevice;
