//! # stegfs-blockdev
//!
//! Block storage substrate for the StegFS reproduction.
//!
//! The original system is a Linux 2.4 file-system driver sitting between the
//! VFS and the buffer cache, talking to a real Ultra ATA disk (Table 2 of the
//! paper).  This crate replaces that stack with a small set of composable
//! user-space pieces:
//!
//! * [`BlockDevice`] — the trait every storage backend implements: fixed-size
//!   blocks, addressed by [`BlockId`], read and written whole.
//! * [`MemBlockDevice`] — a `Vec`-backed volume used by unit tests and the
//!   simulation experiments (a 1 GB volume of 1 KB blocks fits comfortably in
//!   memory).
//! * [`FileBlockDevice`] — a volume backed by a regular file, so the examples
//!   can create persistent images on the host file system.
//! * [`DiskModel`] / [`SimDisk`] — a mechanical-disk timing model (seek +
//!   rotation + transfer + read-ahead).  It does not sleep; it advances a
//!   virtual clock, which is what the performance experiments measure.
//! * [`MeteredDevice`] — wraps any device and counts reads, writes and
//!   simulated service time.
//! * [`BufferCache`] — a small write-through LRU cache mirroring the role of
//!   the kernel buffer cache in Figure 5 of the paper.
//!
//! All types are single-threaded by design except the shared handles
//! ([`SharedDevice`]), which use a `parking_lot` mutex so the multi-user
//! simulation can interleave requests from several logical users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod device;
pub mod disk_model;
pub mod error;
pub mod file;
pub mod metered;

pub use cache::BufferCache;
pub use device::{BlockDevice, BlockId, MemBlockDevice, SharedDevice};
pub use disk_model::{DiskClock, DiskModel, DiskParameters, DiskStats, SimDisk};
pub use error::{BlockError, BlockResult};
pub use file::FileBlockDevice;
pub use metered::{IoStats, MeteredDevice};
