//! Transient-fault injection for retry testing.
//!
//! [`FlakyDevice`] is the *transient* analogue of [`crate::CorruptingDevice`]:
//! where corruption damages data at rest, a flake is an I/O submission that
//! errors now and would succeed if reissued — a bus reset, a momentary cable
//! glitch, a storage daemon restarting underneath the volume.  The model:
//!
//! * each submission rolls a seeded die; with probability `fail_percent`/100
//!   it starts an **error streak** of `streak_len` failed operations, after
//!   which I/O succeeds again (error-then-succeed, never damage-at-rest);
//! * [`script_failures`](FlakyDevice::script_failures) arms an exact number
//!   of failures for the very next submissions, so a test can pin down "the
//!   second attempt succeeds" without probability;
//! * failed writes change nothing on the inner device, failed reads leave
//!   the caller's buffer untouched — a flake is indistinguishable from the
//!   submission never reaching the device.
//!
//! Injected errors are [`BlockError::Io`] with [`ErrorKind::Interrupted`]
//! (`std::io`'s canonical retry-me kind) and a fixed static message, so the
//! error family carries nothing volume- or key-derived — the deniable error
//! surface stays uniform.  Pair with [`crate::RetryDevice`] to exercise the
//! bounded-retry policy end to end.
//!
//! [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted

use crate::device::{BlockDevice, BlockId};
use crate::error::{BlockError, BlockResult};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The xorshift step shared with the other injectors: deterministic per
/// seed, cheap, and good enough to scatter faults.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn transient_failure() -> BlockError {
    BlockError::Io(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        "transient device error",
    ))
}

struct FlakeState {
    rng: u64,
    /// Failures left in the current streak (scripted or rolled).
    remaining_failures: u64,
}

struct Shared<D: BlockDevice> {
    inner: Arc<D>,
    state: Mutex<FlakeState>,
    fail_percent: u64,
    streak_len: u64,
    injected: AtomicU64,
    ops: AtomicU64,
}

/// A pass-through wrapper that injects seeded *transient* I/O errors.  See
/// the module docs for the model.
pub struct FlakyDevice<D: BlockDevice> {
    shared: Arc<Shared<D>>,
}

impl<D: BlockDevice> Clone for FlakyDevice<D> {
    fn clone(&self) -> Self {
        FlakyDevice {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<D: BlockDevice> FlakyDevice<D> {
    /// Wrap `inner`.  Each submission fails with probability
    /// `fail_percent`/100 (clamped to 0–100), starting a streak of
    /// `streak_len` consecutive failures (minimum 1).  All clones share one
    /// fault stream, deterministic in `seed`.
    pub fn new(inner: D, seed: u64, fail_percent: u64, streak_len: u64) -> Self {
        FlakyDevice {
            shared: Arc::new(Shared {
                inner: Arc::new(inner),
                state: Mutex::new(FlakeState {
                    rng: seed ^ 0x9e37_79b9_7f4a_7c15,
                    remaining_failures: 0,
                }),
                fail_percent: fail_percent.min(100),
                streak_len: streak_len.max(1),
                injected: AtomicU64::new(0),
                ops: AtomicU64::new(0),
            }),
        }
    }

    /// Arm exactly `count` failures for the next submissions, ahead of any
    /// probabilistic flakes.  The submission after the streak succeeds.
    pub fn script_failures(&self, count: u64) {
        self.shared.state.lock().remaining_failures = count;
    }

    /// Number of submissions that were failed by injection so far.
    pub fn injected(&self) -> u64 {
        self.shared.injected.load(Ordering::Relaxed)
    }

    /// Total submissions observed (failed or passed through).
    pub fn ops(&self) -> u64 {
        self.shared.ops.load(Ordering::Relaxed)
    }

    /// Decide one submission: pass (`Ok`) or inject a transient error.
    fn admit(&self) -> BlockResult<()> {
        self.shared.ops.fetch_add(1, Ordering::Relaxed);
        let mut st = self.shared.state.lock();
        if st.remaining_failures == 0
            && self.shared.fail_percent > 0
            && xorshift(&mut st.rng) % 100 < self.shared.fail_percent
        {
            st.remaining_failures = self.shared.streak_len;
        }
        if st.remaining_failures > 0 {
            st.remaining_failures -= 1;
            drop(st);
            self.shared.injected.fetch_add(1, Ordering::Relaxed);
            return Err(transient_failure());
        }
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for FlakyDevice<D> {
    fn block_size(&self) -> usize {
        self.shared.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.shared.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        self.admit()?;
        self.shared.inner.read_block(block, buf)
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        self.admit()?;
        self.shared.inner.write_block(block, buf)
    }

    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        self.admit()?;
        self.shared.inner.read_blocks(blocks, buf)
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        self.admit()?;
        self.shared.inner.write_blocks(blocks, buf)
    }

    fn flush(&self) -> BlockResult<()> {
        self.admit()?;
        self.shared.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;

    const BS: usize = 64;

    #[test]
    fn scripted_failures_then_success() {
        let dev = FlakyDevice::new(MemBlockDevice::new(BS, 8), 1, 0, 1);
        dev.script_failures(2);
        assert!(dev.write_block(0, &[7; BS]).is_err());
        assert!(dev.write_block(0, &[7; BS]).is_err());
        dev.write_block(0, &[7; BS]).unwrap();
        assert_eq!(dev.read_block_vec(0).unwrap(), vec![7; BS]);
        assert_eq!(dev.injected(), 2);
        assert_eq!(dev.ops(), 4);
    }

    #[test]
    fn failed_writes_leave_no_trace_on_the_store() {
        let dev = FlakyDevice::new(MemBlockDevice::new(BS, 8), 1, 0, 1);
        dev.write_block(2, &[0xaa; BS]).unwrap();
        dev.script_failures(1);
        assert!(dev.write_block(2, &[0xbb; BS]).is_err());
        assert_eq!(dev.read_block_vec(2).unwrap(), vec![0xaa; BS]);
    }

    #[test]
    fn probabilistic_flakes_are_transient_and_deterministic() {
        let run = |seed: u64| {
            let dev = FlakyDevice::new(MemBlockDevice::new(BS, 8), seed, 30, 2);
            let mut outcomes = Vec::new();
            for i in 0..200u64 {
                outcomes.push(dev.write_block(i % 8, &[i as u8; BS]).is_ok());
            }
            (outcomes, dev.injected())
        };
        let (a, injected) = run(42);
        let (b, _) = run(42);
        assert_eq!(a, b, "same seed, same fault stream");
        assert!(injected > 0, "a 30% rate over 200 ops must fire");
        assert!(a.iter().any(|ok| *ok), "flakes are transient, not fatal");
        // A streak is never longer than configured: after any 2 consecutive
        // failures the streak has drained and a fresh roll decides the next.
        let longest = a
            .split(|ok| *ok)
            .map(|fails| fails.len())
            .max()
            .unwrap_or(0);
        assert!(longest >= 2, "streak length reached at least once");
    }

    #[test]
    fn injected_errors_are_interrupted_io_with_static_text() {
        let dev = FlakyDevice::new(MemBlockDevice::new(BS, 8), 1, 0, 1);
        dev.script_failures(1);
        match dev.flush() {
            Err(BlockError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
                assert_eq!(e.to_string(), "transient device error");
            }
            other => panic!("expected injected Io error, got {other:?}"),
        }
    }

    #[test]
    fn batched_ops_count_as_one_submission() {
        let dev = FlakyDevice::new(MemBlockDevice::new(BS, 8), 1, 0, 1);
        dev.script_failures(1);
        let blocks: Vec<u64> = (0..4).collect();
        assert!(dev.write_blocks(&blocks, &vec![1u8; 4 * BS]).is_err());
        dev.write_blocks(&blocks, &vec![1u8; 4 * BS]).unwrap();
        let mut buf = vec![0u8; 4 * BS];
        dev.read_blocks(&blocks, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 4 * BS]);
    }
}
