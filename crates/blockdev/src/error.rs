//! Error type shared by all block devices.

use std::fmt;

/// Result alias for block device operations.
pub type BlockResult<T> = Result<T, BlockError>;

/// Errors reported by block devices.
#[derive(Debug)]
pub enum BlockError {
    /// A block index beyond the end of the device was addressed.
    OutOfRange {
        /// The offending block number.
        block: u64,
        /// Number of blocks in the device.
        total: u64,
    },
    /// A buffer whose length does not equal the device block size was passed.
    BadBufferLength {
        /// Length of the buffer supplied by the caller.
        got: usize,
        /// Block size of the device.
        expected: usize,
    },
    /// The underlying storage failed (only possible for file-backed devices).
    Io(std::io::Error),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange { block, total } => {
                write!(f, "block {block} out of range (device has {total} blocks)")
            }
            BlockError::BadBufferLength { got, expected } => {
                write!(
                    f,
                    "buffer length {got} does not match block size {expected}"
                )
            }
            BlockError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for BlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BlockError {
    fn from(e: std::io::Error) -> Self {
        BlockError::Io(e)
    }
}

impl PartialEq for BlockError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                BlockError::OutOfRange { block: a, total: b },
                BlockError::OutOfRange { block: c, total: d },
            ) => a == c && b == d,
            (
                BlockError::BadBufferLength {
                    got: a,
                    expected: b,
                },
                BlockError::BadBufferLength {
                    got: c,
                    expected: d,
                },
            ) => a == c && b == d,
            (BlockError::Io(a), BlockError::Io(b)) => a.kind() == b.kind(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BlockError::OutOfRange { block: 9, total: 4 };
        assert!(e.to_string().contains("block 9"));
        let e = BlockError::BadBufferLength {
            got: 10,
            expected: 1024,
        };
        assert!(e.to_string().contains("1024"));
        let e = BlockError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn equality_ignores_io_payload_but_not_kind() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            BlockError::Io(Error::new(ErrorKind::NotFound, "a")),
            BlockError::Io(Error::new(ErrorKind::NotFound, "b"))
        );
        assert_ne!(
            BlockError::Io(Error::new(ErrorKind::NotFound, "a")),
            BlockError::Io(Error::new(ErrorKind::PermissionDenied, "a"))
        );
        assert_ne!(
            BlockError::OutOfRange { block: 1, total: 2 },
            BlockError::BadBufferLength {
                got: 1,
                expected: 2
            }
        );
    }
}
