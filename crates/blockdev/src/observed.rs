//! [`ObservedDevice`] — metrics-instrumented wrapper around any device.
//!
//! Unlike [`crate::MeteredDevice`] (which counts I/O and simulated service
//! time into its own `IoStats`), this wrapper feeds the volume-wide
//! observability registry: submission counts, batch sizes, and wall-clock
//! latency histograms land in a shared [`DeviceStats`] from `stegfs-obs`.
//! The file-system layer owns one of these around its device so *all*
//! metadata, journal, and data I/O is metered at a single choke point.
//!
//! With a disabled stats handle (the default until the volume attaches its
//! registry) the wrapper never reads the clock and forwards straight
//! through, preserving the zero-cost opt-out.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use stegfs_obs::{span, DeviceStats};

use crate::device::{BlockDevice, BlockId};
use crate::error::BlockResult;

/// A [`BlockDevice`] that records submissions, batch sizes and latency
/// into a shared [`DeviceStats`].
pub struct ObservedDevice<D> {
    inner: D,
    stats: Arc<DeviceStats>,
    enabled: bool,
}

impl<D: BlockDevice> ObservedDevice<D> {
    /// Wrap `inner` with a detached (disabled) stats handle.
    pub fn new(inner: D) -> Self {
        ObservedDevice {
            inner,
            stats: Arc::new(DeviceStats::new(false)),
            enabled: false,
        }
    }

    /// Attach the registry's device stats (requires exclusive access; done
    /// once while the volume is being assembled).
    pub fn set_stats(&mut self, stats: Arc<DeviceStats>, enabled: bool) {
        self.stats = stats;
        self.enabled = enabled;
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    #[inline]
    fn clock(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }
}

impl<D: BlockDevice> BlockDevice for ObservedDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        let _io = span::span(span::Phase::DeviceIo);
        let start = self.clock();
        let result = self.inner.read_block(block, buf);
        if let Some(start) = start {
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
            self.stats.blocks_read.fetch_add(1, Ordering::Relaxed);
            self.stats.read_batch.record(1);
            self.stats.read_ns.record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        let _io = span::span(span::Phase::DeviceIo);
        let start = self.clock();
        let result = self.inner.write_block(block, buf);
        if let Some(start) = start {
            self.stats.writes.fetch_add(1, Ordering::Relaxed);
            self.stats.blocks_written.fetch_add(1, Ordering::Relaxed);
            self.stats.write_batch.record(1);
            self.stats
                .write_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        let _io = span::span(span::Phase::DeviceIo);
        let start = self.clock();
        let result = self.inner.read_blocks(blocks, buf);
        if let Some(start) = start {
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
            self.stats
                .blocks_read
                .fetch_add(blocks.len() as u64, Ordering::Relaxed);
            self.stats.read_batch.record(blocks.len() as u64);
            self.stats.read_ns.record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        let _io = span::span(span::Phase::DeviceIo);
        let start = self.clock();
        let result = self.inner.write_blocks(blocks, buf);
        if let Some(start) = start {
            self.stats.writes.fetch_add(1, Ordering::Relaxed);
            self.stats
                .blocks_written
                .fetch_add(blocks.len() as u64, Ordering::Relaxed);
            self.stats.write_batch.record(blocks.len() as u64);
            self.stats
                .write_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        result
    }

    fn flush(&self) -> BlockResult<()> {
        let _io = span::span(span::Phase::DeviceIo);
        let start = self.clock();
        let result = self.inner.flush();
        if let Some(start) = start {
            self.stats.flushes.fetch_add(1, Ordering::Relaxed);
            self.stats
                .flush_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;
    use stegfs_obs::Obs;

    #[test]
    fn detached_wrapper_forwards_without_counting() {
        let dev = ObservedDevice::new(MemBlockDevice::new(128, 64));
        let buf = vec![7u8; 128];
        dev.write_block(3, &buf).unwrap();
        assert_eq!(dev.read_block_vec(3).unwrap(), buf);
        assert_eq!(dev.stats.summary().writes, 0);
    }

    #[test]
    fn attached_wrapper_counts_submissions_and_batches() {
        let obs = Obs::new(true);
        let mut dev = ObservedDevice::new(MemBlockDevice::new(128, 64));
        dev.set_stats(obs.device.clone(), true);
        let buf = vec![1u8; 128 * 3];
        dev.write_blocks(&[1, 2, 3], &buf).unwrap();
        let mut out = vec![0u8; 128 * 3];
        dev.read_blocks(&[1, 2, 3], &mut out).unwrap();
        dev.flush().unwrap();
        let s = obs.device.summary();
        assert_eq!(s.writes, 1);
        assert_eq!(s.blocks_written, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.blocks_read, 3);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.write_batch.count, 1);
        assert!(s.write_batch.max >= 3);
        assert!(s.read_ns.count == 1);
    }

    #[test]
    fn unwraps_to_inner_device() {
        let mut dev = ObservedDevice::new(MemBlockDevice::new(64, 16));
        dev.write_block(0, &[9u8; 64]).unwrap();
        assert_eq!(dev.inner().read_block_vec(0).unwrap(), vec![9u8; 64]);
        dev.inner_mut();
        let inner = dev.into_inner();
        assert_eq!(inner.read_block_vec(0).unwrap(), vec![9u8; 64]);
    }
}
