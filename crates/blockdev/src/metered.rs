//! I/O metering wrapper.
//!
//! The experiments report averages over many operations; [`MeteredDevice`]
//! counts the block reads and writes issued by the layers above so that the
//! harness can report I/Os-per-file-operation alongside simulated time, and
//! so that tests can assert on access patterns (e.g. "StegCover issues 16×
//! the I/Os of StegFS").

use crate::device::{BlockDevice, BlockId};
use crate::error::BlockResult;
use parking_lot::Mutex;
use std::sync::Arc;

/// Counters shared between a [`MeteredDevice`] and the harness observing it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of block reads issued.
    pub reads: u64,
    /// Number of block writes issued.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Number of read *submissions*: a single [`BlockDevice::read_block`]
    /// counts one, and a whole [`BlockDevice::read_blocks`] batch counts one
    /// — so `reads - read_submissions` is the number of block transfers that
    /// rode along in batches.
    pub read_submissions: u64,
    /// Number of write submissions (see
    /// [`read_submissions`](Self::read_submissions)).
    pub write_submissions: u64,
}

impl IoStats {
    /// Total number of I/O operations.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total number of submissions (batched or single).
    pub fn total_submissions(&self) -> u64 {
        self.read_submissions + self.write_submissions
    }
}

/// Cloneable handle for reading the counters of a [`MeteredDevice`].
#[derive(Clone)]
pub struct IoStatsHandle {
    inner: Arc<Mutex<IoStats>>,
}

impl IoStatsHandle {
    /// Snapshot the current counters.
    pub fn snapshot(&self) -> IoStats {
        self.inner.lock().clone()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = IoStats::default();
    }
}

/// A [`BlockDevice`] wrapper that counts operations.
pub struct MeteredDevice<D: BlockDevice> {
    inner: D,
    stats: Arc<Mutex<IoStats>>,
}

impl<D: BlockDevice> MeteredDevice<D> {
    /// Wrap a device.
    pub fn new(inner: D) -> Self {
        MeteredDevice {
            inner,
            stats: Arc::new(Mutex::new(IoStats::default())),
        }
    }

    /// Handle for observing the counters after the device has been moved into
    /// a file-system object.
    pub fn stats_handle(&self) -> IoStatsHandle {
        IoStatsHandle {
            inner: Arc::clone(&self.stats),
        }
    }

    /// Access the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap the device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for MeteredDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        self.inner.read_block(block, buf)?;
        let mut s = self.stats.lock();
        s.reads += 1;
        s.read_submissions += 1;
        s.bytes_read += buf.len() as u64;
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        self.inner.write_block(block, buf)?;
        let mut s = self.stats.lock();
        s.writes += 1;
        s.write_submissions += 1;
        s.bytes_written += buf.len() as u64;
        Ok(())
    }

    // A batch is one submission carrying n transfers; forwarding it whole
    // also lets a wrapped LatencyDevice overlap the batch.  Empty batches
    // transfer nothing and count nothing (as LatencyDevice charges them
    // nothing), keeping `reads - read_submissions` an exact measure of the
    // transfers that rode along in batches.
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        self.inner.read_blocks(blocks, buf)?;
        if blocks.is_empty() {
            return Ok(());
        }
        let mut s = self.stats.lock();
        s.reads += blocks.len() as u64;
        s.read_submissions += 1;
        s.bytes_read += buf.len() as u64;
        Ok(())
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        self.inner.write_blocks(blocks, buf)?;
        if blocks.is_empty() {
            return Ok(());
        }
        let mut s = self.stats.lock();
        s.writes += blocks.len() as u64;
        s.write_submissions += 1;
        s.bytes_written += buf.len() as u64;
        Ok(())
    }

    fn flush(&self) -> BlockResult<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;

    #[test]
    fn counts_reads_and_writes() {
        let dev = MeteredDevice::new(MemBlockDevice::new(256, 16));
        let handle = dev.stats_handle();
        let buf = vec![1u8; 256];
        dev.write_block(0, &buf).unwrap();
        dev.write_block(1, &buf).unwrap();
        let mut rbuf = vec![0u8; 256];
        dev.read_block(0, &mut rbuf).unwrap();
        let stats = handle.snapshot();
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.bytes_read, 256);
        assert_eq!(stats.bytes_written, 512);
        assert_eq!(stats.total_ops(), 3);
    }

    #[test]
    fn batches_count_one_submission() {
        let dev = MeteredDevice::new(MemBlockDevice::new(256, 32));
        let handle = dev.stats_handle();
        let blocks: Vec<u64> = (4..20).collect();
        let data = vec![9u8; 16 * 256];
        dev.write_blocks(&blocks, &data).unwrap();
        let mut out = vec![0u8; 16 * 256];
        dev.read_blocks(&blocks, &mut out).unwrap();
        let mut single = vec![0u8; 256];
        dev.read_block(0, &mut single).unwrap();
        let s = handle.snapshot();
        assert_eq!(s.writes, 16);
        assert_eq!(s.write_submissions, 1);
        assert_eq!(s.reads, 17);
        assert_eq!(s.read_submissions, 2);
        assert_eq!(s.bytes_written, 16 * 256);
        assert_eq!(s.total_submissions(), 3);
        assert_eq!(out, data);
    }

    #[test]
    fn failed_operations_not_counted() {
        let dev = MeteredDevice::new(MemBlockDevice::new(256, 4));
        let handle = dev.stats_handle();
        let buf = vec![1u8; 256];
        assert!(dev.write_block(99, &buf).is_err());
        let mut rbuf = vec![0u8; 100];
        assert!(dev.read_block(0, &mut rbuf).is_err());
        assert_eq!(handle.snapshot(), IoStats::default());
    }

    #[test]
    fn reset_clears_counters() {
        let dev = MeteredDevice::new(MemBlockDevice::new(128, 4));
        let handle = dev.stats_handle();
        dev.write_block(0, &[0u8; 128]).unwrap();
        assert_ne!(handle.snapshot(), IoStats::default());
        handle.reset();
        assert_eq!(handle.snapshot(), IoStats::default());
    }

    #[test]
    fn passthrough_geometry_and_data() {
        let dev = MeteredDevice::new(MemBlockDevice::new(128, 4));
        assert_eq!(dev.block_size(), 128);
        assert_eq!(dev.total_blocks(), 4);
        dev.write_block(3, &[0x42; 128]).unwrap();
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![0x42; 128]);
        dev.flush().unwrap();
        let inner = dev.into_inner();
        assert_eq!(inner.snapshot_raw()[3 * 128], 0x42);
    }
}
