//! Bounded retry-with-backoff at the device-facing layer.
//!
//! [`RetryDevice`] sits directly above a possibly-flaky backend and reissues
//! failed submissions so *transient* I/O errors (see [`crate::FlakyDevice`])
//! stop surfacing to the file-system layers as object loss.  The policy is
//! deliberately narrow:
//!
//! * only [`BlockError::Io`] is retried — [`BlockError::OutOfRange`] and
//!   [`BlockError::BadBufferLength`] are deterministic caller bugs and fail
//!   immediately;
//! * at most `max_attempts` submissions per operation, with a fixed
//!   per-retry backoff (tests pass zero), then the **last** error is
//!   returned unchanged — fail-fast, and the surfaced error family is
//!   exactly what the backend produced, so fail-closed semantics and the
//!   deniable error surface above are untouched;
//! * block I/O is idempotent (whole blocks, no read-modify-write), so
//!   reissuing a write that may or may not have reached the platter is
//!   always safe.

use crate::device::{BlockDevice, BlockId};
use crate::error::{BlockError, BlockResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Shared<D: BlockDevice> {
    inner: Arc<D>,
    max_attempts: u32,
    backoff: Duration,
    retries: AtomicU64,
    exhausted: AtomicU64,
}

/// A wrapper that reissues transiently-failed submissions a bounded number
/// of times.  See the module docs for the policy.
pub struct RetryDevice<D: BlockDevice> {
    shared: Arc<Shared<D>>,
}

impl<D: BlockDevice> Clone for RetryDevice<D> {
    fn clone(&self) -> Self {
        RetryDevice {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<D: BlockDevice> RetryDevice<D> {
    /// Wrap `inner`, allowing up to `max_attempts` submissions per operation
    /// (minimum 1) with `backoff` slept between consecutive attempts.
    pub fn new(inner: D, max_attempts: u32, backoff: Duration) -> Self {
        RetryDevice {
            shared: Arc::new(Shared {
                inner: Arc::new(inner),
                max_attempts: max_attempts.max(1),
                backoff,
                retries: AtomicU64::new(0),
                exhausted: AtomicU64::new(0),
            }),
        }
    }

    /// Number of reissued submissions (attempts beyond the first) so far.
    pub fn retries(&self) -> u64 {
        self.shared.retries.load(Ordering::Relaxed)
    }

    /// Number of operations that failed even after the final attempt.
    pub fn exhausted(&self) -> u64 {
        self.shared.exhausted.load(Ordering::Relaxed)
    }

    /// Run `op` under the retry policy.
    fn with_retry<T>(&self, mut op: impl FnMut(&D) -> BlockResult<T>) -> BlockResult<T> {
        let mut attempt = 1;
        loop {
            match op(&self.shared.inner) {
                Ok(v) => return Ok(v),
                // Geometry and buffer-shape errors are deterministic; a
                // reissue cannot change the outcome.
                Err(e @ (BlockError::OutOfRange { .. } | BlockError::BadBufferLength { .. })) => {
                    return Err(e)
                }
                Err(e) => {
                    if attempt >= self.shared.max_attempts {
                        self.shared.exhausted.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                    attempt += 1;
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    if !self.shared.backoff.is_zero() {
                        std::thread::sleep(self.shared.backoff);
                    }
                }
            }
        }
    }
}

impl<D: BlockDevice> BlockDevice for RetryDevice<D> {
    fn block_size(&self) -> usize {
        self.shared.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.shared.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        self.with_retry(|d| d.read_block(block, buf))
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        self.with_retry(|d| d.write_block(block, buf))
    }

    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        self.with_retry(|d| d.read_blocks(blocks, buf))
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        self.with_retry(|d| d.write_blocks(blocks, buf))
    }

    fn flush(&self) -> BlockResult<()> {
        self.with_retry(|d| d.flush())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;
    use crate::flaky::FlakyDevice;

    const BS: usize = 64;

    fn stack(
        max_attempts: u32,
    ) -> (
        RetryDevice<FlakyDevice<MemBlockDevice>>,
        FlakyDevice<MemBlockDevice>,
    ) {
        let flaky = FlakyDevice::new(MemBlockDevice::new(BS, 8), 7, 0, 1);
        let handle = flaky.clone();
        (
            RetryDevice::new(flaky, max_attempts, Duration::ZERO),
            handle,
        )
    }

    #[test]
    fn transient_errors_are_absorbed() {
        let (dev, flaky) = stack(3);
        flaky.script_failures(2);
        dev.write_block(1, &[9; BS]).unwrap();
        assert_eq!(dev.retries(), 2);
        assert_eq!(dev.exhausted(), 0);
        flaky.script_failures(1);
        assert_eq!(dev.read_block_vec(1).unwrap(), vec![9; BS]);
        assert_eq!(dev.retries(), 3);
    }

    #[test]
    fn fails_fast_after_the_attempt_budget() {
        let (dev, flaky) = stack(3);
        flaky.script_failures(10);
        let err = dev.write_block(0, &[1; BS]).unwrap_err();
        match err {
            BlockError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::Interrupted),
            other => panic!("expected the backend's Io error, got {other:?}"),
        }
        assert_eq!(dev.retries(), 2, "exactly max_attempts submissions");
        assert_eq!(dev.exhausted(), 1);
        // The streak had 7 failures left; later ops still recover.
        flaky.script_failures(0);
        dev.write_block(0, &[1; BS]).unwrap();
    }

    #[test]
    fn deterministic_errors_are_not_retried() {
        let (dev, flaky) = stack(5);
        assert!(matches!(
            dev.write_block(99, &[0; BS]),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            dev.write_block(0, &[0; 3]),
            Err(BlockError::BadBufferLength { .. })
        ));
        assert_eq!(dev.retries(), 0);
        assert_eq!(flaky.ops(), 2, "each bad op was submitted exactly once");
    }

    #[test]
    fn batched_submissions_retry_whole() {
        let (dev, flaky) = stack(2);
        flaky.script_failures(1);
        let blocks: Vec<u64> = (2..6).collect();
        dev.write_blocks(&blocks, &vec![3u8; 4 * BS]).unwrap();
        let mut buf = vec![0u8; 4 * BS];
        flaky.script_failures(1);
        dev.read_blocks(&blocks, &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; 4 * BS]);
        assert_eq!(dev.retries(), 2);
    }
}
