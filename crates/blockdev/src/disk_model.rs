//! Mechanical disk timing model.
//!
//! The paper's evaluation (Section 5) runs on a single Ultra ATA/100 disk
//! (Table 2) and measures file access times.  The performance differences
//! between CleanDisk, FragDisk, StegFS, StegRand and StegCover are entirely
//! explained by three mechanical effects:
//!
//! 1. **Sequential transfers are cheap** — contiguous blocks stream at the
//!    media rate and benefit from the drive's read-ahead ("particularly for
//!    read operations that benefit from the read-ahead feature of the hard
//!    disk", §5.3).
//! 2. **Random block accesses pay a seek plus rotational latency** — which is
//!    what StegFS and StegRand pay per block, and FragDisk pays per 8-block
//!    fragment.
//! 3. **Interleaving destroys sequentiality** — with many concurrent users
//!    even CleanDisk's contiguous files are accessed one block at a time with
//!    intervening seeks, which is why StegFS converges to the native file
//!    system by 8–16 users (§5.3).
//!
//! [`DiskModel`] captures exactly these effects and nothing more: a seek-time
//! curve, rotational latency, a media transfer rate, and a read-ahead window.
//! It never sleeps; callers advance a virtual clock and read it back.
//! [`SimDisk`] layers the model over any [`BlockDevice`] so the file systems
//! built above it transparently accumulate simulated service time.

use crate::device::{BlockDevice, BlockId};
use crate::error::BlockResult;
use parking_lot::Mutex;
use std::sync::Arc;

/// Physical parameters of the simulated drive.
///
/// Defaults approximate the paper's test rig (Table 2): an Ultra ATA/100
/// 20 GB desktop drive of the early 2000s.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParameters {
    /// Minimum (track-to-track) seek time in milliseconds.
    pub track_to_track_ms: f64,
    /// Full-stroke (worst case) seek time in milliseconds.
    pub full_stroke_ms: f64,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Sustained media transfer rate in megabytes per second.
    pub transfer_mb_per_s: f64,
    /// Fixed per-request controller/command overhead in milliseconds.
    pub controller_overhead_ms: f64,
    /// Size of the drive's read-ahead window in bytes.
    pub readahead_bytes: u64,
    /// Cost of serving a block out of the read-ahead buffer, in milliseconds.
    pub buffer_hit_ms: f64,
}

impl Default for DiskParameters {
    fn default() -> Self {
        Self::ultra_ata_100()
    }
}

impl DiskParameters {
    /// Parameters approximating the paper's Ultra ATA/100 disk (Table 2).
    pub fn ultra_ata_100() -> Self {
        DiskParameters {
            track_to_track_ms: 1.0,
            full_stroke_ms: 17.0,
            rpm: 7200.0,
            transfer_mb_per_s: 40.0,
            controller_overhead_ms: 0.2,
            readahead_bytes: 128 * 1024,
            buffer_hit_ms: 0.02,
        }
    }

    /// A much faster device (roughly an early SATA SSD); used by ablation
    /// benches to show how the StegFS penalty shrinks when seeks are cheap.
    pub fn ssd_like() -> Self {
        DiskParameters {
            track_to_track_ms: 0.02,
            full_stroke_ms: 0.02,
            rpm: 0.0,
            transfer_mb_per_s: 250.0,
            controller_overhead_ms: 0.02,
            readahead_bytes: 0,
            buffer_hit_ms: 0.005,
        }
    }

    /// Average rotational latency in milliseconds (half a revolution), or 0
    /// for non-rotating media.
    pub fn avg_rotational_latency_ms(&self) -> f64 {
        if self.rpm <= 0.0 {
            0.0
        } else {
            60_000.0 / self.rpm / 2.0
        }
    }

    /// Time to transfer `bytes` at the sustained media rate, in milliseconds.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0
    }
}

/// Statistics accumulated by the disk model (all counts of block requests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Requests served from the read-ahead buffer.
    pub readahead_hits: u64,
    /// Requests that were sequential with the previous access (no seek).
    pub sequential: u64,
    /// Requests that required a seek.
    pub random: u64,
    /// Total read requests.
    pub reads: u64,
    /// Total write requests.
    pub writes: u64,
}

struct ClockState {
    elapsed_ms: f64,
    stats: DiskStats,
}

/// A cloneable handle onto the virtual clock of a [`SimDisk`] (or a bare
/// [`DiskModel`]).  The simulation harness keeps one of these so it can read
/// elapsed service time after the file-system layers have taken ownership of
/// the device itself.
#[derive(Clone)]
pub struct DiskClock {
    state: Arc<Mutex<ClockState>>,
}

impl DiskClock {
    fn new() -> Self {
        DiskClock {
            state: Arc::new(Mutex::new(ClockState {
                elapsed_ms: 0.0,
                stats: DiskStats::default(),
            })),
        }
    }

    /// Total simulated service time accumulated so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.state.lock().elapsed_ms
    }

    /// Total simulated service time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ms() / 1000.0
    }

    /// Reset the clock and statistics to zero (between experiment phases).
    pub fn reset(&self) {
        let mut s = self.state.lock();
        s.elapsed_ms = 0.0;
        s.stats = DiskStats::default();
    }

    /// Snapshot of the request statistics.
    pub fn stats(&self) -> DiskStats {
        self.state.lock().stats.clone()
    }

    fn add(&self, ms: f64, update: impl FnOnce(&mut DiskStats)) {
        let mut s = self.state.lock();
        s.elapsed_ms += ms;
        update(&mut s.stats);
    }
}

/// Head-position and read-ahead state plus the timing maths.
pub struct DiskModel {
    params: DiskParameters,
    block_size: usize,
    total_blocks: u64,
    head: Option<BlockId>,
    readahead: Option<(BlockId, BlockId)>, // [start, end)
    clock: DiskClock,
}

impl DiskModel {
    /// Create a model for a volume of `total_blocks` blocks of `block_size`
    /// bytes.
    pub fn new(params: DiskParameters, block_size: usize, total_blocks: u64) -> Self {
        DiskModel {
            params,
            block_size,
            total_blocks,
            head: None,
            readahead: None,
            clock: DiskClock::new(),
        }
    }

    /// Handle onto the virtual clock.
    pub fn clock(&self) -> DiskClock {
        self.clock.clone()
    }

    /// The physical parameters in use.
    pub fn params(&self) -> &DiskParameters {
        &self.params
    }

    /// Seek time from the current head position to `block`, in milliseconds.
    fn seek_ms(&self, block: BlockId) -> f64 {
        let from = match self.head {
            None => return self.params.full_stroke_ms / 2.0,
            Some(h) => h,
        };
        let distance = from.abs_diff(block);
        if distance == 0 {
            return 0.0;
        }
        let frac = distance as f64 / self.total_blocks.max(1) as f64;
        self.params.track_to_track_ms
            + (self.params.full_stroke_ms - self.params.track_to_track_ms) * frac.sqrt()
    }

    fn readahead_blocks(&self) -> u64 {
        self.params.readahead_bytes / self.block_size as u64
    }

    /// Account for a read of `block` and return its service time in ms.
    pub fn read(&mut self, block: BlockId) -> f64 {
        let ms;
        let mut hit = false;
        let mut sequential = false;

        if let Some((start, end)) = self.readahead {
            if block >= start && block < end {
                hit = true;
            }
        }

        if hit {
            ms = self.params.buffer_hit_ms;
        } else if self.head == Some(block.wrapping_sub(1)) && block > 0 {
            // Sequential with the previous access: stream at media rate.
            sequential = true;
            ms = self.params.transfer_ms(self.block_size as u64)
                + self.params.controller_overhead_ms;
            let ra = self.readahead_blocks();
            if ra > 0 {
                self.readahead = Some((block + 1, (block + 1 + ra).min(self.total_blocks)));
            }
        } else {
            ms = self.seek_ms(block)
                + self.params.avg_rotational_latency_ms()
                + self.params.transfer_ms(self.block_size as u64)
                + self.params.controller_overhead_ms;
            let ra = self.readahead_blocks();
            if ra > 0 {
                self.readahead = Some((block + 1, (block + 1 + ra).min(self.total_blocks)));
            }
        }

        self.head = Some(block);
        self.clock.add(ms, |s| {
            s.reads += 1;
            if hit {
                s.readahead_hits += 1;
            } else if sequential {
                s.sequential += 1;
            } else {
                s.random += 1;
            }
        });
        ms
    }

    /// Account for a write of `block` and return its service time in ms.
    pub fn write(&mut self, block: BlockId) -> f64 {
        let sequential = self.head == Some(block.wrapping_sub(1)) && block > 0;
        let ms = if sequential {
            self.params.transfer_ms(self.block_size as u64) + self.params.controller_overhead_ms
        } else {
            self.seek_ms(block)
                + self.params.avg_rotational_latency_ms()
                + self.params.transfer_ms(self.block_size as u64)
                + self.params.controller_overhead_ms
        };

        // A write lands on the media; any read-ahead covering it is stale.
        if let Some((start, end)) = self.readahead {
            if block >= start && block < end {
                self.readahead = None;
            }
        }

        self.head = Some(block);
        self.clock.add(ms, |s| {
            s.writes += 1;
            if sequential {
                s.sequential += 1;
            } else {
                s.random += 1;
            }
        });
        ms
    }
}

/// A [`BlockDevice`] wrapper that charges every access to a [`DiskModel`].
///
/// The model's head/read-ahead state sits behind a mutex: a drive has one
/// arm, so concurrent requests serialise their *accounting* (the data
/// transfer itself happens in the wrapped device).
pub struct SimDisk<D: BlockDevice> {
    inner: D,
    model: Mutex<DiskModel>,
}

impl<D: BlockDevice> SimDisk<D> {
    /// Wrap `inner` with the given physical parameters.
    pub fn new(inner: D, params: DiskParameters) -> Self {
        let model = DiskModel::new(params, inner.block_size(), inner.total_blocks());
        SimDisk {
            inner,
            model: Mutex::new(model),
        }
    }

    /// Handle onto the virtual clock (cloneable; survives moving the device
    /// into a file-system object).
    pub fn clock(&self) -> DiskClock {
        self.model.lock().clock()
    }

    /// Access the underlying device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap, discarding the model.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for SimDisk<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        self.inner.read_block(block, buf)?;
        self.model.lock().read(block);
        Ok(())
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        self.inner.write_block(block, buf)?;
        self.model.lock().write(block);
        Ok(())
    }

    fn flush(&self) -> BlockResult<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;

    fn model_1kb() -> DiskModel {
        DiskModel::new(DiskParameters::ultra_ata_100(), 1024, 1024 * 1024)
    }

    #[test]
    fn sequential_reads_much_cheaper_than_random() {
        let mut m = model_1kb();
        // Prime the head.
        m.read(1000);
        let seq: f64 = (1001..1101).map(|b| m.read(b)).sum();

        let mut m2 = model_1kb();
        m2.read(1000);
        // Random pattern far apart.
        let rand: f64 = (0..100u64)
            .map(|i| m2.read((i * 7919 + 13) % 1_000_000))
            .sum();

        assert!(
            rand > seq * 10.0,
            "random {rand:.2} ms should dwarf sequential {seq:.2} ms"
        );
    }

    #[test]
    fn readahead_serves_following_blocks_cheaply() {
        let mut m = model_1kb();
        m.read(500); // random: seek + rotation, sets read-ahead at 501..
        let hit = m.read(501);
        assert!(hit <= m.params().buffer_hit_ms + 1e-9);
        let stats = m.clock().stats();
        assert_eq!(stats.readahead_hits, 1);
    }

    #[test]
    fn write_invalidates_readahead() {
        let mut m = model_1kb();
        m.read(500);
        m.write(501); // overlaps the read-ahead window -> invalidate
        let after = m.read(502);
        // 502 is sequential with 501 (head), so it is cheap but must not be a
        // buffer hit.
        assert_eq!(m.clock().stats().readahead_hits, 0);
        assert!(after > m.params().buffer_hit_ms);
    }

    #[test]
    fn seek_time_grows_with_distance() {
        let mut m = model_1kb();
        m.read(0);
        let near = m.seek_ms(100);
        let far = m.seek_ms(900_000);
        assert!(near < far);
        assert!(near >= m.params().track_to_track_ms);
        assert!(far <= m.params().full_stroke_ms + 1e-9);
    }

    #[test]
    fn zero_distance_seek_is_free() {
        let mut m = model_1kb();
        m.read(42);
        assert_eq!(m.seek_ms(42), 0.0);
    }

    #[test]
    fn rotational_latency_from_rpm() {
        let p = DiskParameters::ultra_ata_100();
        let lat = p.avg_rotational_latency_ms();
        assert!(
            (lat - 4.1666).abs() < 0.01,
            "7200 rpm -> ~4.17 ms, got {lat}"
        );
        assert_eq!(DiskParameters::ssd_like().avg_rotational_latency_ms(), 0.0);
    }

    #[test]
    fn transfer_time_scales_with_block_size() {
        let p = DiskParameters::ultra_ata_100();
        let t1 = p.transfer_ms(1024);
        let t64 = p.transfer_ms(64 * 1024);
        assert!((t64 / t1 - 64.0).abs() < 1e-6);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut m = model_1kb();
        let clock = m.clock();
        assert_eq!(clock.elapsed_ms(), 0.0);
        m.read(10);
        m.write(999_999);
        assert!(clock.elapsed_ms() > 0.0);
        assert_eq!(clock.stats().reads, 1);
        assert_eq!(clock.stats().writes, 1);
        clock.reset();
        assert_eq!(clock.elapsed_ms(), 0.0);
        assert_eq!(clock.stats(), DiskStats::default());
    }

    #[test]
    fn simdisk_charges_time_and_preserves_data() {
        let mem = MemBlockDevice::new(512, 128);
        let disk = SimDisk::new(mem, DiskParameters::ultra_ata_100());
        let clock = disk.clock();
        disk.write_block(7, &[9u8; 512]).unwrap();
        let mut buf = vec![0u8; 512];
        disk.read_block(7, &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 512]);
        assert!(clock.elapsed_ms() > 0.0);
        assert_eq!(clock.stats().reads, 1);
        assert_eq!(clock.stats().writes, 1);
        disk.flush().unwrap();
        assert_eq!(disk.block_size(), 512);
        assert_eq!(disk.total_blocks(), 128);
    }

    #[test]
    fn simdisk_errors_do_not_advance_clock() {
        let mem = MemBlockDevice::new(512, 8);
        let disk = SimDisk::new(mem, DiskParameters::ultra_ata_100());
        let clock = disk.clock();
        let mut buf = vec![0u8; 512];
        assert!(disk.read_block(100, &mut buf).is_err());
        assert_eq!(clock.elapsed_ms(), 0.0);
    }

    #[test]
    fn interleaving_two_streams_costs_more_than_serial() {
        // The mechanism behind Figure 7: two sequential streams interleaved
        // block-by-block force a seek per block, while run back-to-back they
        // stream cheaply.
        let total = 1_000_000u64;
        let mut serial = DiskModel::new(DiskParameters::ultra_ata_100(), 1024, total);
        for b in 0..200u64 {
            serial.read(b);
        }
        for b in 500_000..500_200u64 {
            serial.read(b);
        }
        let serial_ms = serial.clock().elapsed_ms();

        let mut inter = DiskModel::new(DiskParameters::ultra_ata_100(), 1024, total);
        for i in 0..200u64 {
            inter.read(i);
            inter.read(500_000 + i);
        }
        let inter_ms = inter.clock().elapsed_ms();
        assert!(
            inter_ms > serial_ms * 3.0,
            "interleaved {inter_ms:.1} ms vs serial {serial_ms:.1} ms"
        );
    }
}
