//! Real-time latency injection for concurrency experiments.
//!
//! [`SimDisk`](crate::SimDisk) models disk time on a *virtual* clock, which
//! is right for the single-driver timing experiments but useless for
//! measuring concurrency: virtual time cannot overlap.  [`LatencyDevice`]
//! instead *sleeps* for a fixed per-block service time, so when several
//! threads issue block I/O to independent objects their service times
//! overlap on the wall clock — exactly the effect the paper's Figure 7
//! measures against a real drive, and the effect the thread-scaling bench
//! quantifies.  The sleep happens outside every lock in this crate, so the
//! device admits as much request concurrency as the caller offers.

use crate::device::{BlockDevice, BlockId};
use crate::error::BlockResult;
use std::time::Duration;

/// A [`BlockDevice`] wrapper that sleeps a fixed service time per transfer.
pub struct LatencyDevice<D: BlockDevice> {
    inner: D,
    read_latency: Duration,
    write_latency: Duration,
}

impl<D: BlockDevice> LatencyDevice<D> {
    /// Wrap `inner`, charging `read_latency` / `write_latency` of wall-clock
    /// sleep per block transfer.
    pub fn new(inner: D, read_latency: Duration, write_latency: Duration) -> Self {
        LatencyDevice {
            inner,
            read_latency,
            write_latency,
        }
    }

    /// Wrap `inner` with one symmetric per-block service time.
    pub fn symmetric(inner: D, latency: Duration) -> Self {
        Self::new(inner, latency, latency)
    }

    /// Unwrap, discarding the latency model.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for LatencyDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        self.inner.read_block(block, buf)
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        if !self.write_latency.is_zero() {
            std::thread::sleep(self.write_latency);
        }
        self.inner.write_block(block, buf)
    }

    fn flush(&self) -> BlockResult<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn data_roundtrips_through_the_sleep() {
        let dev = LatencyDevice::symmetric(MemBlockDevice::new(64, 8), Duration::from_micros(50));
        dev.write_block(3, &[0x77; 64]).unwrap();
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![0x77; 64]);
        dev.flush().unwrap();
        assert_eq!(dev.block_size(), 64);
        assert_eq!(dev.total_blocks(), 8);
    }

    #[test]
    fn concurrent_transfers_overlap_their_latency() {
        // 8 threads x 4 blocks x 2 ms: serial would sleep >= 64 ms; the
        // threads must overlap to well under half of that.
        let dev = Arc::new(LatencyDevice::symmetric(
            MemBlockDevice::new(64, 64),
            Duration::from_millis(2),
        ));
        let start = Instant::now();
        let workers: Vec<_> = (0..8u64)
            .map(|t| {
                let dev = Arc::clone(&dev);
                std::thread::spawn(move || {
                    for i in 0..4u64 {
                        dev.write_block(t * 8 + i, &[t as u8; 64]).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(32),
            "latency did not overlap: {elapsed:?}"
        );
    }
}
