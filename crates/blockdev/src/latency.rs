//! Real-time latency injection for concurrency experiments.
//!
//! [`SimDisk`](crate::SimDisk) models disk time on a *virtual* clock, which
//! is right for the single-driver timing experiments but useless for
//! measuring concurrency: virtual time cannot overlap.  [`LatencyDevice`]
//! instead *sleeps* for a fixed per-block service time, so when several
//! threads issue block I/O to independent objects their service times
//! overlap on the wall clock — exactly the effect the paper's Figure 7
//! measures against a real drive, and the effect the thread-scaling bench
//! quantifies.  The sleep happens outside every lock in this crate, so the
//! device admits as much request concurrency as the caller offers.
//!
//! Batched submissions ([`BlockDevice::read_blocks`] /
//! [`BlockDevice::write_blocks`]) overlap the same way *within one caller*:
//! the whole batch is charged a single service time, because queueing n
//! transfers in one submission buys the same parallel service that n
//! concurrent callers would get.

use crate::device::{BlockDevice, BlockId};
use crate::error::BlockResult;
use std::time::Duration;

/// A [`BlockDevice`] wrapper that sleeps a fixed service time per transfer.
pub struct LatencyDevice<D: BlockDevice> {
    inner: D,
    read_latency: Duration,
    write_latency: Duration,
    flush_latency: Duration,
}

impl<D: BlockDevice> LatencyDevice<D> {
    /// Wrap `inner`, charging `read_latency` / `write_latency` of wall-clock
    /// sleep per block transfer.  Flush barriers are free until
    /// [`with_flush_latency`](Self::with_flush_latency) prices them.
    pub fn new(inner: D, read_latency: Duration, write_latency: Duration) -> Self {
        LatencyDevice {
            inner,
            read_latency,
            write_latency,
            flush_latency: Duration::ZERO,
        }
    }

    /// Wrap `inner` with one symmetric per-block service time.
    pub fn symmetric(inner: D, latency: Duration) -> Self {
        Self::new(inner, latency, latency)
    }

    /// Charge `latency` of wall-clock sleep per flush barrier — the cache
    /// write-back + FUA cost a real disk charges for durability, and the
    /// quantity group commit exists to amortize.
    pub fn with_flush_latency(mut self, latency: Duration) -> Self {
        self.flush_latency = latency;
        self
    }

    /// Unwrap, discarding the latency model.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for LatencyDevice<D> {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn total_blocks(&self) -> u64 {
        self.inner.total_blocks()
    }

    fn read_block(&self, block: BlockId, buf: &mut [u8]) -> BlockResult<()> {
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        self.inner.read_block(block, buf)
    }

    fn write_block(&self, block: BlockId, buf: &[u8]) -> BlockResult<()> {
        if !self.write_latency.is_zero() {
            std::thread::sleep(self.write_latency);
        }
        self.inner.write_block(block, buf)
    }

    // A batch is one submission: the device already lets *concurrent* callers
    // overlap their service times fully, so a caller that queues n blocks in
    // one submission gets the same overlap — one service-time sleep for the
    // whole batch instead of n sequential sleeps.  This is the wrapper-level
    // analogue of an io_uring-style submission ring over a striped volume.
    fn read_blocks(&self, blocks: &[BlockId], buf: &mut [u8]) -> BlockResult<()> {
        if !blocks.is_empty() && !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        self.inner.read_blocks(blocks, buf)
    }

    fn write_blocks(&self, blocks: &[BlockId], buf: &[u8]) -> BlockResult<()> {
        if !blocks.is_empty() && !self.write_latency.is_zero() {
            std::thread::sleep(self.write_latency);
        }
        self.inner.write_blocks(blocks, buf)
    }

    fn flush(&self) -> BlockResult<()> {
        if !self.flush_latency.is_zero() {
            std::thread::sleep(self.flush_latency);
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemBlockDevice;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn data_roundtrips_through_the_sleep() {
        let dev = LatencyDevice::symmetric(MemBlockDevice::new(64, 8), Duration::from_micros(50));
        dev.write_block(3, &[0x77; 64]).unwrap();
        assert_eq!(dev.read_block_vec(3).unwrap(), vec![0x77; 64]);
        dev.flush().unwrap();
        assert_eq!(dev.block_size(), 64);
        assert_eq!(dev.total_blocks(), 8);
    }

    #[test]
    fn batch_costs_one_service_time() {
        // 32 blocks at 4 ms each: sequential singles would sleep >= 128 ms;
        // one batched submission must cost roughly one service time.
        let dev = LatencyDevice::symmetric(MemBlockDevice::new(64, 32), Duration::from_millis(4));
        let blocks: Vec<u64> = (0..32).collect();
        let data = vec![0xabu8; 32 * 64];
        let start = Instant::now();
        dev.write_blocks(&blocks, &data).unwrap();
        let mut out = vec![0u8; 32 * 64];
        dev.read_blocks(&blocks, &mut out).unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(64),
            "batch did not overlap: {:?}",
            start.elapsed()
        );
        assert_eq!(out, data);
        // Empty batches are free.
        dev.read_blocks(&[], &mut []).unwrap();
        dev.write_blocks(&[], &[]).unwrap();
    }

    #[test]
    fn concurrent_transfers_overlap_their_latency() {
        // 8 threads x 4 blocks x 2 ms: serial would sleep >= 64 ms; the
        // threads must overlap to well under half of that.
        let dev = Arc::new(LatencyDevice::symmetric(
            MemBlockDevice::new(64, 64),
            Duration::from_millis(2),
        ));
        let start = Instant::now();
        let workers: Vec<_> = (0..8u64)
            .map(|t| {
                let dev = Arc::clone(&dev);
                std::thread::spawn(move || {
                    for i in 0..4u64 {
                        dev.write_block(t * 8 + i, &[t as u8; 64]).unwrap();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(32),
            "latency did not overlap: {elapsed:?}"
        );
    }
}
